//! Umbrella crate re-exporting the workspace's public API.
pub use baselines;
pub use dnn;
pub use gpu_sim;
pub use sparse;
pub use sputnik;
