//! Sparse MobileNetV1 inference walkthrough: prune a pointwise convolution
//! with magnitude pruning, run it functionally through the fused
//! SpMM+bias+ReLU kernel on a real CHW activation tensor, then benchmark the
//! full network dense vs 90% sparse — the Table IV experiment in miniature.
//!
//! ```bash
//! cargo run --release --example sparse_mobilenet
//! ```

use dnn::layers::{self, Chw, Linear};
use dnn::{magnitude_prune, mobilenet, MobileNetV1};
use gpu_sim::Gpu;
use sparse::Matrix;

fn main() {
    let gpu = Gpu::v100();

    // --- One depthwise-separable block, functionally -------------------------
    // A small 14x14 stage with 64 channels (batch 1, CHW layout).
    let (c_in, c_out, hw) = (64usize, 128usize, 14usize);
    let input = Chw::random(c_in, hw, hw, 11);

    // Depthwise 3x3 with fused bias + ReLU.
    let dw_filters: Vec<f32> = (0..c_in * 9)
        .map(|i| ((i % 9) as f32 - 4.0) / 10.0)
        .collect();
    let dw_bias = vec![0.05f32; c_in];
    let (dw_out, dw_stats) = layers::depthwise_conv(&gpu, &input, &dw_filters, &dw_bias, 1);
    println!(
        "depthwise 3x3 ({c_in}ch, {hw}x{hw}): {:.1} us simulated",
        dw_stats.time_us
    );

    // Pointwise 1x1 = matrix multiply over the CHW activation matrix.
    let dense_w = Matrix::<f32>::random(c_out, c_in, 12);
    let sparse_w = magnitude_prune(&dense_w, 0.9);
    println!(
        "pointwise 1x1 weights: {}x{}, pruned to {} nonzeros ({:.0}% sparse)",
        c_out,
        c_in,
        sparse_w.nnz(),
        sparse_w.sparsity() * 100.0
    );

    let bias: Vec<f32> = (0..c_out).map(|i| (i as f32 - 64.0) / 256.0).collect();
    let act = dw_out.as_matrix();
    let dense_layer = Linear::dense(dense_w, Some(bias.clone()), true);
    let sparse_layer = Linear::sparse(sparse_w.clone(), Some(bias), true);
    let (dense_out, dense_us) = dense_layer.forward(&gpu, &act);
    let (sparse_out, sparse_us) = sparse_layer.forward(&gpu, &act);
    println!("dense pointwise:  {dense_us:.1} us");
    println!(
        "sparse pointwise: {sparse_us:.1} us ({:.2}x)",
        dense_us / sparse_us
    );

    // The sparse output uses pruned weights, so it differs from dense — but
    // at identical topology the kernels agree; verify against the reference.
    let expect = sputnik::reference::bias_relu(
        &sputnik::reference::spmm(&sparse_w, &act),
        &(0..c_out)
            .map(|i| (i as f32 - 64.0) / 256.0)
            .collect::<Vec<_>>(),
    );
    println!(
        "sparse kernel max |err| vs reference: {:.2e}",
        sparse_out.max_abs_diff(&expect)
    );
    let _ = dense_out;

    // --- Whole-network benchmark (cost model) --------------------------------
    println!("\nMobileNetV1 batch-1 inference on the simulated V100:");
    println!(
        "{:>6} {:>8} {:>11} {:>11} {:>11}",
        "width", "variant", "frames/s", "pointwise", "depthwise"
    );
    for &(width, sparse) in &[(1.0, false), (1.4, false), (1.4, true), (1.8, true)] {
        let model = MobileNetV1::new(width);
        let b = mobilenet::benchmark(&gpu, &model, if sparse { Some(0.9) } else { None }, sparse);
        println!(
            "{:>6.1} {:>8} {:>11.0} {:>10.0}us {:>10.0}us",
            width,
            if sparse { "sparse" } else { "dense" },
            b.frames_per_second,
            b.pointwise_us,
            b.depthwise_us
        );
    }
    println!("\nNote how the depthwise time is unchanged by pruning — it becomes the");
    println!("bottleneck of the sparse models, exactly as Section VII-D observes.");
}
