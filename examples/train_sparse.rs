//! Sparse training loop: the Section IX workflow end to end.
//!
//! A weight-sparse layer trained with SGD on a toy regression problem:
//!
//! * forward: `Y = W X` (SpMM)
//! * weight grad: `dW = dY X^T ⊙ I[W]` (SDDMM — topology preserved)
//! * input grad: `dX = W^T dY` (transposed SpMM via the cached-transpose
//!   scheme)
//! * update: `W -= lr * dW`, then refresh the cached W^T values with the
//!   amortized permute kernel (no topology rebuild).
//!
//! ```bash
//! cargo run --release --example train_sparse
//! ```

use gpu_sim::Gpu;
use sparse::{gen, Matrix};
use sputnik::{CachedTranspose, SddmmConfig, SpmmConfig};

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = (256usize, 128usize, 64usize);
    let sparsity = 0.8;

    // The sparse weights and their cached transpose (built once — topology
    // is fixed for the whole run).
    let mut w = gen::uniform(m, k, sparsity, 7);
    let mut wt_cache = CachedTranspose::new(&w);
    println!(
        "layer: {m}x{k} at {:.0}% sparsity ({} parameters)",
        sparsity * 100.0,
        w.nnz()
    );

    // A realizable target: Y* = W* X where W* shares W's topology with
    // different values, so the sparse layer can fit it exactly.
    let w_star = {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        w.with_values((0..w.nnz()).map(|_| rng.random_range(-1.0..1.0)).collect())
    };
    let x = Matrix::<f32>::random(k, n, 9);
    let y_star = sputnik::reference::spmm(&w_star, &x);

    let spmm_cfg = SpmmConfig::heuristic::<f32>(n);
    let sddmm_cfg = SddmmConfig::heuristic::<f32>(n);
    // Least-squares stability bound: lr < 2 / lambda_max(X X^T / n) ~ 6/k
    // for U(-1,1) inputs; run just under it.
    let lr = 5.0f32 / k as f32;

    println!(
        "\n{:>5}  {:>12}  {:>10}  {:>10}  {:>10}  {:>9}",
        "step", "loss", "fwd (us)", "dW (us)", "dX (us)", "upd (us)"
    );
    let mut first_loss = f32::INFINITY;
    let mut last_loss = 0.0f32;
    for step in 0..60 {
        // Forward.
        let (y, fwd) = sputnik::spmm(&gpu, &w, &x, spmm_cfg);

        // Loss and output gradient (host): L = ||Y - Y*||^2 / (2mn).
        let mut dy = Matrix::<f32>::zeros(m, n);
        let mut loss = 0.0f32;
        for r in 0..m {
            for c in 0..n {
                let e = y.get(r, c) - y_star.get(r, c);
                loss += e * e;
                dy.set(r, c, e / n as f32); // batch-mean gradient
            }
        }
        loss /= 2.0 * (m * n) as f32;

        // Weight gradient via SDDMM: dW = dY X^T masked to W's topology.
        let (dw, g1) = sputnik::sddmm(&gpu, &dy, &x, &w, sddmm_cfg);

        // Input gradient via the cached transpose: dX = W^T dY.
        let (_dx, g2) = wt_cache.spmm(&gpu, &dy, spmm_cfg);

        // SGD update on the values; the topology (and hence the swizzle,
        // the transpose structure, and the permutation) is untouched.
        let new_values: Vec<f32> = w
            .values()
            .iter()
            .zip(dw.values())
            .map(|(wv, gv)| wv - lr * gv)
            .collect();
        w = w.with_values(new_values);
        let upd = wt_cache.update_values(&gpu, w.values());

        if step % 10 == 0 || step == 59 {
            println!(
                "{:>5}  {:>12.6}  {:>10.1}  {:>10.1}  {:>10.1}  {:>9.1}",
                step, loss, fwd.time_us, g1.time_us, g2.time_us, upd.time_us
            );
        }
        if step == 0 {
            first_loss = loss;
        }
        last_loss = loss;
    }

    assert!(
        last_loss < first_loss * 0.5,
        "training must reduce the loss substantially"
    );
    println!("\nloss fell {:.1}x over 60 steps.", first_loss / last_loss);
    println!("Note the amortization: the swizzle and transpose topology were built once;");
    println!("each step pays only the value permute — the Section IX scheme.");
}
