//! Quickstart: run the Sputnik SpMM and SDDMM kernels on the simulated V100
//! and check them against CPU references.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gpu_sim::Gpu;
use sparse::{gen, Matrix};
use sputnik::{reference, SddmmConfig, SpmmConfig};

fn main() {
    // A simulated V100 — the paper's benchmark platform.
    let gpu = Gpu::v100();
    println!(
        "device: {} ({} SMs, {:.1} TFLOP/s FP32 peak, {:.0} GB/s)",
        gpu.device().name,
        gpu.device().num_sms,
        gpu.device().fp32_peak_tflops(),
        gpu.device().dram_bw_gbps
    );

    // An 80%-sparse weight matrix, like a pruned DNN layer.
    let (m, k, n) = (1024, 1024, 128);
    let a = gen::uniform(m, k, 0.8, 42);
    let b = Matrix::<f32>::random(k, n, 43);
    println!(
        "\nA: {m}x{k} with {} nonzeros ({:.0}% sparse)",
        a.nnz(),
        a.sparsity() * 100.0
    );

    // --- SpMM: A (sparse) x B (dense) => C (dense) --------------------------
    let cfg = SpmmConfig::heuristic::<f32>(n);
    println!(
        "SpMM config: tile {}x{}, vector width {}",
        cfg.block_items_y, cfg.block_items_x, cfg.vector_width
    );
    let (c, stats) = sputnik::spmm(&gpu, &a, &b, cfg);
    let expect = reference::spmm(&a, &b);
    println!(
        "SpMM: {:.1} us simulated, {:.2} TFLOP/s ({:.1}% of peak), bound by {}",
        stats.time_us,
        stats.tflops,
        stats.frac_peak * 100.0,
        stats.bound_by
    );
    println!(
        "      max |err| vs reference: {:.2e}",
        c.max_abs_diff(&expect)
    );

    // Compare against the cuSPARSE-style baseline.
    let cusp = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, n);
    println!(
        "      speedup over cuSPARSE baseline: {:.2}x",
        cusp.time_us / stats.time_us
    );

    // --- SDDMM: (Q x K^T) sampled at a mask's nonzeros ----------------------
    let q = Matrix::<f32>::random(256, 64, 44);
    let kk = Matrix::<f32>::random(256, 64, 45);
    let mask = gen::attention_mask(256, 32, 0.9, 46);
    let (d, sddmm_stats) = sputnik::sddmm(&gpu, &q, &kk, &mask, SddmmConfig::heuristic::<f32>(64));
    let d_expect = reference::sddmm(&q, &kk, &mask);
    let worst = d
        .values()
        .iter()
        .zip(d_expect.values())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "\nSDDMM on a {}-token attention mask ({} nonzeros): {:.1} us, max |err| {:.2e}",
        mask.rows(),
        mask.nnz(),
        sddmm_stats.time_us,
        worst
    );

    // --- Sparse softmax (the third kernel of sparse attention) --------------
    let (probs, sm_stats) = sputnik::sparse_softmax(&gpu, &d);
    let (cols0, vals0) = probs.row(128);
    println!(
        "sparse softmax: {:.1} us; row 128 has {} attention weights summing to {:.4}",
        sm_stats.time_us,
        cols0.len(),
        vals0.iter().sum::<f32>()
    );
}
