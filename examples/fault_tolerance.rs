//! Fault tolerance tour: typed errors, fault injection, and the graceful
//! degradation ladder.
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```

// Examples crash loudly on purpose; the workspace-wide unwrap/expect denial
// is for library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gpu_sim::{FaultKind, FaultPlan, Gpu};
use sparse::{gen, Matrix};
use sputnik::{dispatch, reference, try_spmm, DispatchPolicy, SpmmConfig};

fn main() {
    let (m, k, n) = (256, 256, 64);
    let a = gen::uniform(m, k, 0.85, 7);
    let b = Matrix::<f32>::random(k, n, 11);
    let cfg = SpmmConfig::heuristic::<f32>(n);
    let expect = reference::spmm(&a, &b);

    // 1. Typed errors instead of panics: a shape mismatch comes back as a value.
    let bad_b = Matrix::<f32>::random(k + 1, n, 11);
    match try_spmm(&Gpu::v100(), &a, &bad_b, cfg) {
        Err(e) => println!("typed error     : {e}"),
        Ok(_) => unreachable!("shape mismatch must not succeed"),
    }

    // 2. Clean device: dispatch serves from the requested Sputnik config.
    let gpu = Gpu::v100();
    let policy = DispatchPolicy::default();
    let (out, report) = dispatch::spmm(&gpu, &a, &b, cfg, &policy).expect("clean dispatch");
    println!(
        "clean device    : served by {} (clean: {})",
        report.served_by,
        report.clean()
    );
    assert_eq!(out.as_slice(), expect.as_slice());

    // 3. Every Sputnik launch fails with an ECC error: the ladder degrades to
    //    the conservative fallback kernel and still returns bit-correct output.
    let gpu =
        Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError).matching("sputnik"));
    let (out, report) = dispatch::spmm(&gpu, &a, &b, cfg, &policy).expect("degraded dispatch");
    println!(
        "all-ECC device  : served by {} after {} failed attempts ({:.0} us backoff)",
        report.served_by,
        report.attempts.len(),
        report.backoff_us
    );
    assert_eq!(
        out.as_slice(),
        expect.as_slice(),
        "degraded result must stay bit-correct"
    );

    // 4. Silent corruption: outputs are NaN-poisoned, launches "succeed", and
    //    the post-launch guards catch it anyway.
    let gpu = Gpu::v100()
        .with_fault_plan(FaultPlan::fail_all(FaultKind::PoisonOutput).matching("sputnik"));
    let (out, report) = dispatch::spmm(&gpu, &a, &b, cfg, &policy).expect("poisoned dispatch");
    println!(
        "poisoned device : served by {} ({} corrupt outputs detected)",
        report.served_by,
        report.attempts.len()
    );
    assert_eq!(out.as_slice(), expect.as_slice());

    // 5. Transient flake: only the first launch fails; a bounded retry recovers
    //    without leaving the fast path.
    let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_first(1, FaultKind::EccError));
    let (_, report) = dispatch::spmm(&gpu, &a, &b, cfg, &policy).expect("retried dispatch");
    println!(
        "transient flake : served by {} after retry ({} attempt logged)",
        report.served_by,
        report.attempts.len()
    );
}
