//! Kernel-variant exploration: how the SpMM template parameters (tile
//! shape, vector width, optimization toggles) interact with a problem's
//! shape — the design space behind the paper's kernel-selection heuristic
//! and the oracle selector of Section VII-D.
//!
//! ```bash
//! cargo run --release --example kernel_tuning
//! ```

// Examples crash loudly on purpose; the workspace-wide unwrap/expect denial
// is for library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gpu_sim::Gpu;
use sparse::gen;
use sputnik::SpmmConfig;

fn main() {
    let gpu = Gpu::v100();

    // A mid-sized weight-sparse problem: 2048x2048 at 85%, batch 256.
    let (m, k, n) = (2048usize, 2048usize, 256usize);
    let a = gen::uniform(m, k, 0.85, 21);
    println!("problem: {m}x{k} @ 85% sparse, N = {n}\n");

    println!(
        "{:>4} {:>4} {:>4} {:>4}  {:>9} {:>8} {:>9} {:>10}",
        "tY", "tK", "tX", "vec", "time (us)", "TFLOP/s", "occupancy", "bound by"
    );
    let mut best: Option<(f64, SpmmConfig)> = None;
    for block_items_y in [1u32, 2, 4, 8] {
        for block_items_x in [32u32, 64] {
            for vector_width in [1u32, 2, 4] {
                let cfg = SpmmConfig {
                    block_items_y,
                    block_items_x,
                    vector_width,
                    roma: vector_width > 1,
                    ..SpmmConfig::default()
                };
                if cfg.validate(k).is_err() || cfg.threads_x() > 32 {
                    continue;
                }
                let stats = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg);
                println!(
                    "{:>4} {:>4} {:>4} {:>4}  {:>9.1} {:>8.2} {:>8}w {:>10}",
                    block_items_y,
                    cfg.block_items_k,
                    block_items_x,
                    vector_width,
                    stats.time_us,
                    stats.tflops,
                    stats.occupancy.warps_per_sm,
                    stats.bound_by
                );
                if best.is_none() || stats.time_us < best.as_ref().unwrap().0 {
                    best = Some((stats.time_us, cfg));
                }
            }
        }
    }

    let (best_us, best_cfg) = best.unwrap();
    let heuristic = SpmmConfig::heuristic::<f32>(n);
    let heuristic_us = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, heuristic).time_us;
    println!("\nbest variant: {} at {best_us:.1} us", best_cfg.tag());
    println!(
        "heuristic pick: {} at {heuristic_us:.1} us ({:.1}% of oracle)",
        heuristic.tag(),
        100.0 * best_us / heuristic_us
    );

    // Ablations on the best config, the Table II story for this problem.
    println!("\nablations on the heuristic config:");
    for (name, cfg) in [
        (
            "-row swizzle",
            SpmmConfig {
                row_swizzle: false,
                ..heuristic
            },
        ),
        (
            "-ROMA (scalar A loads)",
            SpmmConfig {
                roma: false,
                ..heuristic
            },
        ),
        (
            "-residue unroll",
            SpmmConfig {
                residue_unroll: false,
                ..heuristic
            },
        ),
        (
            "-index pre-scale",
            SpmmConfig {
                index_prescale: false,
                ..heuristic
            },
        ),
    ] {
        let t = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg).time_us;
        println!(
            "  {name:<24} {:.1} us ({:.1}% of full)",
            t,
            100.0 * heuristic_us / t
        );
    }
}
