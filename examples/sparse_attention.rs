//! Sparse attention end-to-end: build the paper's attention mask (dense
//! diagonal band + distance-decaying random off-diagonal connections),
//! compare dense attention against the SDDMM -> sparse-softmax -> SpMM
//! pipeline for correctness and simulated speed, and sweep the sequence
//! length to find where sparse attention starts winning.
//!
//! ```bash
//! cargo run --release --example sparse_attention
//! ```

use dnn::attention;
use gpu_sim::Gpu;
use sparse::{gen, Matrix};

fn main() {
    let gpu = Gpu::v100();
    let d = 64;

    // --- Correctness on a small instance ------------------------------------
    let seq = 256;
    let q = Matrix::<f32>::random(seq, d, 1);
    let k = Matrix::<f32>::random(seq, d, 2);
    let v = Matrix::<f32>::random(seq, d, 3);
    let mask = gen::attention_mask(seq, 32, 0.9, 4);
    println!(
        "mask: {seq} tokens, band 32, {} nonzeros ({:.1}% sparse overall)",
        mask.nnz(),
        mask.sparsity() * 100.0
    );

    let (sparse_out, sparse_t) = attention::sparse_attention(&gpu, &q, &k, &v, &mask);
    let (dense_out, dense_t) = attention::dense_attention(&gpu, &q, &k, &v);
    println!(
        "seq {seq}: dense {:.0} us (scores {:.0} + softmax {:.0} + context {:.0})",
        dense_t.total_us(),
        dense_t.scores_us,
        dense_t.softmax_us,
        dense_t.context_us
    );
    println!(
        "seq {seq}: sparse {:.0} us (sddmm {:.0} + softmax {:.0} + spmm {:.0})",
        sparse_t.total_us(),
        sparse_t.scores_us,
        sparse_t.softmax_us,
        sparse_t.context_us
    );
    // The outputs differ because sparse attention only attends through the
    // mask — but each output row is still a convex combination of V rows, so
    // values stay bounded by V's range.
    let bound = v.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let max_out = sparse_out
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    assert!(
        max_out <= bound + 1e-4,
        "sparse attention must stay within V's hull"
    );
    let _ = dense_out;

    // --- Crossover sweep -----------------------------------------------------
    println!("\nseq sweep (band 64, 95% off-diagonal sparsity):");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "seq", "dense (us)", "sparse (us)", "speedup"
    );
    for seq in [512usize, 1024, 2048, 4096, 8192] {
        let mask = gen::attention_mask(seq, 64, 0.95, 7);
        let dense = attention::dense_attention_profile(&gpu, seq, d);
        let sparse = attention::sparse_attention_profile(&gpu, &mask, d);
        println!(
            "{:>6}  {:>12.0}  {:>12.0}  {:>7.2}x",
            seq,
            dense.total_us(),
            sparse.total_us(),
            dense.total_us() / sparse.total_us()
        );
    }
    println!("\nDense attention is quadratic in sequence length; the sparse pipeline");
    println!("scales with the mask's nonzeros — the Section VII-C mechanism.");
}
