//! A tour of the GPU simulator itself: device self-validation against
//! datasheet numbers, per-pipeline breakdowns of a real kernel, the exact
//! cache simulator vs the analytic reuse model, and the block scheduler's
//! response to load imbalance.
//!
//! ```bash
//! cargo run --release --example simulator_tour
//! ```

use gpu_sim::{microbench, simulate_schedule, CacheConfig, CacheSim, Gpu};
use sparse::gen;
use sputnik::SpmmConfig;

fn main() {
    // --- 1. Self-validation: does the model hit its own datasheet? ---------
    println!("== device self-validation ==");
    for gpu in [Gpu::gtx1080(), Gpu::v100(), Gpu::a100()] {
        let v = microbench::validate(&gpu);
        println!(
            "{:<16} copy {:>6.0} GB/s ({:>4.1}% of spec)   FMA {:>5.2} TF/s ({:>5.1}% of peak)   lone-warp latency {:>4.1}x",
            gpu.device().name,
            v.copy_gbps,
            v.copy_frac_of_bw * 100.0,
            v.fma_tflops,
            v.fma_frac_of_peak * 100.0,
            v.latency_bound_slowdown
        );
    }

    // --- 2. Where does a real kernel's time go? ----------------------------
    println!("\n== pipeline breakdown: Sputnik SpMM, 2048x2048 @ 80%, N=128 ==");
    let gpu = Gpu::v100();
    let a = gen::uniform(2048, 2048, 0.8, 42);
    let stats =
        sputnik::spmm_profile::<f32>(&gpu, &a, 2048, 128, SpmmConfig::heuristic::<f32>(128));
    println!("{stats}");
    let total = stats.makespan_cycles.max(1.0);
    for (name, util) in stats.pipelines.utilizations(total) {
        let bar: String = std::iter::repeat_n('#', (util * 40.0).min(40.0) as usize).collect();
        println!("  {name:>8} |{bar:<40}| {:5.1}%", util * 100.0);
    }

    // --- 3. Exact cache simulation vs the analytic model -------------------
    println!("\n== L2 reuse: exact LRU simulation of the SpMM's B-row accesses ==");
    let mut sim = CacheSim::new(CacheConfig::v100_l2());
    let n = 128usize;
    for row in 0..a.rows() {
        let (cols, _) = a.row(row);
        for &c in cols {
            sim.access_range((c as usize * n) as u64 * 4, 64 * 4);
        }
    }
    let cache_stats = sim.stats();
    println!(
        "  {} sector accesses, {:.1}% hit in a 6 MiB L2 (footprint {} KB)",
        cache_stats.accesses,
        cache_stats.hit_rate() * 100.0,
        2048 * n * 4 / 1024
    );
    println!("  -> this reuse is what makes moderate sparsity profitable (Section II).");

    // --- 4. The Volta scheduler under imbalance ----------------------------
    println!("\n== block scheduler: 800 uniform blocks vs one 10x outlier ==");
    let dev = gpu.device();
    let uniform = vec![1_000.0f64; 800];
    let mut skewed = uniform.clone();
    skewed[799] = 10_000.0; // heavy block issued LAST: a pure tail
    let r1 = simulate_schedule(dev, 8, &uniform);
    let r2 = simulate_schedule(dev, 8, &skewed);
    println!(
        "  uniform: makespan {:>7.0} cycles, balance {:.2}",
        r1.makespan_cycles, r1.balance
    );
    println!(
        "  skewed : makespan {:>7.0} cycles, balance {:.2}  <- the tail the row swizzle exists to cut",
        r2.makespan_cycles, r2.balance
    );
    let mut front_loaded = skewed.clone();
    front_loaded.swap(0, 799);
    let r3 = simulate_schedule(dev, 8, &front_loaded);
    println!(
        "  heavy-first (swizzled order): makespan {:>7.0} cycles, balance {:.2}",
        r3.makespan_cycles, r3.balance
    );
}
