//! Offline stand-in for `criterion`: each benchmark body runs once and its
//! wall time is printed. No statistics, warm-up, or HTML reports — just
//! enough to keep `cargo bench` targets compiling and smoke-runnable in the
//! offline build.

use std::fmt;
use std::time::Instant;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&id.to_string(), &mut f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        println!(
            "bench {label}: {:.3} ms (single shot)",
            start.elapsed().as_secs_f64() * 1e3
        );
        self
    }

    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    println!(
        "bench {label}: {:.3} ms (single shot)",
        start.elapsed().as_secs_f64() * 1e3
    );
}

#[derive(Default)]
pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
    }
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
