//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the `proptest!` macro, range/tuple/`Just`/`any` strategies, the
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_filter_map` combinators,
//! `prop_oneof!` (optionally weighted), and `collection::vec`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! sampled inputs via the panic message only), and sampling is driven by a
//! fixed per-test deterministic seed, so runs are reproducible without a
//! regressions file.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration (`cases` = number of sampled executions).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic RNG used to drive strategy sampling (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z.max(1) }
        }

        /// Seed derived from a test name, so each test gets its own stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::seed_from_u64(h)
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in [0, 1) with 53 random bits.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in [0, n).
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-definition macro: expands each `fn name(arg in strategy, ...)`
/// item into a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest stub: test '{}' failed at case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `prop_assert!`: plain assertion (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!`: plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!`: plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// `prop_oneof!`: uniform or weighted union of same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
