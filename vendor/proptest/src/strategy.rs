//! Strategies: deterministic samplers over value spaces.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many resamples a filtering combinator attempts before giving up.
const MAX_FILTER_ATTEMPTS: u32 = 10_000;

/// A sampler over `Value`s. The stub has no shrinking: `sample` is the whole
/// interface, and combinators compose samplers directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            f,
        }
    }

    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            reason,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased strategy (cloneable, as `prop_oneof!` duplicates arms).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T: Arbitrary`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_f64();
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.next_f64();
                (lo as f64 + (hi as f64 - lo as f64) * u) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S, F, O> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.base.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping");
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_combinators_sample_in_domain() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (1usize..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..1000 {
            let (a, b) = s.sample(&mut rng);
            assert!((2..20).contains(&a) && a % 2 == 0);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = crate::prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let ones: u32 = (0..4000).map(|_| s.sample(&mut rng) as u32).sum();
        assert!(
            (700..1300).contains(&ones),
            "expected ~1000 ones, got {ones}"
        );
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
