//! Offline stand-in for `rand`, covering the API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! Determinism is the only contract the workspace relies on (every generator
//! takes an explicit seed and tests assert same-seed reproducibility), so the
//! generator here is a small xorshift* rather than the real StdRng. Absolute
//! sequences differ from upstream `rand`; all in-repo results are
//! regenerated, never compared against externally produced streams.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The sampling extension trait (the subset of `rand::Rng` the workspace
/// calls).
pub trait RngExt: RngCore {
    /// Uniform sample from a range. Panics on an empty range, like upstream.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                // Guard against rounding up to the exclusive bound.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift*-based stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); full 2^64-1 period, passes the smoke
            // tests this workspace needs (uniformity of low/high bits).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 scramble so consecutive seeds decorrelate, and the
            // all-zero seed maps to a nonzero state.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z.max(1) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.random_range(f64::EPSILON..1.0);
            assert!(g >= f64::EPSILON && g < 1.0);
            let i = rng.random_range(0u32..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
