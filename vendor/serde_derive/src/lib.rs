//! No-op derive macros standing in for `serde_derive` in the offline build.
//!
//! The sibling `serde` stub blanket-implements its marker traits, so these
//! derives only need to accept the attribute positions and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
