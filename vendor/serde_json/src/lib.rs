//! Offline stand-in for `serde_json`.
//!
//! The stub `serde` traits carry no serialization machinery, so JSON encoding
//! is unavailable: both entry points return `Err`. The bench harness treats
//! JSON persistence as best-effort (`if let Ok(json) = ...`), so reports
//! simply skip the JSON artifact in offline builds.

use std::fmt;

/// Error type matching the `serde_json::Error` surface the workspace uses.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

fn unavailable() -> Error {
    Error {
        msg: "serde_json stub: serialization unavailable in offline build",
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Err(unavailable())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Err(unavailable())
}
