//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! This build environment has no network access and no cargo registry cache,
//! so the real `serde` cannot be fetched. The workspace only relies on
//! `#[derive(Serialize, Deserialize)]` annotations and `T: Serialize` bounds
//! (JSON persistence is best-effort in the bench harness), so a pair of
//! blanket-implemented marker traits preserves every API surface the
//! workspace uses without pulling in the real implementation.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
