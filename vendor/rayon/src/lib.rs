//! Offline stand-in for `rayon` that executes sequentially.
//!
//! `par_iter()` / `into_par_iter()` simply yield the corresponding standard
//! iterators, so every downstream combinator (`map`, `for_each`, `collect`,
//! ...) is the `std::iter::Iterator` implementation. Semantics are identical
//! to rayon for the data-parallel, order-independent workloads in this
//! repository; only host-side parallel speedup is lost.

pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Sequential stand-ins for rayon's `ParallelIterator::fold_with` /
    /// `reduce_with`. Real rayon folds each worker's chunk into its own
    /// accumulator and yields one accumulator per chunk; the sequential
    /// equivalent is a single chunk, so `fold_with` yields exactly one
    /// accumulated value and `reduce_with` combines what it is given.
    /// Callers written against this pair are source-compatible with rayon
    /// (unlike `std`'s one-closure `fold`, whose signature differs).
    pub trait ParallelFold: Iterator + Sized {
        fn fold_with<T, F>(self, init: T, fold_op: F) -> std::iter::Once<T>
        where
            F: FnMut(T, Self::Item) -> T,
        {
            std::iter::once(self.fold(init, fold_op))
        }

        fn reduce_with<F>(mut self, op: F) -> Option<Self::Item>
        where
            F: FnMut(Self::Item, Self::Item) -> Self::Item,
        {
            let first = self.next()?;
            Some(self.fold(first, op))
        }
    }

    impl<I: Iterator> ParallelFold for I {}

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = (0u64..100).into_par_iter().sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn fold_reduce_streams_one_accumulator() {
        let (sum, items) = (0u64..10)
            .into_par_iter()
            .fold_with((0u64, Vec::new()), |(s, mut v), x| {
                v.push(x);
                (s + x, v)
            })
            .reduce_with(|(sa, mut va), (sb, vb)| {
                va.extend(vb);
                (sa + sb, va)
            })
            .unwrap_or_default();
        assert_eq!(sum, 45);
        assert_eq!(items, (0..10).collect::<Vec<_>>());
        assert_eq!(std::iter::empty::<u64>().reduce_with(|a, b| a + b), None);
    }
}
