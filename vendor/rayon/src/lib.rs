//! Offline stand-in for `rayon` that executes sequentially.
//!
//! `par_iter()` / `into_par_iter()` simply yield the corresponding standard
//! iterators, so every downstream combinator (`map`, `for_each`, `collect`,
//! ...) is the `std::iter::Iterator` implementation. Semantics are identical
//! to rayon for the data-parallel, order-independent workloads in this
//! repository; only host-side parallel speedup is lost.

pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = (0u64..100).into_par_iter().sum();
        assert_eq!(sum, 4950);
    }
}
