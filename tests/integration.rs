//! Cross-crate integration tests: every kernel in the workspace against the
//! CPU references on shared workloads, plus end-to-end model pipelines.

use gpu_sim::Gpu;
use sparse::{gen, CsrMatrix, Layout, Matrix};
use sputnik::{reference, SddmmConfig, SpmmConfig};

/// Every SpMM implementation in the workspace must agree on the same
/// problem: Sputnik (several configs), cuSPARSE-style, MergeSpmm, ASpT, and
/// the dense GEMM applied to the densified matrix.
#[test]
fn all_spmm_implementations_agree() {
    let gpu = Gpu::v100();
    // Shapes chosen to satisfy every baseline's published constraints:
    // rows % 256 == 0 (ASpT), N in {32, 128} (ASpT), N % 32 == 0 (MergeSpmm).
    let a = gen::uniform(256, 128, 0.75, 1001);
    let b = Matrix::<f32>::random(128, 32, 1002);
    let expect = reference::spmm(&a, &b);

    let (ours, _) = sputnik::spmm(&gpu, &a, &b, SpmmConfig::heuristic::<f32>(32));
    assert!(ours.max_abs_diff(&expect) < 1e-3, "sputnik");

    let (ours_scalar, _) = sputnik::spmm(
        &gpu,
        &a,
        &b,
        SpmmConfig {
            vector_width: 1,
            roma: false,
            block_items_x: 32,
            ..SpmmConfig::default()
        },
    );
    assert!(ours_scalar.max_abs_diff(&expect) < 1e-3, "sputnik scalar");

    let b_cm = b.to_layout(Layout::ColMajor);
    let (cusp, _) = baselines::cusparse_spmm(&gpu, &a, &b_cm);
    for r in 0..256 {
        for c in 0..32 {
            assert!(
                (cusp.get(r, c) - expect.get(r, c)).abs() < 1e-3,
                "cusparse ({r},{c})"
            );
        }
    }

    let (merge, _) = baselines::merge_spmm(&gpu, &a, &b).unwrap();
    assert!(merge.max_abs_diff(&expect) < 1e-3, "merge_spmm");

    let (aspt, _) = baselines::aspt_spmm(&gpu, &a, &b).unwrap();
    assert!(aspt.max_abs_diff(&expect) < 1e-3, "aspt");

    let (dense, _) = baselines::gemm(&gpu, &a.to_dense(), &b);
    assert!(dense.max_abs_diff(&expect) < 1e-3, "dense gemm");
}

/// SDDMM implementations agree with the reference and each other.
#[test]
fn all_sddmm_implementations_agree() {
    let gpu = Gpu::v100();
    let mask = gen::uniform(64, 48, 0.7, 1003);
    let lhs = Matrix::<f32>::random(64, 96, 1004);
    let rhs = Matrix::<f32>::random(48, 96, 1005);
    let expect = reference::sddmm(&lhs, &rhs, &mask);

    let (ours, _) = sputnik::sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::heuristic::<f32>(96));
    let (cusp, _) = baselines::cusparse_sddmm(&gpu, &lhs, &rhs, &mask);
    for ((a, b), c) in ours.values().iter().zip(expect.values()).zip(cusp.values()) {
        assert!((a - b).abs() < 1e-3, "sputnik vs reference");
        assert!((c - b).abs() < 1e-3, "cusparse vs reference");
    }
}

/// The weight-gradient identity: SDDMM(dY, X, I[W]) equals the masked dense
/// product dY X^T — the backward-pass computation of Section IV-B.
#[test]
fn sddmm_computes_weight_gradients() {
    let gpu = Gpu::v100();
    let w = gen::uniform(32, 24, 0.8, 1006); // sparse weights
    let x = Matrix::<f32>::random(24, 40, 1007); // activations (K x N)
    let dy = Matrix::<f32>::random(32, 40, 1008); // output gradient (M x N)

    // dW = dY X^T ⊙ I[W]. Our SDDMM computes dot(lhs.row(i), rhs.row(j))
    // with a transposed RHS, so passing X (K x N) directly gives
    // dW[i][j] = dot(dY[i,:], X[j,:]) = (dY X^T)[i][j] — no explicit
    // transpose needed, which is exactly why the paper specializes to the
    // AB^T form.
    let (dw, _) = sputnik::sddmm(&gpu, &dy, &x, &w, SddmmConfig::heuristic::<f32>(40));

    let full = dy.matmul(&x.transpose()); // (M x K)
    for (i, j, v) in dw.iter() {
        assert!((v - full.get(i, j)).abs() < 1e-3, "gradient at ({i},{j})");
    }
    assert!(dw.same_pattern(&w), "gradient keeps the weight topology");
}

/// Training-style roundtrip: forward SpMM, backward SDDMM, value update,
/// cached-transpose consistency (the Section IX discussion).
#[test]
fn training_step_roundtrip() {
    let gpu = Gpu::v100();
    let w = gen::uniform(48, 32, 0.7, 1009);
    let x = Matrix::<f32>::random(32, 16, 1010);

    // Forward.
    let (y, _) = sputnik::spmm(&gpu, &w, &x, SpmmConfig::heuristic::<f32>(16));
    assert!(y.max_abs_diff(&reference::spmm(&w, &x)) < 1e-3);

    // Backward wrt weights.
    let dy = Matrix::<f32>::random(48, 16, 1011);
    let (dw, _) = sputnik::sddmm(&gpu, &dy, &x, &w, SddmmConfig::heuristic::<f32>(16));

    // SGD update on the values only (topology unchanged).
    let lr = 0.01f32;
    let new_values: Vec<f32> = w
        .values()
        .iter()
        .zip(dw.values())
        .map(|(w, g)| w - lr * g)
        .collect();
    let w2 = w.with_values(new_values);
    assert!(w2.same_pattern(&w));

    // The cached transpose-permutation (computed once per topology) still
    // maps updated values correctly.
    let perm = w2.transpose_permutation();
    let t = w2.transpose();
    let permuted: Vec<f32> = perm.iter().map(|&p| w2.values()[p as usize]).collect();
    assert_eq!(permuted, t.values());
}

/// Dense vs sparse attention end-to-end on a full (all-allowed, causal)
/// mask: the sparse pipeline must match dense attention restricted to the
/// same connectivity.
#[test]
fn attention_pipelines_agree_on_full_causal_mask() {
    let gpu = Gpu::v100();
    let seq = 64;
    let d = 16;
    let q = Matrix::<f32>::random(seq, d, 1012);
    let k = Matrix::<f32>::random(seq, d, 1013);
    let v = Matrix::<f32>::random(seq, d, 1014);

    // Fully dense causal mask (band = seq covers everything below diagonal).
    let mask = gen::attention_mask(seq, seq, 0.0, 1015);
    let (sparse_ctx, _) = dnn::sparse_attention(&gpu, &q, &k, &v, &mask);

    // Host reference with an explicit causal softmax.
    let scale = 1.0 / (d as f32).sqrt();
    for i in 0..seq {
        let logits: Vec<f32> = (0..=i)
            .map(|j| (0..d).map(|l| q.get(i, l) * k.get(j, l)).sum::<f32>() * scale)
            .collect();
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for l in 0..d {
            let want: f32 = exps
                .iter()
                .enumerate()
                .map(|(j, &e)| e / sum * v.get(j, l))
                .sum();
            assert!((sparse_ctx.get(i, l) - want).abs() < 1e-3, "({i},{l})");
        }
    }
}

/// Mixed precision end-to-end: FP16 storage, FP32 accumulate, FP16 output.
#[test]
fn mixed_precision_spmm_end_to_end() {
    use sparse::Half;
    let gpu = Gpu::v100();
    let a32 = gen::uniform(64, 96, 0.8, 1016);
    let a = a32.convert::<Half>();
    let b32 = Matrix::<f32>::random(96, 64, 1017);
    let mut b = Matrix::<Half>::zeros(96, 64);
    for r in 0..96 {
        for c in 0..64 {
            b.set(r, c, Half::from_f32(b32.get(r, c)));
        }
    }
    let cfg = SpmmConfig::heuristic::<Half>(64);
    assert_eq!(cfg.index_width, sparse::IndexWidth::U16);
    let (c16, stats) = sputnik::spmm(&gpu, &a, &b, cfg);
    let expect = reference::spmm(&a.convert::<f32>(), &b.to_f32());
    for r in 0..64 {
        for col in 0..64 {
            let got = c16.get(r, col).to_f32();
            let want = expect.get(r, col);
            // FP32 accumulate, FP16 store: error is half-precision rounding.
            assert!(
                (got - want).abs() <= want.abs() * 0.005 + 0.01,
                "({r},{col}): {got} vs {want}"
            );
        }
    }
    // The f16 kernel must move fewer DRAM bytes than its f32 twin.
    let f32_stats =
        sputnik::spmm_profile::<f32>(&gpu, &a32, 96, 64, SpmmConfig::heuristic::<f32>(64));
    assert!(stats.dram_bytes < f32_stats.dram_bytes);
}

/// Empty and degenerate shapes survive every kernel.
#[test]
fn degenerate_shapes() {
    let gpu = Gpu::v100();

    // Empty sparse matrix.
    let a = CsrMatrix::<f32>::empty(8, 8);
    let b = Matrix::<f32>::random(8, 8, 1018);
    let (c, _) = sputnik::spmm(&gpu, &a, &b, SpmmConfig::heuristic::<f32>(8));
    assert_eq!(c, Matrix::zeros(8, 8));

    // Single row, single column.
    let tiny = CsrMatrix::<f32>::from_parts(1, 1, vec![0, 1], vec![0], vec![2.0]).unwrap();
    let bb = Matrix::<f32>::from_vec(1, 1, vec![3.0]);
    let (cc, _) = sputnik::spmm(&gpu, &tiny, &bb, SpmmConfig::heuristic::<f32>(1));
    assert!((cc.get(0, 0) - 6.0).abs() < 1e-6);

    // N = 1 (a matrix-vector product).
    let a = gen::uniform(32, 32, 0.5, 1019);
    let v = Matrix::<f32>::random(32, 1, 1020);
    let (out, _) = sputnik::spmm(&gpu, &a, &v, SpmmConfig::heuristic::<f32>(1));
    assert!(out.max_abs_diff(&reference::spmm(&a, &v)) < 1e-3);
}

/// MobileNet block: im2col + GEMM equals the depthwise+pointwise composition
/// used by the benchmark.
#[test]
fn mobilenet_block_functional() {
    let gpu = Gpu::v100();
    let input = dnn::Chw::random(8, 12, 12, 1021);
    let filters: Vec<f32> = (0..8 * 9).map(|i| (i as f32 * 0.37).sin() * 0.2).collect();
    let bias = vec![0.1f32; 8];
    let (dw_out, _) = dnn::depthwise_conv(&gpu, &input, &filters, &bias, 1);

    // Pointwise on top, sparse vs dense weights of identical topology.
    let w_dense = Matrix::<f32>::random(16, 8, 1022);
    let w_sparse = CsrMatrix::from_dense(&w_dense);
    let act = dw_out.as_matrix();
    let (y_sparse, _) = sputnik::spmm(
        &gpu,
        &w_sparse,
        &act,
        SpmmConfig::heuristic::<f32>(act.cols()),
    );
    let (y_dense, _) = baselines::gemm(&gpu, &w_dense, &act);
    assert!(y_sparse.max_abs_diff(&y_dense) < 1e-3);
}
