//! Calibration tests: pin the simulator to the paper's anchor points
//! (DESIGN.md Section 4). If a model change drifts past these bands, the
//! reproduction's headline numbers are no longer trustworthy.

use gpu_sim::Gpu;
use sparse::gen;
use sputnik::SpmmConfig;

/// Paper: "our kernels reach 27% of single-precision peak" on the best
/// problems. A well-shaped large problem should land in the 15-35% band.
#[test]
fn spmm_peak_fraction_band() {
    let gpu = Gpu::v100();
    let a = gen::uniform(8192, 4096, 0.7, 2001);
    let stats =
        sputnik::spmm_profile::<f32>(&gpu, &a, 4096, 256, SpmmConfig::heuristic::<f32>(256));
    assert!(
        (0.15..0.40).contains(&stats.frac_peak),
        "best-case SpMM should be near the paper's 27% of peak, got {:.1}%",
        stats.frac_peak * 100.0
    );
}

/// Paper Figure 1: sparse overtakes dense at ~71% sparsity on the LSTM
/// problem; our crossover must fall in the 55-85% window.
#[test]
fn figure1_crossover_band() {
    let gpu = Gpu::v100();
    let (m, k, n) = (8192usize, 2048usize, 128usize);
    let dense_us = baselines::gemm_profile(&gpu, m, k, n).time_us;

    let mut crossover = None;
    for s in [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85] {
        let a = gen::uniform(m, k, s, 2002);
        let t =
            sputnik::spmm_profile::<f32>(&gpu, &a, k, n, SpmmConfig::heuristic::<f32>(n)).time_us;
        if t < dense_us {
            crossover = Some(s);
            break;
        }
    }
    let c = crossover.expect("sparse must overtake dense by 85% sparsity");
    assert!(
        (0.50..=0.85).contains(&c),
        "crossover should be near the paper's 71%, got {c}"
    );
}

/// Paper Table I: geometric-mean SpMM speedup over cuSPARSE is 3.58x; a
/// small corpus sample must land within a factor-of-two band (2x-7x).
#[test]
fn corpus_speedup_band() {
    let gpu = Gpu::v100();
    let specs = sparse::dataset::dl_corpus_sample(10, 2003);
    let speedups: Vec<f64> = specs
        .iter()
        .map(|spec| {
            let a = spec.generate();
            let n = spec.n(spec.batch_sizes().1);
            let ours = sputnik::spmm_profile::<f32>(
                &gpu,
                &a,
                spec.cols,
                n,
                SpmmConfig::heuristic::<f32>(n),
            );
            let cusp = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, n);
            cusp.time_us / ours.time_us
        })
        .collect();
    let geo = sparse::stats::geometric_mean(&speedups);
    assert!(
        (2.0..7.0).contains(&geo),
        "geo-mean speedup {geo:.2}x outside the paper band (3.58x)"
    );
}

/// Paper Figure 7: at the feasible CoV maximum, the standard ordering falls
/// to ~47.5% of balanced throughput while row swizzling retains ~96.5%.
#[test]
fn figure7_anchors() {
    let gpu = Gpu::v100();
    let (m, k, n) = (8192usize, 2048usize, 128usize);
    let cfg = SpmmConfig::heuristic::<f32>(n);
    let balanced = gen::balanced(m, k, 512, 2004);
    let base = sputnik::spmm_profile::<f32>(&gpu, &balanced, k, n, cfg);
    let base_eff = base.flops as f64 / base.time_us;

    let worst = gen::with_cov(m, k, 0.75, 1.7, 2005);
    let with = sputnik::spmm_profile::<f32>(&gpu, &worst, k, n, cfg);
    let without = sputnik::spmm_profile::<f32>(
        &gpu,
        &worst,
        k,
        n,
        SpmmConfig {
            row_swizzle: false,
            ..cfg
        },
    );
    let swizzle_pct = (with.flops as f64 / with.time_us) / base_eff;
    let standard_pct = (without.flops as f64 / without.time_us) / base_eff;
    assert!(
        swizzle_pct > 0.90,
        "swizzle retains {swizzle_pct:.2} (paper 0.965)"
    );
    assert!(
        (0.35..0.65).contains(&standard_pct),
        "standard ordering at {standard_pct:.2} (paper 0.475)"
    );
}

/// Dense GEMM sanity: big square SGEMM near peak, tall-skinny well below.
#[test]
fn cublas_model_bands() {
    let gpu = Gpu::v100();
    let big = baselines::gemm_profile(&gpu, 4096, 4096, 4096);
    assert!(
        big.frac_peak > 0.55,
        "square SGEMM {:.2} of peak",
        big.frac_peak
    );
    let skinny = baselines::gemm_profile(&gpu, 8192, 2048, 128);
    assert!(skinny.frac_peak < big.frac_peak);
    // DRAM bandwidth never exceeds the device's.
    assert!(big.dram_gbps <= gpu.device().dram_bw_gbps * 1.01);
}

/// Physical sanity across a range of kernels: achieved throughput never
/// exceeds device peaks.
#[test]
fn no_kernel_exceeds_device_limits() {
    let gpu = Gpu::v100();
    let peak = gpu.device().fp32_peak_tflops();
    let bw = gpu.device().dram_bw_gbps;
    let a = gen::uniform(2048, 2048, 0.8, 2006);
    let checks = [
        sputnik::spmm_profile::<f32>(&gpu, &a, 2048, 128, SpmmConfig::heuristic::<f32>(128)),
        sputnik::sddmm_profile::<f32>(&gpu, &a, 128, sputnik::SddmmConfig::heuristic::<f32>(128)),
        baselines::cusparse_spmm_profile::<f32>(&gpu, &a, 128),
        baselines::gemm_profile(&gpu, 2048, 2048, 2048),
    ];
    for s in checks {
        assert!(
            s.tflops <= peak * 1.001,
            "{}: {} TFLOP/s exceeds peak",
            s.kernel,
            s.tflops
        );
        assert!(
            s.dram_gbps <= bw * 1.01,
            "{}: {} GB/s exceeds bandwidth",
            s.kernel,
            s.dram_gbps
        );
    }
}
