//! Integration tests for the extension APIs (beyond the paper's evaluation):
//! cached transposes, autotuning, batched streams, block-sparse and ELL
//! formats — exercised together across crates.

use gpu_sim::Gpu;
use sparse::{block, gen, EllMatrix, Matrix};
use sputnik::{AutoTuner, CachedTranspose, SpmmConfig};

/// A full backward pass built from the extensions: gradients wrt inputs via
/// the cached transpose, using a tuned configuration, over a batch.
#[test]
fn tuned_batched_backward_pass() {
    let gpu = Gpu::v100();
    let w = gen::uniform(96, 64, 0.75, 2101);
    let mut tuner = AutoTuner::new();

    // Tune for the gradient problem's N.
    let tuned = tuner.tune(&gpu, &w.transpose(), 16);
    let cache = CachedTranspose::new(&w);

    // dX = W^T dY for a batch of output gradients.
    let dys: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(96, 16, 2102 + i)).collect();
    for dy in &dys {
        let (dx, _) = cache.spmm(&gpu, dy, tuned.config);
        let expect = sputnik::reference::spmm(&w.transpose(), dy);
        assert!(dx.max_abs_diff(&expect) < 1e-3);
    }
}

/// Batched SpMM across heads with a shared topology, checked against the
/// unbatched wrapper.
#[test]
fn batched_equals_unbatched() {
    let gpu = Gpu::v100();
    let a = gen::attention_mask(64, 8, 0.9, 2103);
    let heads: Vec<Matrix<f32>> = (0..4).map(|i| Matrix::random(64, 16, 2104 + i)).collect();
    let refs: Vec<&Matrix<f32>> = heads.iter().collect();
    let cfg = SpmmConfig::heuristic::<f32>(16);
    let batched = sputnik::spmm_batched(&gpu, &a, &refs, cfg);
    for (out, b) in batched.outputs.iter().zip(&heads) {
        let (solo, _) = sputnik::spmm(&gpu, &a, b, cfg);
        assert!(
            out.max_abs_diff(&solo) < 1e-6,
            "batched must equal unbatched exactly"
        );
    }
    assert!(batched.stream_us <= batched.naive_us);
}

/// All four sparse formats represent the same matrix and drive kernels to
/// the same answer.
#[test]
fn format_zoo_agrees() {
    let gpu = Gpu::v100();
    let dense = {
        let mut d = Matrix::<f32>::random(64, 64, 2105);
        // Zero ~70% so every format has real sparsity to exploit.
        let mask = gen::uniform(64, 64, 0.7, 2106);
        let kept = mask.to_dense();
        for r in 0..64 {
            for c in 0..64 {
                if kept.get(r, c) == 0.0 {
                    d.set(r, c, 0.0);
                }
            }
        }
        d
    };
    let csr = sparse::CsrMatrix::from_dense(&dense);
    let ell = EllMatrix::from_csr(&csr);
    let bsr = block::BsrMatrix::from_dense(&dense, 8);
    let coo = sparse::CooMatrix::from(&csr);

    assert_eq!(ell.to_csr(), csr);
    assert_eq!(bsr.to_dense(), dense);
    assert_eq!(coo.to_csr(sparse::DuplicatePolicy::Reject).unwrap(), csr);

    let b = Matrix::<f32>::random(64, 32, 2107);
    let expect = sputnik::reference::spmm(&csr, &b);
    let (c1, _) = sputnik::spmm(&gpu, &csr, &b, SpmmConfig::heuristic::<f32>(32));
    let (c2, _) = baselines::ell_spmm(&gpu, &ell, &b);
    let (c3, _) = baselines::block_spmm(&gpu, &bsr, &b);
    assert!(c1.max_abs_diff(&expect) < 1e-3);
    assert!(c2.max_abs_diff(&expect) < 1e-3);
    assert!(c3.max_abs_diff(&expect) < 1e-3);
}

/// SMTX -> CSR -> MatrixMarket -> CSR survives the trip.
#[test]
fn io_format_interchange() {
    let m = gen::uniform(20, 24, 0.75, 2108);
    let mut smtx = Vec::new();
    sparse::io::write_smtx(&m, &mut smtx).unwrap();
    let from_smtx = sparse::io::read_smtx(std::io::BufReader::new(&smtx[..])).unwrap();
    assert!(m.same_pattern(&from_smtx));

    let mut mtx = Vec::new();
    sparse::mtx::write_mtx(&m, &mut mtx).unwrap();
    let from_mtx = sparse::mtx::read_mtx(std::io::BufReader::new(&mtx[..])).unwrap();
    assert!(m.same_pattern(&from_mtx));
    for (a, b) in m.values().iter().zip(from_mtx.values()) {
        assert!((a - b).abs() < 1e-5);
    }
}

/// The padded (assume_aligned) path is equivalent to ROMA functionally.
#[test]
fn padding_and_roma_agree() {
    let gpu = Gpu::v100();
    let a = gen::uniform(48, 96, 0.8, 2109);
    let b = Matrix::<f32>::random(96, 32, 2110);
    let cfg = SpmmConfig::heuristic::<f32>(32);

    let (roma_out, _) = sputnik::spmm(&gpu, &a, &b, cfg);
    let padded = a.padded_to_multiple(cfg.vector_width as usize).unwrap();
    let (pad_out, _) = sputnik::spmm(
        &gpu,
        &padded,
        &b,
        SpmmConfig {
            roma: false,
            assume_aligned: true,
            ..cfg
        },
    );
    assert!(roma_out.max_abs_diff(&pad_out) < 1e-4);
}
