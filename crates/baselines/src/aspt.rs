//! ASpT — Adaptive Sparse Tiling (Hong et al., PPoPP 2019).
//!
//! "CSR matrices are partitioned into sets of rows. Within each set, the
//! columns are re-ordered such that columns with more nonzeros are grouped.
//! These 'heavy' groups are processed together and exploit tiled execution
//! to enable more reuse of operands. The remaining columns are processed
//! with a standard row-splitting scheme."
//!
//! Limitations the paper calls out, reproduced here:
//! * 3x memory: "including the original CSR matrix, ASpT requires 3x the
//!   memory to store the re-ordered matrix as well as meta-data" —
//!   [`AsptPlan::memory_bytes`].
//! * Separate reorderings for SpMM and SDDMM ([`AsptDirection`]), so
//!   training would pay a re-order every step.
//! * The published kernels require the row count divisible by 256 and batch
//!   sizes of 32 or 128.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, SmemScope, StageBound, StaticFacts,
    SyncUnsafeSlice,
};
use sparse::{CsrMatrix, IndexWidth, Matrix, Scalar};

pub const BUF_A_VALUES: BufferId = BufferId(0);
pub const BUF_A_INDICES: BufferId = BufferId(1);
pub const BUF_A_META: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);

/// Rows per panel in the reordering.
const PANEL_ROWS: usize = 128;
/// Columns per heavy tile.
const TILE_COLS: usize = 32;
/// A column is "heavy" within a panel if at least this fraction of the
/// panel's rows touch it.
const HEAVY_FRAC: f64 = 0.125;

/// Which kernel the reordering was built for — ASpT uses different
/// orderings for SpMM and SDDMM, which is why gradients come back in a
/// different order than the forward pass (a real cost for training).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsptDirection {
    Spmm,
    Sddmm,
}

/// One row panel's partition of columns into heavy tiles and a light rest.
#[derive(Debug, Clone)]
struct Panel {
    row_start: usize,
    row_end: usize,
    /// Heavy column groups (each up to TILE_COLS columns), with the panel's
    /// nonzero count inside each group.
    heavy_tiles: Vec<(Vec<u32>, usize)>,
    /// Nonzeros falling outside heavy tiles, per row.
    light_nnz: Vec<usize>,
}

/// The preprocessing result ("we do not include the time required for the
/// pre-processing step used by ASpT in our benchmarks" — neither does this
/// harness, but the *memory* cost is tracked).
pub struct AsptPlan {
    panels: Vec<Panel>,
    direction: AsptDirection,
    /// Total nnz inside heavy tiles.
    pub heavy_nnz: usize,
    /// Total nnz processed by the light path.
    pub light_nnz: usize,
    base_csr_bytes: u64,
}

impl AsptPlan {
    /// Build the reordering for a matrix. O(nnz + panels * cols).
    pub fn build<T: Scalar>(a: &CsrMatrix<T>, direction: AsptDirection) -> Self {
        let mut panels = Vec::new();
        let mut heavy_nnz = 0usize;
        let mut light_nnz_total = 0usize;
        let threshold = ((PANEL_ROWS as f64 * HEAVY_FRAC) as usize).max(2);
        let mut counts = vec![0u32; a.cols()];

        let mut row_start = 0;
        while row_start < a.rows() {
            let row_end = (row_start + PANEL_ROWS).min(a.rows());
            counts.iter_mut().for_each(|c| *c = 0);
            for r in row_start..row_end {
                let (cols, _) = a.row(r);
                for &c in cols {
                    counts[c as usize] += 1;
                }
            }
            // Columns sorted by panel count, heaviest first.
            let mut heavy: Vec<(u32, u32)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c as usize >= threshold)
                .map(|(i, &c)| (i as u32, c))
                .collect();
            heavy.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

            let mut heavy_tiles = Vec::new();
            let mut heavy_set = vec![false; a.cols()];
            for chunk in heavy.chunks(TILE_COLS) {
                let cols: Vec<u32> = chunk.iter().map(|&(i, _)| i).collect();
                let nnz: usize = chunk.iter().map(|&(_, c)| c as usize).sum();
                for &c in &cols {
                    heavy_set[c as usize] = true;
                }
                heavy_nnz += nnz;
                heavy_tiles.push((cols, nnz));
            }
            let light_nnz: Vec<usize> = (row_start..row_end)
                .map(|r| {
                    let (cols, _) = a.row(r);
                    cols.iter().filter(|&&c| !heavy_set[c as usize]).count()
                })
                .collect();
            light_nnz_total += light_nnz.iter().sum::<usize>();
            panels.push(Panel {
                row_start,
                row_end,
                heavy_tiles,
                light_nnz,
            });
            row_start = row_end;
        }

        Self {
            panels,
            direction,
            heavy_nnz,
            light_nnz: light_nnz_total,
            base_csr_bytes: a.bytes(IndexWidth::U32),
        }
    }

    pub fn direction(&self) -> AsptDirection {
        self.direction
    }

    /// Device memory for original CSR + reordered copy + tile metadata: the
    /// paper's "3x the memory".
    pub fn memory_bytes(&self) -> u64 {
        3 * self.base_csr_bytes
    }
}

/// ASpT SpMM: heavy tiles exploit shared-memory reuse of B rows across the
/// panel; light nonzeros take a row-splitting path.
pub struct AsptSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    plan: &'a AsptPlan,
    b: Option<&'a Matrix<T>>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    n: usize,
}

impl<'a, T: Scalar> AsptSpmmKernel<'a, T> {
    pub fn new(
        a: &'a CsrMatrix<T>,
        plan: &'a AsptPlan,
        b: &'a Matrix<T>,
        out: &'a mut Matrix<T>,
    ) -> Result<Self, String> {
        Self::check(a, plan, b.cols())?;
        assert_eq!(a.cols(), b.rows());
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        Ok(Self {
            a,
            plan,
            b: Some(b),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            n,
        })
    }

    pub fn for_profile(a: &'a CsrMatrix<T>, plan: &'a AsptPlan, n: usize) -> Result<Self, String> {
        Self::check(a, plan, n)?;
        Ok(Self {
            a,
            plan,
            b: None,
            out: None,
            n,
        })
    }

    fn check(a: &CsrMatrix<T>, plan: &AsptPlan, n: usize) -> Result<(), String> {
        if plan.direction != AsptDirection::Spmm {
            return Err("plan was built for SDDMM; ASpT needs per-kernel reorderings".into());
        }
        if !a.rows().is_multiple_of(256) {
            return Err(format!(
                "ASpT requires rows divisible by 256, got {}",
                a.rows()
            ));
        }
        if n != 32 && n != 128 {
            return Err(format!(
                "ASpT kernels support batch sizes 32 and 128, got {n}"
            ));
        }
        Ok(())
    }
}

impl<T: Scalar> Kernel for AsptSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("aspt_spmm_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy((self.n / 32) as u32, self.plan.panels.len() as u32)
    }

    fn block_dim(&self) -> Dim3 {
        // 4 warps cooperating on a panel.
        Dim3::xy(32, 4)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // One heavy tile of B (32 cols x 32 outputs) staged at a time.
        (TILE_COLS * 32 * 4) as u32
    }

    fn regs_per_thread(&self) -> u32 {
        48
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values_reordered",
                footprint_bytes: nnz * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices_reordered",
                footprint_bytes: nnz * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_META,
                name: "tile_metadata",
                footprint_bytes: self.plan.memory_bytes() / 3,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: the panel's heavy-tile shapes (column
    /// count and nonzeros per tile), per-row light nonzeros, and row count.
    /// With N restricted to 32 or 128, `n * eb` is a multiple of 32, so the
    /// traced B-row and output-strip addresses all sit on sector boundaries
    /// (class 0) and the column tile `n0` drops out of every address class —
    /// blocks in the same panel are identical across the whole grid row.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let panel = &self.plan.panels[block.y as usize];
        let mut fp = gpu_sim::Fingerprint::new();
        for (tile_cols, tile_nnz) in &panel.heavy_tiles {
            fp.write_u64(tile_cols.len() as u64);
            fp.write_u64(*tile_nnz as u64);
        }
        fp.write_u64(u64::MAX); // separates the variable-length sections
        for &lnnz in &panel.light_nnz {
            fp.write_u64(lnnz as u64);
        }
        fp.write_u64((panel.row_end - panel.row_start) as u64);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: the metadata prelude reads 128 bytes from offset 0; heavy
    /// B stages read 32-element strips of real column rows (`c < cols` by
    /// the CSR column invariant), ending at or before `cols * n * eb`; the
    /// panel's clamped output strip ends at or before `rows * n * eb`
    /// (`n0 + 32 <= n` since N is 32 or 128). Value/index traffic is
    /// address-free sector accounting. One heavy tile (at most `TILE_COLS *
    /// 32 * 4` bytes, the declared capacity) is staged per barrier epoch.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.a.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_META.0,
                    bound: AccessBound::Extent(128),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::BarrierSeparated,
            stage: StageBound::Bytes((TILE_COLS * 32 * 4) as u64),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let panel = &self.plan.panels[block.y as usize];
        let n0 = block.x as usize * 32;
        let eb = T::BYTES as u64;
        let rows = panel.row_end - panel.row_start;

        // Cost-only work is skipped entirely on cache-hit replays.
        if ctx.recording() {
            ctx.misc(10);
            ctx.ld_global(BUF_A_META, 0, 32, 1, 4);

            // ---- Heavy tiles: stage B rows once per panel, reuse across rows.
            for (tile_cols, tile_nnz) in &panel.heavy_tiles {
                // Stage: 32 columns x 32 outputs of B into shared memory. The
                // staged B rows are arbitrary (reordered) columns, so their
                // traces stay per-row.
                let stage_elems = (tile_cols.len() * 32) as u64;
                let stage_instrs = stage_elems.div_ceil(128);
                ctx.cost.ld_global_instrs += stage_instrs;
                ctx.smem_store(stage_instrs, stage_elems * 4, SmemScope::Block);
                for &c in tile_cols {
                    ctx.ld_global_trace(BUF_B, (c as usize * self.n + n0) as u64 * eb, 32 * eb);
                }
                ctx.bar_sync();
                // Each nonzero in the tile: value+index from global (coalesced),
                // B strip from *shared* memory, FMA.
                let t = *tile_nnz as u64;
                ctx.cost.ld_global_instrs += 2 * t.div_ceil(32);
                ctx.cost.gmem[BUF_A_VALUES.0 as usize].ld_sectors += t * eb / 32 + 1;
                ctx.cost.gmem[BUF_A_INDICES.0 as usize].ld_sectors += t / 8 + 1;
                // 128-bit shared reads: one access covers four nonzeros' operands.
                ctx.smem_load(t.div_ceil(4), t * 32 * 4 / 8, SmemScope::Block); // broadcast-amortized
                ctx.cost.fma_instrs += t;
                ctx.misc(2 * t);
                ctx.cost.flops += 2 * t * 32;
                ctx.bar_sync();
            }

            // ---- Light path: row splitting, one warp per row round-robin.
            for &lnnz in &panel.light_nnz {
                let t = lnnz as u64;
                if t == 0 {
                    continue;
                }
                ctx.cost.ld_global_instrs += 2 * t.div_ceil(32) + t;
                ctx.cost.gmem[BUF_A_VALUES.0 as usize].ld_sectors += t * eb / 32 + 1;
                ctx.cost.gmem[BUF_A_INDICES.0 as usize].ld_sectors += t / 8 + 1;
                ctx.cost.gmem[BUF_B.0 as usize].ld_sectors +=
                    t * gpu_sim::memory::sectors_contiguous(0, 32 * eb);
                ctx.cost.fma_instrs += t;
                ctx.misc(2 * t);
                ctx.cost.flops += 2 * t * 32;
            }

            // Store the panel's output strip, batched per panel (the row
            // stride is a kernel constant: bit-identical to the row loop).
            ctx.cost.st_global_instrs += rows as u64;
            ctx.st_global_trace_tiled(
                BUF_C,
                (panel.row_start * self.n + n0) as u64 * eb,
                self.n as u64 * eb,
                rows as u64,
                32 * eb,
            );
        }

        // ---- Functional: reordering is performance-only; results are the
        // plain SpMM of the panel's rows.
        if let (true, Some(b), Some(out)) = (ctx.functional(), self.b, self.out.as_ref()) {
            let b = b.as_slice();
            let n = self.n;
            for r in panel.row_start..panel.row_end {
                let (cols, vals) = self.a.row(r);
                let mut acc = [0.0f32; 32];
                gpu_sim::lanes::fma_accumulate(
                    &mut acc,
                    cols.iter()
                        .zip(vals)
                        .map(|(&col, &val)| (val.to_f32(), &b[col as usize * n + n0..])),
                    |bv| bv.to_f32(),
                );
                for (x, &v) in acc.iter().enumerate() {
                    unsafe { out.write(r * self.n + n0 + x, T::from_f32(v)) };
                }
            }
        }
    }
}

/// Functional ASpT SpMM (row-major dense operands; N must be 32 or 128 and
/// rows divisible by 256).
pub fn aspt_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, LaunchStats), String> {
    let plan = AsptPlan::build(a, AsptDirection::Spmm);
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = AsptSpmmKernel::new(a, &plan, b, &mut out)?;
        gpu.launch(&kernel)
    };
    Ok((out, stats))
}

/// Profile ASpT SpMM.
pub fn aspt_spmm_profile<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    n: usize,
) -> Result<LaunchStats, String> {
    let plan = AsptPlan::build(a, AsptDirection::Spmm);
    let kernel = AsptSpmmKernel::<T>::for_profile(a, &plan, n)?;
    Ok(gpu.profile(&kernel))
}

/// ASpT SDDMM: the same tiling idea applied to sampled dense-dense products;
/// heavy tiles stage RHS rows in shared memory for reuse across the panel.
/// Modeled at the cost level as the Sputnik SDDMM with the heavy fraction of
/// outputs getting shared-memory operand reuse — the paper measures ASpT
/// SDDMM slightly *ahead* of Sputnik (Sputnik achieves 92% of its
/// throughput) at the price of 3x memory and kernel-specific reorderings.
pub fn aspt_sddmm_profile<T: Scalar>(
    gpu: &Gpu,
    mask: &CsrMatrix<T>,
    k: usize,
) -> Result<LaunchStats, String> {
    if !mask.rows().is_multiple_of(256) {
        return Err(format!(
            "ASpT requires rows divisible by 256, got {}",
            mask.rows()
        ));
    }
    let plan = AsptPlan::build(mask, AsptDirection::Sddmm);
    let mut stats =
        sputnik::sddmm_profile::<T>(gpu, mask, k, sputnik::SddmmConfig::heuristic::<T>(k));
    // Heavy-fraction reuse: RHS traffic for heavy nonzeros is served from
    // shared memory staged once per (panel, tile) instead of per nonzero.
    let total = (plan.heavy_nnz + plan.light_nnz).max(1) as f64;
    let heavy_frac = plan.heavy_nnz as f64 / total;
    // Each heavy tile stages TILE_COLS rows once and reuses them across the
    // panel: effective RHS traffic scales by ~1/(panel nnz per tile / cols).
    let reuse =
        (plan.heavy_nnz as f64 / (plan.panels.len().max(1) as f64 * TILE_COLS as f64)).max(1.0);
    let saved = heavy_frac * (1.0 - 1.0 / reuse) * 0.15;
    stats.time_us *= 1.0 - saved.clamp(0.0, 0.12);
    stats.kernel = format!("aspt_sddmm_{}", T::TAG);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn plan_partitions_all_nonzeros() {
        let a = gen::uniform(512, 1024, 0.8, 71);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        assert_eq!(plan.heavy_nnz + plan.light_nnz, a.nnz());
        assert_eq!(plan.panels.len(), 4);
        assert_eq!(plan.memory_bytes(), 3 * a.bytes(IndexWidth::U32));
    }

    #[test]
    fn dense_matrices_are_mostly_heavy() {
        // At 70% sparsity, most columns exceed the heavy threshold.
        let a = gen::uniform(512, 512, 0.7, 72);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        assert!(
            plan.heavy_nnz > plan.light_nnz,
            "heavy {} vs light {}",
            plan.heavy_nnz,
            plan.light_nnz
        );
    }

    #[test]
    fn extreme_sparsity_is_mostly_light() {
        let a = gen::uniform(512, 4096, 0.995, 73);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        assert!(plan.light_nnz > plan.heavy_nnz);
    }

    #[test]
    fn matches_reference() {
        let a = gen::uniform(256, 128, 0.75, 74);
        let b = Matrix::<f32>::random(128, 32, 75);
        let gpu = Gpu::v100();
        let (c, stats) = aspt_spmm(&gpu, &a, &b).unwrap();
        let expect = sputnik::reference::spmm(&a, &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        let a = gen::uniform(100, 64, 0.5, 76);
        let gpu = Gpu::v100();
        assert!(
            aspt_spmm_profile::<f32>(&gpu, &a, 32).is_err(),
            "rows not divisible by 256"
        );
        let a = gen::uniform(256, 64, 0.5, 77);
        assert!(
            aspt_spmm_profile::<f32>(&gpu, &a, 64).is_err(),
            "batch must be 32 or 128"
        );
        assert!(aspt_spmm_profile::<f32>(&gpu, &a, 32).is_ok());
    }

    #[test]
    fn direction_mismatch_is_rejected() {
        let a = gen::uniform(256, 64, 0.5, 78);
        let plan = AsptPlan::build(&a, AsptDirection::Sddmm);
        assert!(AsptSpmmKernel::<f32>::for_profile(&a, &plan, 32).is_err());
    }

    #[test]
    fn beats_cusparse_on_rnn_problems() {
        let a = gen::uniform(2048, 2048, 0.8, 79);
        let gpu = Gpu::v100();
        let aspt = aspt_spmm_profile::<f32>(&gpu, &a, 128).unwrap();
        let cusp = crate::cusparse::cusparse_spmm_profile::<f32>(&gpu, &a, 128);
        assert!(aspt.time_us < cusp.time_us);
    }
}
