//! cuBLAS-like dense GEMM and transpose kernels.
//!
//! The paper's dense baselines are cuBLAS SGEMM ("backed by highly-tuned
//! assembly kernels"). This module models that as a classic tiled,
//! shared-memory GEMM with register blocking: 128x64 output tiles, 256
//! threads, 8-element register accumulators, vectorized loads — the CUTLASS
//! shape. Tile quantization (partial tiles cost as much as full ones) falls
//! out of the cost model naturally, matching cuBLAS's characteristic
//! stair-step performance on ragged shapes.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, SmemScope, StageBound, StaticFacts,
    SyncUnsafeSlice,
};
use sparse::Matrix;

pub const BUF_A: BufferId = BufferId(0);
pub const BUF_B: BufferId = BufferId(1);
pub const BUF_C: BufferId = BufferId(2);

/// Reduction-strip depth (all tile variants).
const TILE_K: usize = 32;

/// cuBLAS ships many tile variants and picks by shape; these are the ones we
/// model: (tile_m, tile_n, threads). Large tiles maximize reuse; small tiles
/// keep little problems parallel enough to fill the device.
const TILE_VARIANTS: [(usize, usize, u32); 5] = [
    (128, 64, 256),
    (64, 64, 256),
    (64, 32, 128),
    (32, 32, 128),
    (16, 32, 64),
];

/// A cuBLAS-style dense GEMM: `A (m x k, row-major) * B (k x n, row-major)
/// => C (m x n)`.
pub struct GemmKernel<'a> {
    a: Option<&'a Matrix<f32>>,
    b: Option<&'a Matrix<f32>>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    m: usize,
    k: usize,
    n: usize,
    tile_m: usize,
    tile_n: usize,
    threads: u32,
}

impl<'a> GemmKernel<'a> {
    pub fn new(a: &'a Matrix<f32>, b: &'a Matrix<f32>, out: &'a mut Matrix<f32>) -> Self {
        assert_eq!(a.cols(), b.rows());
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let (tile_m, tile_n, threads) = Self::select_tile(m, n);
        Self {
            a: Some(a),
            b: Some(b),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            m,
            k,
            n,
            tile_m,
            tile_n,
            threads,
        }
    }

    /// Cost-only kernel for timing sweeps.
    pub fn for_profile(m: usize, k: usize, n: usize) -> Self {
        let (tile_m, tile_n, threads) = Self::select_tile(m, n);
        Self {
            a: None,
            b: None,
            out: None,
            m,
            k,
            n,
            tile_m,
            tile_n,
            threads,
        }
    }

    /// Pick the largest tile that still yields enough blocks to fill the
    /// device with a couple of waves — cuBLAS's shape-based kernel selection.
    fn select_tile(m: usize, n: usize) -> (usize, usize, u32) {
        for &(tm, tn, th) in &TILE_VARIANTS {
            let blocks = m.div_ceil(tm) * n.div_ceil(tn);
            if blocks >= 160 {
                return (tm, tn, th);
            }
        }
        TILE_VARIANTS[TILE_VARIANTS.len() - 1]
    }
}

impl Kernel for GemmKernel<'_> {
    fn name(&self) -> String {
        format!("cublas_sgemm_{}x{}", self.tile_m, self.tile_n)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            self.n.div_ceil(self.tile_n) as u32,
            self.m.div_ceil(self.tile_m) as u32,
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(self.threads)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // Double-buffered A and B tiles.
        (2 * (self.tile_m * TILE_K + TILE_K * self.tile_n) * 4) as u32
    }

    fn regs_per_thread(&self) -> u32 {
        // 32 accumulators + fragments + addresses: register-heavy on purpose.
        96
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BUF_A,
                name: "a",
                footprint_bytes: (self.m * self.k * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.k * self.n * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.m * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: a dense tile's trace is fixed by its live
    /// extent (full interior tiles vs edge-masked ones) and the sector
    /// alignment of its output corner — every interior block of a large GEMM
    /// collapses onto a handful of signatures.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let row0 = block.y as usize * self.tile_m;
        let col0 = block.x as usize * self.tile_n;
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(self.tile_m.min(self.m - row0) as u64);
        fp.write_u64(self.tile_n.min(self.n - col0) as u64);
        fp.write_u64((row0 * self.n + col0) as u64 * 4 % 32);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: A and B tiles are modeled as address-free sector traffic
    /// (bounded by their footprints by construction); the only addressed
    /// access is the epilogue's tiled store of the *clamped* live extent,
    /// whose last byte is `(row0 + tile_m - 1) * n * 4 + (col0 + tile_n) * 4
    /// <= m * n * 4`. All addressed traffic is scalar-width. The double
    /// buffer means each barrier epoch stages exactly half the declared
    /// shared memory; warps communicate through it, so the barrier structure
    /// is left to the dynamic epoch tracker.
    fn static_facts(&self) -> StaticFacts {
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A.0,
                    bound: AccessBound::Extent((self.m * self.k * 4) as u64),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.k * self.n * 4) as u64),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.m * self.n * 4) as u64),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::BarrierSeparated,
            stage: StageBound::Bytes(((self.tile_m * TILE_K + TILE_K * self.tile_n) * 4) as u64),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let (tm, tn, threads) = (self.tile_m, self.tile_n, self.threads);
        let row0 = block.y as usize * tm;
        let col0 = block.x as usize * tn;
        let tile_m = tm.min(self.m - row0);
        let tile_n = tn.min(self.n - col0);
        let k_iters = self.k.div_ceil(TILE_K);

        // ---- Cost: the full tile is paid for even when partially masked
        // (tile quantization). All warps share the block's instructions.
        // Skipped entirely on cache-hit replays (the replay context discards
        // recorded cost).
        if ctx.recording() {
            let warps = (threads / 32) as u64;
            for _ in 0..k_iters {
                // Stage A and B tiles with float4 loads spread over the block.
                let stage_elems = (tm * TILE_K + TILE_K * tn) as u64;
                let stage_instrs = stage_elems.div_ceil(threads as u64 * 4);
                // Per warp bookkeeping: instruction counts are per-warp issued;
                // multiply by warps since all warps participate.
                ctx.cost.ld_global_instrs += stage_instrs * warps;
                ctx.smem_store(stage_instrs * warps, stage_elems * 4, SmemScope::Block);
                ctx.cost.gmem[BUF_A.0 as usize].ld_sectors += (tm * TILE_K * 4) as u64 / 32;
                ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += (TILE_K * tn * 4) as u64 / 32;
                ctx.bar_sync();

                // Math: tm*tn*TILE_K scalar FMAs per strip; each warp
                // instruction covers 32 lanes.
                let fmas = (tm * tn * TILE_K) as u64;
                ctx.cost.fma_instrs += fmas / 32;
                // Shared->register fragment loads, 128-bit, heavily reused.
                ctx.smem_load(fmas / 32 / 8, fmas / 8, SmemScope::Block);
                ctx.misc(8 * warps);
            }
            // Useful FLOPs only count the live region.
            ctx.cost.flops += 2 * (tile_m * tile_n * self.k) as u64;

            // Epilogue: vectorized stores of the tile — one batched trace per
            // tile instead of a call per row (the row stride is a kernel
            // constant, so the batched form is bit-identical).
            let store_instrs = ((tm * tn) as u64).div_ceil(threads as u64 * 4);
            ctx.cost.st_global_instrs += store_instrs * warps;
            ctx.st_global_trace_tiled(
                BUF_C,
                (row0 * self.n + col0) as u64 * 4,
                self.n as u64 * 4,
                tile_m as u64,
                tile_n as u64 * 4,
            );
        }

        // ---- Functional ----------------------------------------------------
        if let (true, Some(a), Some(b), Some(out)) =
            (ctx.functional(), self.a, self.b, self.out.as_ref())
        {
            let a = a.as_slice();
            let b = b.as_slice();
            // Register-blocked body: arena row tiles of accumulators; the
            // lanes helpers keep each 8-column chunk in a vector register
            // across the whole K reduction, and row pairs share one pass
            // over the B strips. Per-output-element accumulation order over
            // l is unchanged from the naive loop.
            let mut acc = gpu_sim::arena::ScratchF32::take(tile_n);
            let mut acc1 = gpu_sim::arena::ScratchF32::take(tile_n);
            let (k, n) = (self.k, self.n);
            let mut r = row0;
            while r + 1 < row0 + tile_m {
                acc.fill(0.0);
                acc1.fill(0.0);
                gpu_sim::lanes::fma_accumulate_pair(
                    &mut acc,
                    &mut acc1,
                    (0..k).map(|l| (a[r * k + l], a[(r + 1) * k + l], &b[l * n + col0..])),
                    |bv| bv,
                );
                for (ci, (&v0, &v1)) in acc.iter().zip(acc1.iter()).enumerate() {
                    unsafe {
                        out.write(r * n + col0 + ci, v0);
                        out.write((r + 1) * n + col0 + ci, v1);
                    }
                }
                r += 2;
            }
            if r < row0 + tile_m {
                acc.fill(0.0);
                gpu_sim::lanes::fma_accumulate(
                    &mut acc,
                    (0..k).map(|l| (a[r * k + l], &b[l * n + col0..])),
                    |bv| bv,
                );
                for (ci, &v) in acc.iter().enumerate() {
                    unsafe { out.write(r * n + col0 + ci, v) };
                }
            }
        }
    }
}

/// Run a dense GEMM functionally.
pub fn gemm(gpu: &Gpu, a: &Matrix<f32>, b: &Matrix<f32>) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = GemmKernel::new(a, b, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile a dense GEMM of the given shape.
pub fn gemm_profile(gpu: &Gpu, m: usize, k: usize, n: usize) -> LaunchStats {
    gpu.profile(&GemmKernel::for_profile(m, k, n))
}

/// A dense transpose kernel (`cublasSgeam`-style, shared-memory staged).
/// Used to model the explicit transpose the paper must add to cuSPARSE's
/// SDDMM baseline: "because cusparseConstrainedGeMM does not support
/// transposition of the right-hand operand, we explicitly transpose the
/// matrix using cuBLAS and include the transposition in our timing."
pub struct TransposeKernel<'a> {
    src: Option<&'a Matrix<f32>>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    rows: usize,
    cols: usize,
}

const T_TILE: usize = 32;

impl<'a> TransposeKernel<'a> {
    pub fn new(src: &'a Matrix<f32>, out: &'a mut Matrix<f32>) -> Self {
        assert_eq!(out.rows(), src.cols());
        assert_eq!(out.cols(), src.rows());
        let (rows, cols) = (src.rows(), src.cols());
        Self {
            src: Some(src),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            rows,
            cols,
        }
    }

    pub fn for_profile(rows: usize, cols: usize) -> Self {
        Self {
            src: None,
            out: None,
            rows,
            cols,
        }
    }
}

impl Kernel for TransposeKernel<'_> {
    fn name(&self) -> String {
        "cublas_transpose_32x32".to_string()
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            self.cols.div_ceil(T_TILE) as u32,
            self.rows.div_ceil(T_TILE) as u32,
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(32, 8)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // 32x33 padded tile to dodge bank conflicts.
        (T_TILE * (T_TILE + 1) * 4) as u32
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BUF_A,
                name: "src",
                footprint_bytes: (self.rows * self.cols * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_C,
                name: "dst",
                footprint_bytes: (self.rows * self.cols * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: live tile extent plus the alignment class
    /// of the source and destination corners (strides are kernel constants).
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let r0 = block.y as usize * T_TILE;
        let c0 = block.x as usize * T_TILE;
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(T_TILE.min(self.rows - r0) as u64);
        fp.write_u64(T_TILE.min(self.cols - c0) as u64);
        fp.write_u64((r0 * self.cols + c0) as u64 * 4 % 32);
        fp.write_u64((c0 * self.rows + r0) as u64 * 4 % 32);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: both tiled traces use the clamped live extent, so the last
    /// source byte is `(r0 + h - 1) * cols * 4 + (c0 + w) * 4` which stays
    /// within `rows * cols * 4`, and symmetrically for the destination. One
    /// 32x32 tile is staged per barrier epoch, under the 32x33 padded
    /// declaration.
    fn static_facts(&self) -> StaticFacts {
        let bytes = (self.rows * self.cols * 4) as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A.0,
                    bound: AccessBound::Extent(bytes),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent(bytes),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::BarrierSeparated,
            stage: StageBound::Bytes((T_TILE * T_TILE * 4) as u64),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let r0 = block.y as usize * T_TILE;
        let c0 = block.x as usize * T_TILE;
        let h = T_TILE.min(self.rows - r0);
        let w = T_TILE.min(self.cols - c0);

        // 4 warps ping a 32x32 tile through shared memory: coalesced reads,
        // coalesced writes, conflict-free via padding. Cost-only; replays
        // skip it. Both traces batch per tile — the row strides are kernel
        // constants, so the batched form is bit-identical to the row loops.
        if ctx.recording() {
            let rounds = (T_TILE as u64 * T_TILE as u64).div_ceil(32 * 8);
            ctx.cost.ld_global_instrs += rounds * 8;
            ctx.smem_store(rounds * 8, (T_TILE * T_TILE * 4) as u64, SmemScope::Block);
            ctx.ld_global_trace_tiled(
                BUF_A,
                (r0 * self.cols + c0) as u64 * 4,
                self.cols as u64 * 4,
                h as u64,
                w as u64 * 4,
            );
            // The transposed readback crosses warps (each warp reads columns
            // the other warps staged), so the tile must be fully written
            // first.
            ctx.bar_sync();
            ctx.smem_load(rounds * 8, (T_TILE * T_TILE * 4) as u64, SmemScope::Block);
            ctx.cost.st_global_instrs += rounds * 8;
            ctx.st_global_trace_tiled(
                BUF_C,
                (c0 * self.rows + r0) as u64 * 4,
                self.rows as u64 * 4,
                w as u64,
                h as u64 * 4,
            );
            ctx.misc(12);
        }

        if let (true, Some(src), Some(out)) = (ctx.functional(), self.src, self.out.as_ref()) {
            let src = src.as_slice();
            for r in r0..r0 + h {
                for c in c0..c0 + w {
                    unsafe { out.write(c * self.rows + r, src[r * self.cols + c]) };
                }
            }
        }
    }
}

/// Transpose a matrix functionally on the simulated GPU.
pub fn transpose(gpu: &Gpu, src: &Matrix<f32>) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(src.cols(), src.rows());
    let stats = {
        let kernel = TransposeKernel::new(src, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile a transpose of the given shape.
pub fn transpose_profile(gpu: &Gpu, rows: usize, cols: usize) -> LaunchStats {
    gpu.profile(&TransposeKernel::for_profile(rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_reference() {
        let a = Matrix::<f32>::random(70, 50, 1);
        let b = Matrix::<f32>::random(50, 90, 2);
        let gpu = Gpu::v100();
        let (c, stats) = gemm(&gpu, &a, &b);
        let expect = a.matmul(&b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn gemm_efficiency_is_high_on_big_shapes() {
        let gpu = Gpu::v100();
        let stats = gemm_profile(&gpu, 4096, 4096, 4096);
        assert!(
            stats.frac_peak > 0.55 && stats.frac_peak <= 1.0,
            "big dense GEMM should run near peak, got {:.2}",
            stats.frac_peak
        );
    }

    #[test]
    fn gemm_efficiency_drops_on_skinny_shapes() {
        let gpu = Gpu::v100();
        let big = gemm_profile(&gpu, 4096, 4096, 4096);
        let skinny = gemm_profile(&gpu, 8192, 2048, 128);
        assert!(
            skinny.frac_peak < big.frac_peak,
            "skinny N=128 cannot match square shapes"
        );
    }

    #[test]
    fn wave_quantization_costs() {
        // One block per SM fills a wave; one extra row-tile forces a second
        // wave on one SM and the makespan nearly doubles — cuBLAS's
        // characteristic stair-step on ragged shapes.
        let gpu = Gpu::v100();
        let sms = gpu.device().num_sms as usize;
        let full_wave = gemm_profile(&gpu, 128 * sms, 1024, 64);
        let spill = gemm_profile(&gpu, 128 * (sms + 1), 1024, 64);
        let per_flop_full = full_wave.time_us / full_wave.flops as f64;
        let per_flop_spill = spill.time_us / spill.flops as f64;
        assert!(
            per_flop_spill > per_flop_full * 1.3,
            "spilling a wave must hurt efficiency: {per_flop_spill:.3e} vs {per_flop_full:.3e}"
        );
    }

    #[test]
    fn transpose_matches_reference() {
        let a = Matrix::<f32>::random(67, 45, 3);
        let gpu = Gpu::v100();
        let (t, _) = transpose(&gpu, &a);
        assert_eq!(t, a.transpose());
    }

    #[test]
    fn transpose_is_bandwidth_bound() {
        let gpu = Gpu::v100();
        let stats = transpose_profile(&gpu, 4096, 4096);
        assert_eq!(stats.bound_by, "dram");
    }
}
