//! cuSPARSE-like baseline kernels.
//!
//! Models the vendor kernels the paper benchmarks against:
//!
//! * `cusparseSpMM` — CSR x dense, **column-major** dense operands, 32-bit
//!   indices, warp-per-row work assignment, scalar memory accesses, no load
//!   balancing. The column-major layout makes the per-nonzero dense loads a
//!   strided walk (one sector per lane), so the kernel leans on the cache to
//!   merge what coalescing cannot — exactly the structural reason it trails
//!   Sputnik on DL sparsities.
//! * The mixed-precision `cusparseSpMM`, which "performs inconsistently on
//!   some problems": narrow or oddly shaped N falls back to a thread-per-row
//!   scalar path with catastrophic occupancy (the paper observes slowdowns
//!   up to 297.5x).
//! * `cusparseConstrainedGeMM` — the SDDMM baseline. It cannot transpose its
//!   right-hand operand, so benchmarks must add an explicit cuBLAS transpose
//!   (see [`crate::cublas::TransposeKernel`]); the harness includes it.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, SmemScope, StageBound, StaticFacts,
    SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, Scalar};

pub const BUF_A_VALUES: BufferId = BufferId(0);
pub const BUF_A_INDICES: BufferId = BufferId(1);
pub const BUF_A_OFFSETS: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);

/// cuSPARSE-style SpMM: one warp per sparse row, output columns tiled 32 at
/// a time across the warp's lanes, column-major dense operands.
pub struct CusparseSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    /// Row-major f32 staging copy of the column-major dense operand, built
    /// once per launch (functional mode). The simulated kernel still *pays*
    /// for strided column-major gathers — the cost model above is untouched —
    /// but the host-side functional math reads contiguous rows so the lanes
    /// helper can keep the accumulators vectorized. Element values and
    /// per-output accumulation order are unchanged, so results are
    /// bit-identical to gathering straight from the column-major operand.
    bt: Option<Vec<f32>>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    n: usize,
}

impl<'a, T: Scalar> CusparseSpmmKernel<'a, T> {
    pub fn new(a: &'a CsrMatrix<T>, b: &'a Matrix<T>, out: &'a mut Matrix<T>) -> Self {
        assert_eq!(a.cols(), b.rows());
        assert_eq!(
            b.layout(),
            sparse::Layout::ColMajor,
            "cuSPARSE dense operands are column-major"
        );
        assert_eq!(out.layout(), sparse::Layout::ColMajor);
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        let k = b.rows();
        let bdata = b.as_slice();
        let mut bt = vec![0.0f32; k * n];
        for c in 0..n {
            let col = &bdata[c * k..(c + 1) * k];
            for (r, &v) in col.iter().enumerate() {
                bt[r * n + c] = v.to_f32();
            }
        }
        Self {
            a,
            bt: Some(bt),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            n,
        }
    }

    pub fn for_profile(a: &'a CsrMatrix<T>, n: usize) -> Self {
        Self {
            a,
            bt: None,
            out: None,
            n,
        }
    }
}

impl<T: Scalar> Kernel for CusparseSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("cusparse_spmm_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        // Warp per row, 4 warps per block, column tiles of 32.
        Dim3::xy(
            (self.n.div_ceil(32)) as u32,
            (self.a.rows() as u32).div_ceil(4),
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(32, 4)
    }

    fn shared_mem_bytes(&self) -> u32 {
        0
    }

    fn regs_per_thread(&self) -> u32 {
        40
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                // cuSPARSE only supports 32-bit indices, even in fp16 mode.
                footprint_bytes: nnz * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: the live column-tile width plus, per warp
    /// in the block, the row's nonzero count and the alignment classes of
    /// its offset/value/index addresses. The strided B gathers and C stores
    /// use constant bases and strides, so they need no per-block terms
    /// beyond `tile_n` (and the empty-row store's base class).
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let eb = T::BYTES as u64;
        let n0 = block.x as usize * 32;
        let tile_n = 32.min(self.n - n0);
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(tile_n as u64);
        for w in 0..4usize {
            let row = block.y as usize * 4 + w;
            if row >= self.a.rows() {
                fp.write_u64(u64::MAX);
                continue;
            }
            let nnz = self.a.row_len(row) as u64;
            fp.write_u64(nnz);
            fp.write_u64(row as u64 * 4 % 32);
            if nnz == 0 {
                fp.write_u64((n0 * self.a.rows() + row) as u64 * eb % 32);
            } else {
                let offset = self.a.row_offsets()[row] as u64;
                fp.write_u64(offset * eb % 32);
                fp.write_u64(offset * 4 % 32);
            }
        }
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: row traces cover `[offset, offset + row_len)` of the
    /// value/index arrays, the offsets pair ends at `(rows + 1) * 4`, and
    /// the empty-row strided zero-store's last element is
    /// `((n0 + tile_n - 1) * rows + row + 1) * eb`, within `rows * n * eb`.
    /// B gathers and non-empty output stores are address-free sector
    /// traffic. Everything is scalar; there is no shared memory.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.a.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((self.a.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let n0 = block.x as usize * 32;
        let tile_n = 32.min(self.n - n0);
        let eb = T::BYTES as u64;
        let k_rows = self.a.cols();

        for w in 0..4usize {
            let row = block.y as usize * 4 + w;
            if row >= self.a.rows() {
                continue;
            }
            let (cols, vals) = self.a.row(row);
            let nnz = cols.len();
            if nnz == 0 {
                // Still must zero the output tile.
                if ctx.recording() {
                    ctx.misc(6);
                    ctx.ld_global(BUF_A_OFFSETS, row as u64 * 4, 2, 1, 4);
                    ctx.st_global_strided(
                        BUF_C,
                        (n0 * self.a.rows() + row) as u64 * eb,
                        tile_n as u32,
                        self.a.rows() as u64 * eb,
                        T::BYTES,
                    );
                }
                if let (true, Some(out)) = (ctx.functional(), self.out.as_ref()) {
                    for c in n0..n0 + tile_n {
                        unsafe { out.write(c * self.a.rows() + row, T::zero()) };
                    }
                }
                continue;
            }

            // Cost-only work is skipped entirely on cache-hit replays.
            if ctx.recording() {
                ctx.misc(6);
                ctx.ld_global(BUF_A_OFFSETS, row as u64 * 4, 2, 1, 4);

                // Per nonzero: scalar broadcast load of value+index, then a
                // strided gather across the lanes' output columns — each lane
                // reads B(col, n0+lane), which in column-major storage sits
                // `k_rows` elements apart: one sector per lane.
                let nnz_u = nnz as u64;
                ctx.cost.ld_global_instrs += 2 * nnz_u.div_ceil(32); // values + indices, coalesced across lanes
                ctx.ld_global_trace(
                    BUF_A_VALUES,
                    self.a.row_offsets()[row] as u64 * eb,
                    nnz_u * eb,
                );
                ctx.ld_global_trace(
                    BUF_A_INDICES,
                    self.a.row_offsets()[row] as u64 * 4,
                    nnz_u * 4,
                );
                // B loads: one warp instruction per nonzero, strided by K.
                ctx.cost.ld_global_instrs += nnz_u;
                ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += nnz_u
                    * gpu_sim::memory::sectors_strided(0, tile_n as u32, k_rows as u64 * eb, eb);
                ctx.cost.fma_instrs += nnz_u;
                ctx.misc(2 * nnz_u); // index scale + loop bookkeeping
                ctx.cost.flops += 2 * nnz_u * tile_n as u64;

                // Column-major output store: strided too.
                ctx.cost.st_global_instrs += 1;
                ctx.cost.gmem[BUF_C.0 as usize].st_sectors += gpu_sim::memory::sectors_strided(
                    0,
                    tile_n as u32,
                    self.a.rows() as u64 * eb,
                    eb,
                );
            }

            if let (true, Some(bt), Some(out)) =
                (ctx.functional(), self.bt.as_ref(), self.out.as_ref())
            {
                let m_rows = self.a.rows();
                // Fixed 32-wide column tile over the row-major staging copy:
                // each output element accumulates the row's nonzeros in CSR
                // order, exactly like the strided column-major gather would.
                let mut acc = [0.0f32; 32];
                gpu_sim::lanes::fma_accumulate(
                    &mut acc[..tile_n],
                    cols.iter()
                        .zip(vals)
                        .map(|(&col, &val)| (val.to_f32(), &bt[col as usize * self.n + n0..])),
                    |bv| bv,
                );
                for (lane, &v) in acc[..tile_n].iter().enumerate() {
                    unsafe { out.write((n0 + lane) * m_rows + row, T::from_f32(v)) };
                }
            }
        }
    }
}

/// Functional cuSPARSE-style SpMM. Accepts/returns **column-major** dense
/// matrices, per the library's convention.
pub fn cusparse_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
) -> (Matrix<T>, LaunchStats) {
    let mut out = Matrix::zeros_with_layout(a.rows(), b.cols(), sparse::Layout::ColMajor);
    let stats = {
        let kernel = CusparseSpmmKernel::new(a, b, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile cuSPARSE-style SpMM.
pub fn cusparse_spmm_profile<T: Scalar>(gpu: &Gpu, a: &CsrMatrix<T>, n: usize) -> LaunchStats {
    gpu.profile(&CusparseSpmmKernel::<T>::for_profile(a, n))
}

/// The mixed-precision fallback path: on "inconsistent" shapes (N not a
/// multiple of 32), the fp16 SpMM degrades to one *thread* per row with
/// fully scalar, serialized processing — the pathology behind the paper's
/// observed 297.5x worst case.
pub struct CusparseSpmmHalfFallbackKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    n: usize,
}

impl<'a, T: Scalar> CusparseSpmmHalfFallbackKernel<'a, T> {
    pub fn new(a: &'a CsrMatrix<T>, n: usize) -> Self {
        Self { a, n }
    }
}

impl<T: Scalar> Kernel for CusparseSpmmHalfFallbackKernel<'_, T> {
    fn name(&self) -> String {
        format!("cusparse_spmm_{}_fallback", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        // One warp per row, only two warps per block: a starved launch.
        Dim3::x((self.a.rows() as u32).div_ceil(2))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(64)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        CusparseSpmmKernel::<T>::for_profile(self.a, self.n).buffers()
    }

    /// The degenerate path's cost is a pure function of each owned row's
    /// nonzero count (all accesses are scalar, so no address classes matter).
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let mut fp = gpu_sim::Fingerprint::new();
        for w in 0..2usize {
            let row = block.x as usize * 2 + w;
            if row >= self.a.rows() {
                fp.write_u64(u64::MAX);
            } else {
                fp.write_u64(self.a.row_len(row) as u64);
            }
        }
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor: the degenerate path is
    /// modeled entirely as address-free sector traffic (one sector per
    /// scalar touch), so every bound is the buffer footprint by
    /// construction. No shared memory, no cross-warp communication.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.a.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((self.a.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        // The degenerate code path: each warp owns one row but only lane 0
        // does any work — the row's entire nnz x N element grid is walked
        // serially with scalar loads (value, index, and B element re-fetched
        // every step), so SIMT amortization disappears entirely. Combined
        // with the tiny grid this starves the device and produces the
        // paper's multi-hundred-x worst cases.
        if !ctx.recording() {
            return; // cost-only kernel: nothing to do on replays
        }
        for w in 0..2usize {
            let row = block.x as usize * 2 + w;
            if row >= self.a.rows() {
                continue;
            }
            let nnz = self.a.row_len(row) as u64;
            let steps = nnz * self.n as u64;
            ctx.cost.ld_global_instrs += 3 * steps; // value + index + B, every step
            ctx.cost.fma_instrs += steps;
            ctx.misc(3 * steps);
            ctx.cost.st_global_instrs += self.n as u64;
            // Scalar accesses: one sector per touch.
            ctx.cost.gmem[BUF_A_VALUES.0 as usize].ld_sectors += steps;
            ctx.cost.gmem[BUF_A_INDICES.0 as usize].ld_sectors += steps;
            ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += steps;
            ctx.cost.gmem[BUF_C.0 as usize].st_sectors += self.n as u64;
            ctx.cost.flops += 2 * steps;
        }
    }
}

/// Mixed-precision cuSPARSE SpMM profile: picks the good path on friendly
/// shapes and the pathological fallback otherwise.
pub fn cusparse_spmm_half_profile<T: Scalar>(gpu: &Gpu, a: &CsrMatrix<T>, n: usize) -> LaunchStats {
    // The inconsistency is shape-triggered and rare: most problems take the
    // normal path; N values that are not 8-aligned (or are tiny) fall off
    // the fast path entirely.
    if n.is_multiple_of(8) && n >= 32 {
        cusparse_spmm_profile::<T>(gpu, a, n)
    } else {
        gpu.profile(&CusparseSpmmHalfFallbackKernel::new(a, n))
    }
}

/// cuSPARSE's `cusparseConstrainedGeMM` (the SDDMM baseline): computes the
/// masked outputs with one warp per mask row, scalar accesses, and a
/// **non-transposed** right-hand operand — the benchmark harness adds the
/// explicit transpose cost.
pub struct ConstrainedGemmKernel<'a, T: Scalar> {
    lhs: Option<&'a Matrix<T>>,
    /// K x N dense operand (already transposed by the caller!).
    rhs_t: Option<&'a Matrix<T>>,
    mask: &'a CsrMatrix<T>,
    out_values: Option<SyncUnsafeSlice<'a, T>>,
    k: usize,
}

impl<'a, T: Scalar> ConstrainedGemmKernel<'a, T> {
    /// `rhs_t` is the K x `mask.cols()` operand (pre-transposed).
    pub fn new(
        lhs: &'a Matrix<T>,
        rhs_t: &'a Matrix<T>,
        mask: &'a CsrMatrix<T>,
        out_values: &'a mut [T],
    ) -> Self {
        assert_eq!(lhs.cols(), rhs_t.rows(), "inner dims must agree");
        assert_eq!(rhs_t.cols(), mask.cols());
        assert_eq!(lhs.rows(), mask.rows());
        assert_eq!(out_values.len(), mask.nnz());
        let k = lhs.cols();
        Self {
            lhs: Some(lhs),
            rhs_t: Some(rhs_t),
            mask,
            out_values: Some(SyncUnsafeSlice::new(out_values)),
            k,
        }
    }

    pub fn for_profile(mask: &'a CsrMatrix<T>, k: usize) -> Self {
        Self {
            lhs: None,
            rhs_t: None,
            mask,
            out_values: None,
            k,
        }
    }
}

impl<T: Scalar> Kernel for ConstrainedGemmKernel<'_, T> {
    fn name(&self) -> String {
        format!("cusparse_constrained_gemm_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            (self.mask.cols() as u32).div_ceil(64),
            (self.mask.rows() as u32).div_ceil(64),
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn shared_mem_bytes(&self) -> u32 {
        2 * (64 + 64) * 32 * T::BYTES
    }

    fn regs_per_thread(&self) -> u32 {
        72
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let eb = T::BYTES as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "lhs",
                footprint_bytes: (self.mask.rows() * self.k) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "rhs_t",
                footprint_bytes: (self.k * self.mask.cols()) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "mask_offsets",
                footprint_bytes: (self.mask.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "mask_indices",
                footprint_bytes: self.mask.nnz() as u64 * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_C,
                name: "out_values",
                footprint_bytes: self.mask.nnz() as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: the live tile extents, the tile's masked
    /// nonzero count (drives the epilogue gather/scatter and useful-flop
    /// accounting), and the offsets-load base alignment class. The dense
    /// mainloop cost depends only on `k`, a kernel constant.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let row0 = block.y as usize * 64;
        let col0 = block.x as usize * 64;
        let tile_m = 64.min(self.mask.rows() - row0);
        let tile_n = 64.min(self.mask.cols() - col0);
        let mut masked = 0u64;
        for r in row0..row0 + tile_m {
            let (cols, _) = self.mask.row(r);
            masked += cols
                .iter()
                .filter(|&&c| (c as usize) >= col0 && (c as usize) < col0 + tile_n)
                .count() as u64;
        }
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(tile_m as u64);
        fp.write_u64(tile_n as u64);
        fp.write_u64(masked);
        fp.write_u64(row0 as u64 * 4 % 32);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: the only addressed access is the epilogue's offsets load
    /// at `row0 * 4` for `tile_m` clamped entries, ending at or before
    /// `rows * 4`; everything else (dense tile stages, index gather, output
    /// scatter) is address-free sector traffic bounded by footprints. Each
    /// barrier epoch stages one A-tile + one B-tile — half the declared
    /// double-width shared memory — and warps communicate through it, so
    /// barrier structure stays with the dynamic epoch tracker.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.mask.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent((self.mask.rows() * self.k) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.k * self.mask.cols()) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((self.mask.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::BarrierSeparated,
            stage: StageBound::Bytes((64 + 64) * 32 * eb),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        // "Constrained GEMM" is exactly that: a tiled dense GEMM whose
        // epilogue stores only the masked outputs. The kernel therefore pays
        // for the FULL dense product — (1 - sparsity)^-1 more math than an
        // SDDMM needs — which is why it only trails Sputnik by ~2x rather
        // than by orders of magnitude: its inner loop is dense-efficient.
        let eb = T::BYTES as u64;
        let k = self.k;
        const TILE_M: usize = 64;
        const TILE_N: usize = 64;
        const TILE_K: usize = 32;
        let row0 = block.y as usize * TILE_M;
        let col0 = block.x as usize * TILE_N;
        let tile_m = TILE_M.min(self.mask.rows() - row0);
        let tile_n = TILE_N.min(self.mask.cols() - col0);
        let warps = 8u64; // 256 threads

        // Cost-only work (including the masked-count scan) is skipped
        // entirely on cache-hit replays.
        if ctx.recording() {
            let k_iters = k.div_ceil(TILE_K);
            for _ in 0..k_iters {
                let stage_elems = ((TILE_M + TILE_N) * TILE_K) as u64;
                let stage_instrs = stage_elems.div_ceil(256 * 4);
                ctx.cost.ld_global_instrs += stage_instrs * warps;
                ctx.smem_store(stage_instrs * warps, stage_elems * eb, SmemScope::Block);
                ctx.cost.gmem[BUF_A_VALUES.0 as usize].ld_sectors +=
                    (TILE_M * TILE_K) as u64 * eb / 32;
                ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += (TILE_K * TILE_N) as u64 * eb / 32;
                ctx.bar_sync();
                ctx.bar_sync(); // no double buffering: a second barrier per strip
                                // The inner product is compiler-generated C++, not hand-tuned
                                // assembly: every FMA drags ~3 integer/address/predicate
                                // instructions with it (cuBLAS amortizes these to near zero with
                                // register blocking), plus scalar shared-memory fragment reads.
                let fmas = (TILE_M * TILE_N * TILE_K) as u64;
                ctx.cost.fma_instrs += fmas / 32;
                ctx.misc(3 * (fmas / 32));
                ctx.smem_load(fmas / 32 / 2, fmas / 2, SmemScope::Block);
                ctx.misc(8 * warps);
            }
            // Only the masked outputs are useful work.
            let mut masked = 0u64;
            for r in row0..row0 + tile_m {
                let (cols, _) = self.mask.row(r);
                masked += cols
                    .iter()
                    .filter(|&&c| (c as usize) >= col0 && (c as usize) < col0 + tile_n)
                    .count() as u64;
            }
            ctx.cost.flops += 2 * masked * k as u64;
            // Epilogue: gather the mask topology for the tile, scatter outputs.
            ctx.ld_global(BUF_A_OFFSETS, row0 as u64 * 4, tile_m as u32, 1, 4);
            ctx.cost.ld_global_instrs += masked.div_ceil(32);
            ctx.cost.gmem[BUF_A_INDICES.0 as usize].ld_sectors += masked.div_ceil(8);
            ctx.cost.st_global_instrs += masked.div_ceil(32).max(1);
            ctx.cost.gmem[BUF_C.0 as usize].st_sectors += masked.div_ceil(8).max(1);
            ctx.misc(6 * warps);
        }

        if let (true, Some(lhs), Some(rhs_t), Some(out)) = (
            ctx.functional(),
            self.lhs,
            self.rhs_t,
            self.out_values.as_ref(),
        ) {
            for r in row0..row0 + tile_m {
                let row_start = self.mask.row_offsets()[r] as usize;
                let (cols, _) = self.mask.row(r);
                for (t, &j) in cols.iter().enumerate() {
                    let j = j as usize;
                    if j < col0 || j >= col0 + tile_n {
                        continue;
                    }
                    let mut acc = 0.0f32;
                    for l in 0..k {
                        // rhs_t is walked down a column: strided, so scalar
                        // FMA (matching the other kernels' numerics).
                        acc = lhs
                            .get(r, l)
                            .to_f32()
                            .mul_add(rhs_t.get(l, j).to_f32(), acc);
                    }
                    unsafe { out.write(row_start + t, T::from_f32(acc)) };
                }
            }
        }
    }
}

/// Functional cuSPARSE-style SDDMM **including the explicit transpose** of
/// the right-hand operand (the paper times it too). `rhs` is N x K row-major
/// (same convention as [`sputnik::sddmm()`]); returns the masked output and
/// the total stats (transpose + constrained GEMM).
pub fn cusparse_sddmm(
    gpu: &Gpu,
    lhs: &Matrix<f32>,
    rhs: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
) -> (CsrMatrix<f32>, LaunchStats) {
    let (rhs_t, t_stats) = crate::cublas::transpose(gpu, rhs);
    let mut values = vec![0.0f32; mask.nnz()];
    let mut stats = {
        let kernel = ConstrainedGemmKernel::new(lhs, &rhs_t, mask, &mut values);
        gpu.launch(&kernel)
    };
    stats.time_us += t_stats.time_us;
    stats.dram_bytes += t_stats.dram_bytes;
    stats.instructions += t_stats.instructions;
    (mask.with_values(values), stats)
}

/// Profile cuSPARSE-style SDDMM (transpose + constrained GEMM).
pub fn cusparse_sddmm_profile<T: Scalar>(gpu: &Gpu, mask: &CsrMatrix<T>, k: usize) -> LaunchStats {
    let t_stats = crate::cublas::transpose_profile(gpu, mask.cols(), k);
    let mut stats = gpu.profile(&ConstrainedGemmKernel::<T>::for_profile(mask, k));
    stats.time_us += t_stats.time_us;
    stats.dram_bytes += t_stats.dram_bytes;
    stats.instructions += t_stats.instructions;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::{gen, Layout};

    #[test]
    fn spmm_matches_reference() {
        let a = gen::uniform(48, 64, 0.75, 51);
        let b_rm = Matrix::<f32>::random(64, 40, 52);
        let b = b_rm.to_layout(Layout::ColMajor);
        let gpu = Gpu::v100();
        let (c, stats) = cusparse_spmm(&gpu, &a, &b);
        let expect = sputnik::reference::spmm(&a, &b_rm);
        for r in 0..48 {
            for col in 0..40 {
                assert!(
                    (c.get(r, col) - expect.get(r, col)).abs() < 1e-3,
                    "({r},{col})"
                );
            }
        }
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn spmm_is_slower_than_sputnik_on_dl_problems() {
        let a = gen::uniform(2048, 2048, 0.8, 53);
        let gpu = Gpu::v100();
        let ours = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        let theirs = cusparse_spmm_profile::<f32>(&gpu, &a, 128);
        let speedup = theirs.time_us / ours.time_us;
        assert!(
            speedup > 1.5,
            "Sputnik should clearly beat cuSPARSE on DL shapes, got {speedup:.2}x"
        );
    }

    #[test]
    fn half_fallback_is_catastrophic_on_odd_shapes() {
        use sparse::Half;
        let a = gen::uniform(1024, 1024, 0.9, 54).convert::<Half>();
        let gpu = Gpu::v100();
        let good = cusparse_spmm_half_profile(&gpu, &a, 128);
        let bad = cusparse_spmm_half_profile(&gpu, &a, 49);
        // Normalize by work: time per output column.
        let good_per_col = good.time_us / 128.0;
        let bad_per_col = bad.time_us / 49.0;
        assert!(
            bad_per_col > 10.0 * good_per_col,
            "fallback should be pathological: {bad_per_col:.2} vs {good_per_col:.2} us/col"
        );
    }

    #[test]
    fn sddmm_matches_reference() {
        let lhs = Matrix::<f32>::random(32, 48, 55);
        let rhs = Matrix::<f32>::random(40, 48, 56);
        let mask = gen::uniform(32, 40, 0.7, 57);
        let gpu = Gpu::v100();
        let (d, stats) = cusparse_sddmm(&gpu, &lhs, &rhs, &mask);
        let expect = sputnik::reference::sddmm(&lhs, &rhs, &mask);
        for (got, want) in d.values().iter().zip(expect.values()) {
            assert!((got - want).abs() < 1e-3);
        }
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn sddmm_pays_for_the_transpose() {
        let mask = gen::uniform(512, 512, 0.8, 58);
        let gpu = Gpu::v100();
        let with_t = cusparse_sddmm_profile::<f32>(&gpu, &mask, 256);
        let without_t = gpu.profile(&ConstrainedGemmKernel::<f32>::for_profile(&mask, 256));
        assert!(with_t.time_us > without_t.time_us);
    }
}
