//! MergeSpmm — the row-splitting SpMM of Yang, Buluç & Owens, "Design
//! Principles for Sparse Matrix Multiplication on the GPU" (Euro-Par 2018).
//!
//! The paper benchmarks this kernel's row-splitting variant on the RNN
//! problem suite ("we benchmark the row-splitting kernel from \[26\], as all
//! of our benchmarks are beyond the threshold of average row length that the
//! authors use to select between their row-splitting and nonzero-splitting
//! kernels"). Characteristics modeled:
//!
//! * one warp per sparse-matrix row, row-major dense operands with coalesced
//!   accesses (their "memory-access" principle);
//! * scalar loads, values/indices staged through shared memory;
//! * no load balancing across rows and no subwarp tiling, so small batches
//!   waste lanes — and the published constraint that the batch size (N) be
//!   divisible by 32.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, StageBound, StaticFacts, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, Scalar};

pub const BUF_A_VALUES: BufferId = BufferId(0);
pub const BUF_A_INDICES: BufferId = BufferId(1);
pub const BUF_A_OFFSETS: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);

/// Row-splitting SpMM: warp per row, N tiled in chunks of 32 columns.
pub struct MergeSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    b: Option<&'a Matrix<T>>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    n: usize,
}

impl<'a, T: Scalar> MergeSpmmKernel<'a, T> {
    /// Returns `Err` when the problem violates the kernel's published
    /// constraint (N divisible by 32).
    pub fn new(
        a: &'a CsrMatrix<T>,
        b: &'a Matrix<T>,
        out: &'a mut Matrix<T>,
    ) -> Result<Self, String> {
        if !b.cols().is_multiple_of(32) {
            return Err(format!(
                "MergeSpmm requires N divisible by 32, got {}",
                b.cols()
            ));
        }
        assert_eq!(a.cols(), b.rows());
        assert_eq!(b.layout(), sparse::Layout::RowMajor);
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        Ok(Self {
            a,
            b: Some(b),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            n,
        })
    }

    pub fn for_profile(a: &'a CsrMatrix<T>, n: usize) -> Result<Self, String> {
        if !n.is_multiple_of(32) {
            return Err(format!("MergeSpmm requires N divisible by 32, got {n}"));
        }
        Ok(Self {
            a,
            b: None,
            out: None,
            n,
        })
    }
}

impl<T: Scalar> Kernel for MergeSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("merge_spmm_rowsplit_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy((self.n / 32) as u32, (self.a.rows() as u32).div_ceil(4))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(32, 4)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // 32 staged values + indices per warp.
        4 * 32 * 8
    }

    fn regs_per_thread(&self) -> u32 {
        32
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                footprint_bytes: nnz * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: per warp, the owned row's validity, its
    /// nonzero count, and the alignment classes of the offsets/values/
    /// indices/output addresses. The B sector model uses `n0 * eb % 32`,
    /// which is identically zero (`32 * eb` is a multiple of 32), so no
    /// column-tile term is needed.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let n0 = block.x as usize * 32;
        let eb = T::BYTES as u64;
        let mut fp = gpu_sim::Fingerprint::new();
        for w in 0..4usize {
            let row = block.y as usize * 4 + w;
            if row >= self.a.rows() {
                fp.write_u64(u64::MAX);
                continue;
            }
            let row_off = self.a.row_offsets()[row] as u64;
            fp.write_u64(self.a.row_len(row) as u64);
            fp.write_u64(row as u64 * 4 % 32);
            fp.write_u64(row_off * eb % 32);
            fp.write_u64(row_off * 4 % 32);
            fp.write_u64((row * self.n + n0) as u64 * eb % 32);
        }
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: strip loads cover `[row_off, row_off + row_len)` of the
    /// value/index arrays (`<= nnz` by CSR), the offsets pair ends at
    /// `(rows + 1) * 4`, and the 32-wide output store ends at `(row * n +
    /// n0 + 32) * eb <= rows * n * eb` because N is a multiple of 32. B is
    /// address-free sector traffic. Everything is scalar, and per-nonzero
    /// broadcasts are warp shuffles — the declared shared memory is never
    /// staged, so the stage bound is zero.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.a.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((self.a.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let n0 = block.x as usize * 32;
        let eb = T::BYTES as u64;

        for w in 0..4usize {
            let row = block.y as usize * 4 + w;
            if row >= self.a.rows() {
                continue;
            }
            let (cols, vals) = self.a.row(row);

            // Cost-only work is skipped entirely on cache-hit replays.
            if ctx.recording() {
                ctx.misc(6);
                ctx.ld_global(BUF_A_OFFSETS, row as u64 * 4, 2, 1, 4);
                let nnz = cols.len() as u64;
                let row_off = self.a.row_offsets()[row] as u64;

                // Strips of 32 nonzeros staged through shared memory.
                let strips = nnz.div_ceil(32).max(1);
                for s in 0..strips {
                    let strip_len = 32.min(nnz.saturating_sub(s * 32));
                    if strip_len == 0 {
                        break;
                    }
                    // Coalesced scalar loads of the strip's values + indices;
                    // per-nonzero broadcast via warp shuffle (no shared-memory
                    // staging in the row-splitting kernel).
                    ctx.ld_global(
                        BUF_A_VALUES,
                        (row_off + s * 32) * eb,
                        strip_len as u32,
                        1,
                        T::BYTES,
                    );
                    ctx.ld_global(
                        BUF_A_INDICES,
                        (row_off + s * 32) * 4,
                        strip_len as u32,
                        1,
                        4,
                    );
                    for _ in 0..strip_len {
                        ctx.shfl(2);
                        ctx.cost.ld_global_instrs += 1;
                        ctx.cost.fma_instrs += 1;
                        ctx.misc(2);
                    }
                    ctx.misc(4);
                }
                // Sector accounting over the whole row.
                ctx.cost.gmem[BUF_B.0 as usize].ld_sectors +=
                    nnz * gpu_sim::memory::sectors_contiguous((n0 as u64) * eb % 32, 32 * eb);
                ctx.cost.flops += 2 * nnz * 32;

                // Coalesced scalar store of the 32 outputs.
                ctx.cost.st_global_instrs += 1;
                ctx.st_global_trace(BUF_C, (row * self.n + n0) as u64 * eb, 32 * eb);
            }

            if let (true, Some(b), Some(out)) = (ctx.functional(), self.b, self.out.as_ref()) {
                let b = b.as_slice();
                // Fixed 32-wide column tile: a stack accumulator, with the
                // lanes helper keeping per-element accumulation order.
                let mut acc = [0.0f32; 32];
                let n = self.n;
                gpu_sim::lanes::fma_accumulate(
                    &mut acc,
                    cols.iter()
                        .zip(vals)
                        .map(|(&col, &val)| (val.to_f32(), &b[col as usize * n + n0..])),
                    |bv| bv.to_f32(),
                );
                for (x, &v) in acc.iter().enumerate() {
                    unsafe { out.write(row * self.n + n0 + x, T::from_f32(v)) };
                }
            }
        }
    }
}

/// Functional MergeSpmm (row-major dense operands).
pub fn merge_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, LaunchStats), String> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = MergeSpmmKernel::new(a, b, &mut out)?;
        gpu.launch(&kernel)
    };
    Ok((out, stats))
}

/// Profile MergeSpmm.
pub fn merge_spmm_profile<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    n: usize,
) -> Result<LaunchStats, String> {
    Ok(gpu.profile(&MergeSpmmKernel::<T>::for_profile(a, n)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn matches_reference() {
        let a = gen::uniform(64, 96, 0.8, 61);
        let b = Matrix::<f32>::random(96, 64, 62);
        let gpu = Gpu::v100();
        let (c, stats) = merge_spmm(&gpu, &a, &b).unwrap();
        let expect = sputnik::reference::spmm(&a, &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn rejects_unaligned_batch() {
        let a = gen::uniform(16, 16, 0.5, 63);
        assert!(merge_spmm_profile::<f32>(&Gpu::v100(), &a, 48).is_err());
        assert!(merge_spmm_profile::<f32>(&Gpu::v100(), &a, 64).is_ok());
    }

    #[test]
    fn sputnik_beats_merge_on_rnn_problems() {
        // The Figure 10 result: geometric-mean 1.59x over MergeSpmm.
        let a = gen::uniform(2048, 2048, 0.8, 64);
        let gpu = Gpu::v100();
        let ours = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        let theirs = merge_spmm_profile::<f32>(&gpu, &a, 128).unwrap();
        let speedup = theirs.time_us / ours.time_us;
        assert!(
            speedup > 1.0,
            "expected Sputnik ahead of MergeSpmm, got {speedup:.2}x"
        );
        assert!(speedup < 4.0, "gap should be moderate, got {speedup:.2}x");
    }

    #[test]
    fn merge_beats_cusparse() {
        // Row-major coalesced accesses should beat cuSPARSE's column-major.
        let a = gen::uniform(2048, 2048, 0.8, 65);
        let gpu = Gpu::v100();
        let merge = merge_spmm_profile::<f32>(&gpu, &a, 128).unwrap();
        let cusp = crate::cusparse::cusparse_spmm_profile::<f32>(&gpu, &a, 128);
        assert!(merge.time_us < cusp.time_us);
    }
}
