//! # baselines — comparator kernels on the simulated GPU
//!
//! Every system the paper benchmarks against, implemented against the same
//! `gpu-sim` substrate as the Sputnik kernels so relative performance is an
//! emergent property of algorithmic structure, not hard-coded ratios:
//!
//! * [`cublas`] — tiled dense GEMM ("cuBLAS") and a staging transpose.
//! * [`cusparse`] — warp-per-row CSR SpMM on column-major operands, the
//!   mixed-precision fallback pathology, and `cusparseConstrainedGeMM` for
//!   SDDMM (requiring an explicit transpose).
//! * [`mod@merge_spmm`] — Yang et al.'s row-splitting SpMM.
//! * [`aspt`] — Hong et al.'s Adaptive Sparse Tiling SpMM/SDDMM with its
//!   reordering plan, 3x memory overhead, and shape constraints.
pub mod aspt;
pub mod block_sparse;
pub mod cublas;
pub mod cusparse;
pub mod ell_spmm;
pub mod merge_spmm;
pub mod nnz_split;

pub use aspt::{aspt_sddmm_profile, aspt_spmm, aspt_spmm_profile, AsptDirection, AsptPlan};
pub use block_sparse::{block_spmm, block_spmm_profile, BlockSpmmKernel};
pub use cublas::{gemm, gemm_profile, transpose, transpose_profile, GemmKernel, TransposeKernel};
pub use cusparse::{
    cusparse_sddmm, cusparse_sddmm_profile, cusparse_spmm, cusparse_spmm_half_profile,
    cusparse_spmm_profile,
};
pub use ell_spmm::{ell_spmm, ell_spmm_profile, EllSpmmKernel};
pub use merge_spmm::{merge_spmm, merge_spmm_profile, MergeSpmmKernel};
pub use nnz_split::{nnz_split_spmm, nnz_split_spmm_profile, NnzSplitSpmmKernel};
