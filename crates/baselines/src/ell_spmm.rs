//! ELLR-T-style SpMM (Vázquez et al., reference \[47\] of the paper).
//!
//! Thread-per-row over the column-major ELL arrays: at every step `j`, the
//! warp's 32 threads read 32 *consecutive rows'* j-th entries — perfectly
//! coalesced by construction, no shared memory, no alignment tricks. The
//! format does the coalescing that Sputnik needs ROMA and subwarp tiling
//! for; the bill arrives as padded slots (see
//! [`sparse::ell::EllMatrix::padding_overhead`]) and one dense-matrix row
//! load per slot, padding included.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, StageBound, StaticFacts, SyncUnsafeSlice,
};
use sparse::ell::EllMatrix;
use sparse::Matrix;

pub const BUF_VALUES: BufferId = BufferId(0);
pub const BUF_INDICES: BufferId = BufferId(1);
pub const BUF_LENGTHS: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);

/// ELLR-T SpMM: `A (ELL) x B (dense row-major) => C`. Warp-per-32-rows,
/// column tiles of 32.
pub struct EllSpmmKernel<'a> {
    a: &'a EllMatrix<f32>,
    b: Option<&'a Matrix<f32>>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    n: usize,
}

impl<'a> EllSpmmKernel<'a> {
    pub fn new(a: &'a EllMatrix<f32>, b: &'a Matrix<f32>, out: &'a mut Matrix<f32>) -> Self {
        assert_eq!(a.cols(), b.rows());
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        Self {
            a,
            b: Some(b),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            n,
        }
    }

    pub fn for_profile(a: &'a EllMatrix<f32>, n: usize) -> Self {
        Self {
            a,
            b: None,
            out: None,
            n,
        }
    }
}

impl Kernel for EllSpmmKernel<'_> {
    fn name(&self) -> String {
        "ellr_t_spmm".to_string()
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            self.n.div_ceil(32) as u32,
            (self.a.rows() as u32).div_ceil(128),
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(128)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let padded = (self.a.rows() * self.a.width()) as u64;
        vec![
            BufferSpec {
                id: BUF_VALUES,
                name: "ell_values",
                footprint_bytes: padded * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_INDICES,
                name: "ell_indices",
                footprint_bytes: padded * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_LENGTHS,
                name: "row_lengths",
                footprint_bytes: self.a.rows() as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: live row count, column-tile width, the
    /// block's row-offset alignment class, and the resident rows' ELL
    /// lengths (which determine each warp's trip count and per-slot active
    /// lanes). Warp starts are multiples of 32 rows and column tiles are
    /// multiples of 128 bytes, so every address class in the trace reduces
    /// to `r0 % 8` given the kernel-constant `rows` and `n`.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let rows = self.a.rows();
        let r0 = block.y as usize * 128;
        let count = 128.min(rows - r0);
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(count as u64);
        if count == 0 {
            return Some(fp.finish());
        }
        let n0 = block.x as usize * 32;
        fp.write_u64(32.min(self.n - n0) as u64);
        fp.write_u64(r0 as u64 % 8);
        for r in r0..r0 + count {
            fp.write_u64(self.a.row_length(r) as u64);
        }
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: the column-major ELL slot access at byte offset
    /// `(j * rows + r0 + w0) * 4` spans at most `lanes <= rows - r0 - w0`
    /// entries with `j < width`, so it ends at or before `width * rows * 4`,
    /// the padded footprint. Lengths end at `rows * 4`, the clamped output
    /// tile at `rows * n * 4`, and B is modeled as address-free sector
    /// traffic. All loads are scalar; warps never communicate (no shared
    /// memory at all).
    fn static_facts(&self) -> StaticFacts {
        let padded = (self.a.rows() * self.a.width()) as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_VALUES.0,
                    bound: AccessBound::Extent(padded * 4),
                },
                BufferBound {
                    slot: BUF_INDICES.0,
                    bound: AccessBound::Extent(padded * 4),
                },
                BufferBound {
                    slot: BUF_LENGTHS.0,
                    bound: AccessBound::Extent(self.a.rows() as u64 * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n * 4) as u64),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n * 4) as u64),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let rows = self.a.rows();
        let r0 = block.y as usize * 128;
        let count = 128.min(rows - r0);
        if count == 0 {
            return;
        }
        let n0 = block.x as usize * 32;
        let tile_n = 32.min(self.n - n0);

        // Cost-only work is skipped entirely on cache-hit replays.
        if ctx.recording() {
            ctx.misc(6);
            ctx.ld_global(BUF_LENGTHS, r0 as u64 * 4, count as u32, 1, 4);

            // Warps execute until their longest resident row is done (ELLR-T's
            // per-row early exit limits the waste to the warp's max length).
            for w0 in (0..count).step_by(32) {
                let lanes = 32.min(count - w0);
                let max_len = (w0..w0 + lanes)
                    .map(|i| self.a.row_length(r0 + i))
                    .max()
                    .unwrap_or(0);
                for j in 0..max_len {
                    // Values + indices at slot j: coalesced across the 32 rows.
                    ctx.ld_global(
                        BUF_VALUES,
                        ((j * rows + r0 + w0) * 4) as u64,
                        lanes as u32,
                        1,
                        4,
                    );
                    ctx.ld_global(
                        BUF_INDICES,
                        ((j * rows + r0 + w0) * 4) as u64,
                        lanes as u32,
                        1,
                        4,
                    );
                    // Each lane then reads ITS row's B entries for the column
                    // tile — 32 different B rows: a gather of row strips.
                    ctx.cost.ld_global_instrs += tile_n as u64; // one pass per output column
                                                                // Sector accounting: each active lane touches `tile_n`
                                                                // contiguous elements of its own B row.
                    let active = (w0..w0 + lanes)
                        .filter(|&i| j < self.a.row_length(r0 + i))
                        .count() as u64;
                    ctx.cost.gmem[BUF_B.0 as usize].ld_sectors +=
                        active * gpu_sim::memory::sectors_contiguous(0, tile_n as u64 * 4);
                    ctx.cost.fma_instrs += tile_n as u64;
                    ctx.misc(3);
                    ctx.cost.flops += 2 * active * tile_n as u64;
                }
            }

            // Coalesced stores of the tile, batched per block (the row stride
            // is a kernel constant, so this is bit-identical to a row loop).
            ctx.cost.st_global_instrs += (count as u64).div_ceil(32) * tile_n as u64 / 8;
            ctx.st_global_trace_tiled(
                BUF_C,
                (r0 * self.n + n0) as u64 * 4,
                self.n as u64 * 4,
                count as u64,
                tile_n as u64 * 4,
            );
        }

        if let (true, Some(b), Some(out)) = (ctx.functional(), self.b, self.out.as_ref()) {
            let b = b.as_slice();
            // Arena-staged accumulator tile, reused across rows; the lanes
            // helper keeps the per-element accumulation order over j.
            let mut acc = gpu_sim::arena::ScratchF32::take(tile_n);
            let n = self.n;
            for r in r0..r0 + count {
                acc.fill(0.0);
                gpu_sim::lanes::fma_accumulate(
                    &mut acc,
                    (0..self.a.row_length(r)).map(|j| {
                        let (c, v) = self.a.slot(r, j);
                        (v, &b[c as usize * n + n0..])
                    }),
                    |bv| bv,
                );
                for (x, &v) in acc.iter().enumerate() {
                    unsafe { out.write(r * self.n + n0 + x, v) };
                }
            }
        }
    }
}

/// Functional ELLR-T SpMM.
pub fn ell_spmm(gpu: &Gpu, a: &EllMatrix<f32>, b: &Matrix<f32>) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = EllSpmmKernel::new(a, b, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile ELLR-T SpMM.
pub fn ell_spmm_profile(gpu: &Gpu, a: &EllMatrix<f32>, n: usize) -> LaunchStats {
    gpu.profile(&EllSpmmKernel::for_profile(a, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn matches_reference() {
        let csr = gen::uniform(96, 64, 0.75, 911);
        let a = EllMatrix::from_csr(&csr);
        let b = Matrix::<f32>::random(64, 40, 912);
        let gpu = Gpu::v100();
        let (c, stats) = ell_spmm(&gpu, &a, &b);
        let expect = sputnik::reference::spmm(&csr, &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn competitive_on_balanced_dl_matrices() {
        // Low CoV: ELL's padding is tiny and its coalescing is free, but a
        // thread-per-row kernel (designed for SpMV) issues one load per
        // output column per slot, so it still trails Sputnik's register
        // tiling by a moderate factor — same order of magnitude, not more.
        let gpu = Gpu::v100();
        let csr = gen::with_cov(2048, 2048, 0.8, 0.15, 913);
        let ell = EllMatrix::from_csr(&csr);
        assert!(ell.padding_overhead() < 1.0);
        let t_ell = ell_spmm_profile(&gpu, &ell, 128);
        let t_csr = sputnik::spmm_profile::<f32>(
            &gpu,
            &csr,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        let ratio = t_ell.time_us / t_csr.time_us;
        assert!(
            ratio < 8.0,
            "ELL should be same-order on balanced matrices, got {ratio:.2}x"
        );
    }

    #[test]
    fn collapses_on_heavy_tailed_matrices() {
        // High CoV: the width blows up and ELL's padded slots bury it.
        let gpu = Gpu::v100();
        let csr = gen::power_law(2048, 2048, 100.0, 1.15, 914);
        let ell = EllMatrix::from_csr(&csr);
        assert!(
            ell.padding_overhead() > 2.0,
            "overhead {}",
            ell.padding_overhead()
        );
        let t_ell = ell_spmm_profile(&gpu, &ell, 128);
        let t_csr = sputnik::spmm_profile::<f32>(
            &gpu,
            &csr,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        assert!(
            t_ell.time_us > 1.5 * t_csr.time_us,
            "ELL must fall behind on heavy tails: {} vs {}",
            t_ell.time_us,
            t_csr.time_us
        );
        // ...and its memory footprint balloons with the padding.
        assert!(ell.bytes() > 2 * csr.bytes(sparse::IndexWidth::U32));
    }
}
