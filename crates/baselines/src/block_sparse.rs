//! Block-sparse SpMM, in the style of the OpenAI block-sparse GPU kernels
//! (Gray, Radford & Kingma — reference \[13\] of the paper).
//!
//! Each stored block is dense, so the kernel is a small GEMM per block:
//! coalesced vector loads, shared-memory staging, full FMA utilization —
//! recovering most of dense performance, at the model-quality cost of the
//! structured topology (quantified by
//! [`sparse::block::block_magnitude_retention`]). This comparator drives
//! the `ext_block_sparse` study: structured kernels win on raw throughput
//! per stored element; unstructured Sputnik wins on throughput per unit of
//! retained model quality.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, SmemScope, StageBound, StaticFacts,
    SyncUnsafeSlice,
};
use sparse::block::BsrMatrix;
use sparse::Matrix;

pub const BUF_BLOCKS: BufferId = BufferId(0);
pub const BUF_META: BufferId = BufferId(1);
pub const BUF_B: BufferId = BufferId(2);
pub const BUF_C: BufferId = BufferId(3);

/// Output columns per thread block.
const TILE_N: usize = 64;
/// Threads per block.
const THREADS: u32 = 128;

/// Block-sparse SpMM: `A (BSR) x B (dense row-major) => C (dense)`.
/// One thread block owns (block-row, 64-column) output tiles and walks the
/// block row's nonzero blocks like a dense GEMM walks its K strips.
pub struct BlockSpmmKernel<'a> {
    a: &'a BsrMatrix<f32>,
    b: Option<&'a Matrix<f32>>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    n: usize,
}

impl<'a> BlockSpmmKernel<'a> {
    pub fn new(a: &'a BsrMatrix<f32>, b: &'a Matrix<f32>, out: &'a mut Matrix<f32>) -> Self {
        assert_eq!(a.cols(), b.rows());
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        Self {
            a,
            b: Some(b),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            n,
        }
    }

    pub fn for_profile(a: &'a BsrMatrix<f32>, n: usize) -> Self {
        Self {
            a,
            b: None,
            out: None,
            n,
        }
    }
}

impl Kernel for BlockSpmmKernel<'_> {
    fn name(&self) -> String {
        format!("block_sparse_spmm_b{}", self.a.block_size())
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(self.n.div_ceil(TILE_N) as u32, self.a.block_rows() as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(THREADS)
    }

    fn shared_mem_bytes(&self) -> u32 {
        let bs = self.a.block_size();
        // One A block + one B strip (bs x TILE_N), double buffered.
        (2 * (bs * bs + bs * TILE_N) * 4) as u32
    }

    fn regs_per_thread(&self) -> u32 {
        64
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BUF_BLOCKS,
                name: "a_blocks",
                footprint_bytes: self.a.stored_elements() as u64 * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_META,
                name: "a_block_meta",
                footprint_bytes: (self.a.nnz_blocks() + self.a.block_rows() + 1) as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: live column-tile width, block-row length,
    /// the meta-load and output-strip base alignment classes, and each
    /// stored block's B-strip base class. With `bs` and `n` kernel-constant,
    /// a strip's per-row trace addresses advance by a fixed stride from its
    /// base, so the base class pins the whole sequence.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let bs = self.a.block_size();
        let br = block.y as usize;
        let n0 = block.x as usize * TILE_N;
        let mut fp = gpu_sim::Fingerprint::new();
        fp.write_u64(TILE_N.min(self.n - n0) as u64);
        fp.write_u64(br as u64 * 4 % 32);
        fp.write_u64(self.a.block_row_len(br) as u64);
        for (bc, _) in self.a.block_row(br) {
            fp.write_u64((bc * bs * self.n + n0) as u64 * 4 % 32);
        }
        fp.write_u64((br * bs * self.n + n0) as u64 * 4 % 32);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: the meta prelude reads an 8-byte pair at `br * 4`
    /// (`br < block_rows`, under the `(nnz_blocks + block_rows + 1) * 4`
    /// footprint); B-strip and output traces use clamped tiles whose last
    /// rows sit at `((bc + 1) * bs - 1)` and `((br + 1) * bs - 1)`
    /// respectively, inside `cols * n * 4` / `rows * n * 4`. Block payloads
    /// are address-free sector traffic. Each barrier epoch stages one
    /// A-block + one B-strip — half the declared double buffer.
    fn static_facts(&self) -> StaticFacts {
        let bs = self.a.block_size();
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_BLOCKS.0,
                    bound: AccessBound::Extent(self.a.stored_elements() as u64 * 4),
                },
                BufferBound {
                    slot: BUF_META.0,
                    bound: AccessBound::Extent((self.a.block_rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n * 4) as u64),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n * 4) as u64),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::BarrierSeparated,
            stage: StageBound::Bytes(((bs * bs + bs * TILE_N) * 4) as u64),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let bs = self.a.block_size();
        let br = block.y as usize;
        let n0 = block.x as usize * TILE_N;
        let tile_n = TILE_N.min(self.n - n0);
        let warps = (THREADS / 32) as u64;

        let nblocks = self.a.block_row_len(br);
        // Cost-only work is skipped entirely on cache-hit replays.
        if ctx.recording() {
            ctx.misc(8);
            ctx.ld_global(BUF_META, br as u64 * 4, 2, 1, 4);

            for (bc, _) in self.a.block_row(br) {
                // Stage the A block (dense, vectorized) and the B strip.
                let a_elems = (bs * bs) as u64;
                let b_elems = (bs * TILE_N) as u64;
                let stage_instrs = (a_elems + b_elems).div_ceil(THREADS as u64 * 4);
                ctx.cost.ld_global_instrs += stage_instrs * warps + 1;
                ctx.smem_store(
                    stage_instrs * warps,
                    (a_elems + b_elems) * 4,
                    SmemScope::Block,
                );
                ctx.cost.gmem[BUF_BLOCKS.0 as usize].ld_sectors += a_elems * 4 / 32 + 1;
                // B strip rows, batched per block (row stride is a kernel
                // constant: bit-identical to the per-row loop).
                ctx.ld_global_trace_tiled(
                    BUF_B,
                    (bc * bs * self.n + n0) as u64 * 4,
                    self.n as u64 * 4,
                    bs as u64,
                    tile_n as u64 * 4,
                );
                ctx.bar_sync();

                // Dense math: bs x TILE_N x bs FMAs, cuBLAS-grade inner loop.
                let fmas = (bs * TILE_N * bs) as u64;
                ctx.cost.fma_instrs += fmas / 32;
                ctx.smem_load(fmas / 32 / 8, fmas / 8, SmemScope::Block);
                ctx.misc(4 * warps);
                ctx.cost.flops += 2 * (bs * tile_n * bs) as u64;
            }
            if nblocks > 0 {
                // Store the block row's output strip.
                let store_instrs = ((bs * tile_n) as u64).div_ceil(THREADS as u64 * 4).max(1);
                ctx.cost.st_global_instrs += store_instrs * warps;
                ctx.st_global_trace_tiled(
                    BUF_C,
                    (br * bs * self.n + n0) as u64 * 4,
                    self.n as u64 * 4,
                    bs as u64,
                    tile_n as u64 * 4,
                );
            }
        }
        if nblocks == 0 {
            return;
        }

        if let (true, Some(b), Some(out)) = (ctx.functional(), self.b, self.out.as_ref()) {
            let b = b.as_slice();
            let n = self.n;
            // Arena-staged output strip accumulator (zeroed on checkout). Per
            // output row, the lanes helper reduces the whole block row with
            // register-resident accumulators; the (block, k) term order —
            // including the explicit-zero skip — matches the naive loop.
            let mut acc = ctx.scratch_f32(bs * tile_n);
            // Stored blocks are dense, so most payload entries are explicit
            // zeros at DL sparsities. Scan each payload row once, collecting
            // the surviving (value, B-row base) pairs on the stack, then
            // reduce them with register-resident accumulators. Survivor
            // order matches the naive kk loop, so results are bit-identical.
            let mut surv = [(0.0f32, 0usize); 64];
            for (bc, payload) in self.a.block_row(br) {
                for r in 0..bs {
                    let arow = &mut acc[r * tile_n..(r + 1) * tile_n];
                    for k0 in (0..bs).step_by(surv.len()) {
                        let kw = surv.len().min(bs - k0);
                        let mut cnt = 0;
                        for (kk, &a_val) in
                            payload[r * bs + k0..r * bs + k0 + kw].iter().enumerate()
                        {
                            if a_val != 0.0 {
                                surv[cnt] = (a_val, (bc * bs + k0 + kk) * n + n0);
                                cnt += 1;
                            }
                        }
                        gpu_sim::lanes::fma_accumulate(
                            arow,
                            surv[..cnt].iter().map(|&(a, base)| (a, &b[base..])),
                            |bv| bv,
                        );
                    }
                }
            }
            for r in 0..bs {
                for x in 0..tile_n {
                    unsafe { out.write((br * bs + r) * self.n + n0 + x, acc[r * tile_n + x]) };
                }
            }
        }
    }
}

/// Functional block-sparse SpMM.
pub fn block_spmm(gpu: &Gpu, a: &BsrMatrix<f32>, b: &Matrix<f32>) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = BlockSpmmKernel::new(a, b, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile block-sparse SpMM.
pub fn block_spmm_profile(gpu: &Gpu, a: &BsrMatrix<f32>, n: usize) -> LaunchStats {
    gpu.profile(&BlockSpmmKernel::for_profile(a, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::block;

    #[test]
    fn matches_dense_reference() {
        let d = Matrix::<f32>::random(64, 64, 501);
        let a = block::block_prune(&d, 8, 0.5);
        let b = Matrix::<f32>::random(64, 48, 502);
        let gpu = Gpu::v100();
        let (c, stats) = block_spmm(&gpu, &a, &b);
        let expect = a.to_dense().matmul(&b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn empty_block_rows_are_fine() {
        // A matrix whose top half has no blocks at all.
        let d = Matrix::<f32>::from_fn(32, 32, |r, _| if r >= 16 { 1.0 } else { 0.0 });
        let a = sparse::block::BsrMatrix::from_dense(&d, 16);
        let b = Matrix::<f32>::random(32, 32, 503);
        let gpu = Gpu::v100();
        let (c, _) = block_spmm(&gpu, &a, &b);
        for x in 0..32 {
            assert_eq!(c.get(0, x), 0.0, "empty block row stays zero");
        }
    }

    #[test]
    fn block_kernel_beats_unstructured_per_stored_element() {
        // The structured win: at equal element sparsity, dense blocks run
        // closer to dense-GEMM efficiency than unstructured CSR.
        let gpu = Gpu::v100();
        let d = Matrix::<f32>::random(2048, 2048, 504);
        let blocked = block::block_prune(&d, 32, 0.8);
        let unstructured = sparse::gen::uniform(2048, 2048, 0.8, 505);

        let t_block = block_spmm_profile(&gpu, &blocked, 128);
        let t_csr = sputnik::spmm_profile::<f32>(
            &gpu,
            &unstructured,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        // Equal useful FLOPs (same element count); compare time directly.
        assert!(
            t_block.time_us < t_csr.time_us,
            "block kernel {} us should beat unstructured {} us at equal sparsity",
            t_block.time_us,
            t_csr.time_us
        );
    }

    #[test]
    fn but_structure_costs_model_quality() {
        // ...which is the paper's argument for unstructured kernels.
        let d = Matrix::<f32>::random(512, 512, 506);
        let retention = block::block_magnitude_retention(&d, 32, 0.8);
        assert!(
            retention < 0.9,
            "32x32 blocks lose weight magnitude, got {retention}"
        );
    }
}
