//! Nonzero-splitting SpMM — the second kernel of Yang, Buluç & Owens, which
//! their library selects for short-row matrices.
//!
//! Instead of assigning rows to processing elements, the nonzero array is
//! cut into equal-size strips regardless of row boundaries: load balance is
//! perfect *by construction*, but every strip must binary-search its
//! starting row, handle rows that straddle strip boundaries with atomic
//! accumulations, and generally carry "computational irregularity that can
//! damage performance on more regular problems" — the Section V-C critique
//! that motivates the paper's decoupled row-swizzle approach. This
//! implementation exists to make that comparison concrete
//! (`ext_load_balancing`).

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, StageBound, StaticFacts,
};
use sparse::{CsrMatrix, Matrix, Scalar};
use std::sync::atomic::{AtomicU32, Ordering};

pub const BUF_A_VALUES: BufferId = BufferId(0);
pub const BUF_A_INDICES: BufferId = BufferId(1);
pub const BUF_A_OFFSETS: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);

/// Nonzeros per strip (per thread block).
const STRIP: usize = 256;
/// Output columns per block.
const TILE_N: usize = 32;

/// Nonzero-splitting SpMM: `A (CSR) x B (dense row-major) => C`.
///
/// The output matrix must be zero-initialized: boundary rows are accumulated
/// with atomics (modeled and, functionally, with relaxed `AtomicU32` CAS on
/// the f32 bits, which is exactly what `atomicAdd(float*)` compiles to).
pub struct NnzSplitSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    b: Option<&'a Matrix<T>>,
    /// Output viewed as atomic bits (f32 only for functional mode).
    out: Option<&'a [AtomicU32]>,
    n: usize,
    strips: usize,
}

impl<'a, T: Scalar> NnzSplitSpmmKernel<'a, T> {
    pub fn new(a: &'a CsrMatrix<T>, b: &'a Matrix<T>, out: &'a [AtomicU32]) -> Self {
        assert_eq!(a.cols(), b.rows());
        assert_eq!(out.len(), a.rows() * b.cols());
        let n = b.cols();
        let strips = a.nnz().div_ceil(STRIP).max(1);
        Self {
            a,
            b: Some(b),
            out: Some(out),
            n,
            strips,
        }
    }

    pub fn for_profile(a: &'a CsrMatrix<T>, n: usize) -> Self {
        let strips = a.nnz().div_ceil(STRIP).max(1);
        Self {
            a,
            b: None,
            out: None,
            n,
            strips,
        }
    }

    /// Row containing value position `pos` (the device does this with a
    /// binary search over row_offsets in the block prelude).
    fn row_of(&self, pos: usize) -> usize {
        let offsets = self.a.row_offsets();
        match offsets.binary_search(&(pos as u32)) {
            // `pos` may sit at the start of a run of empty rows; take the
            // last row whose range contains it.
            Ok(mut i) => {
                while i + 1 < offsets.len() && offsets[i + 1] as usize == pos {
                    i += 1;
                }
                i.min(self.a.rows() - 1)
            }
            Err(i) => i - 1,
        }
    }
}

impl<T: Scalar> Kernel for NnzSplitSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("nnz_split_spmm_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(self.n.div_ceil(TILE_N) as u32, self.strips as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }

    fn shared_mem_bytes(&self) -> u32 {
        (STRIP * 8) as u32
    }

    fn atomic_output(&self) -> bool {
        // Boundary rows are accumulated with atomic CAS: neighbouring strips
        // legitimately touch the same output elements.
        true
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        let eb = T::BYTES as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * eb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                footprint_bytes: nnz * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature: strip length, live column-tile width, the
    /// strip's value/index base alignment classes, and the number of row
    /// boundaries the strip straddles (which sets the interior-store and
    /// atomic accounting). The binary-search prelude and the base-0 strided
    /// B/C sector models are constant given those.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let nnz = self.a.nnz();
        let start = block.y as usize * STRIP;
        let mut fp = gpu_sim::Fingerprint::new();
        if start >= nnz {
            fp.write_u64(u64::MAX);
            return Some(fp.finish());
        }
        let count = STRIP.min(nnz - start);
        let n0 = block.x as usize * TILE_N;
        let eb = T::BYTES as u64;
        fp.write_u64(count as u64);
        fp.write_u64(TILE_N.min(self.n - n0) as u64);
        fp.write_u64(start as u64 * eb % 32);
        fp.write_u64(start as u64 * 4 % 32);
        let first_row = self.row_of(start);
        let last_row = self.row_of(start + count - 1);
        fp.write_u64(last_row.saturating_sub(first_row) as u64);
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: strip loads cover `[start, start + count)` with `start +
    /// count <= nnz` (the head vector load is clamped to `count`); the
    /// binary-search offset loads, B strips, and atomic output stores are
    /// modeled as address-free sector traffic bounded by their footprints by
    /// construction. Blocks are a single warp with no staged shared memory.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.a.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((self.a.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent((self.a.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent((self.a.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let nnz = self.a.nnz();
        let start = block.y as usize * STRIP;
        if start >= nnz {
            return;
        }
        let count = STRIP.min(nnz - start);
        let n0 = block.x as usize * TILE_N;
        let tile_n = TILE_N.min(self.n - n0);
        let eb = T::BYTES as u64;

        // The starting row is needed by both the cost model (boundary
        // accounting) and the functional body.
        let first_row = self.row_of(start);

        // Cost-only work is skipped entirely on cache-hit replays.
        if ctx.recording() {
            // Prelude: binary search for the starting row (log2(rows)
            // scattered loads of row_offsets) — the overhead row-splitting
            // doesn't pay.
            let bs_steps = (self.a.rows().max(2) as f64).log2().ceil() as u64;
            ctx.misc(4 + 3 * bs_steps);
            ctx.cost.ld_global_instrs += bs_steps;
            ctx.cost.gmem[BUF_A_OFFSETS.0 as usize].ld_sectors += bs_steps;

            // Strip loads: values + indices, coalesced. The head load is a
            // full-warp vector load clamped to the strip: the final strip of
            // the matrix may hold fewer than lanes*vec_width nonzeros, and
            // reading past them would run off the values footprint.
            let head_lanes = count.min(32) as u64;
            let head_vec = (count as u64).div_ceil(32).min(4);
            ctx.cost.ld_global_instrs += 1;
            ctx.ld_global_trace(
                BUF_A_VALUES,
                start as u64 * eb,
                (head_lanes * head_vec).min(count as u64) * eb,
            );
            ctx.cost.ld_global_instrs += 2 * (count as u64).div_ceil(32 * 4);
            ctx.ld_global_trace(BUF_A_VALUES, start as u64 * eb, count as u64 * eb);
            ctx.ld_global_trace(BUF_A_INDICES, start as u64 * 4, count as u64 * 4);

            // Per nonzero: one B strip load + FMA + row-boundary bookkeeping.
            ctx.cost.ld_global_instrs += count as u64;
            ctx.cost.gmem[BUF_B.0 as usize].ld_sectors +=
                count as u64 * gpu_sim::memory::sectors_contiguous(0, tile_n as u64 * eb);
            ctx.cost.fma_instrs += count as u64;
            ctx.misc(3 * count as u64); // segment detection + carry logic

            // Output: rows fully inside the strip are written once; the first
            // and last (potentially shared) rows use atomics.
            let last_row = self.row_of(start + count - 1);
            let interior_rows = last_row.saturating_sub(first_row).saturating_sub(1);
            ctx.cost.st_global_instrs += interior_rows as u64 + 2;
            // Atomic read-modify-write per boundary element: 2 accesses each.
            let atomic_elems = 2 * tile_n as u64;
            ctx.cost.st_global_instrs += atomic_elems.div_ceil(32);
            ctx.cost.gmem[BUF_C.0 as usize].st_sectors += atomic_elems.div_ceil(8)
                + (interior_rows as u64 + 2)
                    * gpu_sim::memory::sectors_contiguous(0, tile_n as u64 * eb);
            ctx.misc(6 * tile_n as u64 / 8); // atomic retry slack
            ctx.cost.stall_cycles += 8; // serialization at hot boundary rows
            ctx.cost.flops += 2 * (count * tile_n) as u64;
        }

        // ---- Functional -----------------------------------------------------
        if let (true, Some(b), Some(out)) = (ctx.functional(), self.b, self.out) {
            let b = b.as_slice();
            let values = self.a.values();
            let indices = self.a.col_indices();
            let mut row = first_row;
            let offsets = self.a.row_offsets();
            // Arena-staged boundary accumulator (zeroed on checkout).
            let mut acc = ctx.scratch_f32(tile_n);
            let flush = |row: usize, acc: &mut [f32], out: &[AtomicU32]| {
                for (x, v) in acc.iter_mut().enumerate() {
                    if *v != 0.0 {
                        // atomicAdd(float*) via CAS on the bits.
                        let slot = &out[row * self.n + n0 + x];
                        let mut cur = slot.load(Ordering::Relaxed);
                        loop {
                            let new = f32::from_bits(cur) + *v;
                            match slot.compare_exchange_weak(
                                cur,
                                new.to_bits(),
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(actual) => cur = actual,
                            }
                        }
                        *v = 0.0;
                    }
                }
            };
            // Row-segment reduction: each run of nonzeros belonging to one
            // row goes through the lanes helper in one pass (same per-element
            // order as the nonzero-at-a-time loop), flushing at boundaries.
            let n = self.n;
            let mut pos = start;
            while pos < start + count {
                while offsets[row + 1] as usize <= pos {
                    flush(row, &mut acc, out);
                    row += 1;
                }
                let seg_end = (offsets[row + 1] as usize).min(start + count);
                gpu_sim::lanes::fma_accumulate(
                    &mut acc,
                    (pos..seg_end)
                        .map(|p| (values[p].to_f32(), &b[indices[p] as usize * n + n0..])),
                    |bv| bv.to_f32(),
                );
                pos = seg_end;
            }
            flush(row, &mut acc, out);
        }
    }
}

/// Functional nonzero-splitting SpMM (f32; atomics operate on f32 bits).
pub fn nnz_split_spmm(
    gpu: &Gpu,
    a: &CsrMatrix<f32>,
    b: &Matrix<f32>,
) -> (Matrix<f32>, LaunchStats) {
    let atomic_out: Vec<AtomicU32> = (0..a.rows() * b.cols())
        .map(|_| AtomicU32::new(0f32.to_bits()))
        .collect();
    let stats = {
        let kernel = NnzSplitSpmmKernel::new(a, b, &atomic_out);
        gpu.launch(&kernel)
    };
    let data: Vec<f32> = atomic_out
        .iter()
        .map(|a| f32::from_bits(a.load(Ordering::Relaxed)))
        .collect();
    (Matrix::from_vec(a.rows(), b.cols(), data), stats)
}

/// Profile nonzero-splitting SpMM.
pub fn nnz_split_spmm_profile<T: Scalar>(gpu: &Gpu, a: &CsrMatrix<T>, n: usize) -> LaunchStats {
    gpu.profile(&NnzSplitSpmmKernel::<T>::for_profile(a, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn matches_reference() {
        let a = gen::uniform(64, 96, 0.8, 921);
        let b = Matrix::<f32>::random(96, 48, 922);
        let gpu = Gpu::v100();
        let (c, stats) = nnz_split_spmm(&gpu, &a, &b);
        let expect = sputnik::reference::spmm(&a, &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn handles_empty_rows_and_straddles() {
        // Rows of wildly different lengths, including empties, so strips
        // straddle many row boundaries.
        let a = gen::power_law(128, 256, 40.0, 1.2, 923);
        let b = Matrix::<f32>::random(256, 32, 924);
        let gpu = Gpu::v100();
        let (c, _) = nnz_split_spmm(&gpu, &a, &b);
        let expect = sputnik::reference::spmm(&a, &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn balance_is_inherent_even_on_pathological_matrices() {
        // All nonzeros in one row: row-splitting would serialize on a single
        // block; nonzero-splitting keeps every strip busy.
        let gpu = Gpu::v100();
        let mut dense = Matrix::<f32>::zeros(512, 2048);
        for c in 0..2048 {
            dense.set(0, c, 1.0);
        }
        let a = sparse::CsrMatrix::from_dense(&dense);
        let stats = nnz_split_spmm_profile::<f32>(&gpu, &a, 128);
        assert!(stats.balance > 0.01, "strips spread the single row's work");
        // And it beats the swizzled row-splitting kernel here, where the
        // swizzle cannot help (one row owns everything).
        let sputnik_stats = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        assert!(stats.time_us < sputnik_stats.time_us);
    }

    #[test]
    fn but_pays_overhead_on_regular_matrices() {
        // Section V-C's claim: on balanced DL matrices the irregular scheme
        // loses to the decoupled swizzle approach.
        let gpu = Gpu::v100();
        let a = gen::uniform(4096, 2048, 0.8, 925);
        let nnz_split = nnz_split_spmm_profile::<f32>(&gpu, &a, 128);
        let sputnik_stats = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            2048,
            128,
            sputnik::SpmmConfig::heuristic::<f32>(128),
        );
        assert!(
            sputnik_stats.time_us < nnz_split.time_us,
            "sputnik {} vs nnz-split {}",
            sputnik_stats.time_us,
            nnz_split.time_us
        );
    }
}
