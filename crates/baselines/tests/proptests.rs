//! Property-based tests: baselines agree with references on arbitrary
//! problems, and the structured formats keep their invariants.

use gpu_sim::Gpu;
use proptest::prelude::*;
use sparse::{block, gen, Layout, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The cuSPARSE-model SpMM matches the reference for arbitrary shapes.
    #[test]
    fn cusparse_spmm_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40,
                                       s in 0.0f64..1.0, seed in 0u64..300) {
        let a = gen::uniform(m, k, s, seed);
        let b_rm = Matrix::<f32>::random(k, n, seed ^ 0x7);
        let b = b_rm.to_layout(Layout::ColMajor);
        let gpu = Gpu::v100();
        let (c, _) = baselines::cusparse_spmm(&gpu, &a, &b);
        let expect = sputnik::reference::spmm(&a, &b_rm);
        for r in 0..m {
            for col in 0..n {
                prop_assert!((c.get(r, col) - expect.get(r, col)).abs() < 1e-3);
            }
        }
    }

    /// MergeSpmm matches the reference whenever its N constraint holds.
    #[test]
    fn merge_spmm_matches_reference(m in 1usize..48, k in 1usize..48, nm in 1usize..3,
                                    s in 0.0f64..1.0, seed in 0u64..300) {
        let n = nm * 32;
        let a = gen::uniform(m, k, s, seed);
        let b = Matrix::<f32>::random(k, n, seed ^ 0x8);
        let gpu = Gpu::v100();
        let (c, _) = baselines::merge_spmm(&gpu, &a, &b).unwrap();
        let expect = sputnik::reference::spmm(&a, &b);
        prop_assert!(c.max_abs_diff(&expect) < 1e-3);
    }

    /// Block pruning + block SpMM equals densified matmul for any block size
    /// that divides the shape.
    #[test]
    fn block_spmm_matches_reference(bm in 1usize..5, bk in 1usize..5,
                                    bs in prop_oneof![Just(4usize), Just(8)],
                                    sparsity in 0.0f64..1.0, seed in 0u64..300) {
        let (m, k) = (bm * bs * 2, bk * bs * 2);
        let d = Matrix::<f32>::random(m, k, seed);
        let a = block::block_prune(&d, bs, sparsity);
        let b = Matrix::<f32>::random(k, 32, seed ^ 0x9);
        let gpu = Gpu::v100();
        let (c, _) = baselines::block_spmm(&gpu, &a, &b);
        let expect = a.to_dense().matmul(&b);
        prop_assert!(c.max_abs_diff(&expect) < 1e-3);
    }

    /// ELL roundtrips and its SpMM matches the reference.
    #[test]
    fn ell_spmm_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..32,
                                  s in 0.0f64..1.0, seed in 0u64..300) {
        let csr = gen::uniform(m, k, s, seed);
        let ell = sparse::EllMatrix::from_csr(&csr);
        prop_assert_eq!(ell.to_csr(), csr.clone());
        let b = Matrix::<f32>::random(k, n, seed ^ 0xa);
        let gpu = Gpu::v100();
        let (c, _) = baselines::ell_spmm(&gpu, &ell, &b);
        let expect = sputnik::reference::spmm(&csr, &b);
        prop_assert!(c.max_abs_diff(&expect) < 1e-3);
    }

    /// Block-pruned retention is in (0, 1] and block sparsity tracks the
    /// element target.
    #[test]
    fn block_prune_invariants(bs in prop_oneof![Just(2usize), Just(4), Just(8)],
                              sparsity in 0.1f64..0.95, seed in 0u64..300) {
        let d = Matrix::<f32>::random(32, 32, seed);
        let a = block::block_prune(&d, bs, sparsity);
        let retention = block::block_magnitude_retention(&d, bs, sparsity);
        prop_assert!(retention > 0.0 && retention <= 1.0 + 1e-9);
        let stored_frac = a.stored_elements() as f64 / (32.0 * 32.0);
        prop_assert!((stored_frac - (1.0 - sparsity)).abs() < 0.15);
    }
}
