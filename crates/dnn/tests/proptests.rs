//! Property-based tests for the DNN substrate.

use dnn::{magnitude_prune, pruning, MobileNetV1};
use proptest::prelude::*;
use sparse::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Magnitude pruning hits the requested density within one entry and
    /// keeps a subset of the original values unchanged.
    #[test]
    fn pruning_contract(rows in 1usize..32, cols in 1usize..32, sparsity in 0.0f64..1.0, seed in 0u64..500) {
        let w = Matrix::<f32>::random(rows, cols, seed);
        let p = magnitude_prune(&w, sparsity);
        let total = rows * cols;
        let expect_keep = total - ((total as f64) * sparsity).round() as usize;
        prop_assert!((p.nnz() as i64 - expect_keep as i64).abs() <= 1,
            "kept {} expected {}", p.nnz(), expect_keep);
        for (r, c, v) in p.iter() {
            prop_assert_eq!(v, w.get(r, c), "pruning must not alter surviving values");
        }
    }

    /// No pruned-away entry has larger magnitude than a kept one.
    #[test]
    fn pruning_keeps_heaviest(seed in 0u64..200) {
        let w = Matrix::<f32>::random(16, 16, seed);
        let p = magnitude_prune(&w, 0.5);
        let kept = p.to_dense();
        let min_kept = p.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for r in 0..16 {
            for c in 0..16 {
                if kept.get(r, c) == 0.0 && w.get(r, c) != 0.0 {
                    prop_assert!(w.get(r, c).abs() <= min_kept + 1e-6);
                }
            }
        }
    }

    /// The gradual schedule is monotone and bounded for any ordering of its
    /// parameters.
    #[test]
    fn gradual_schedule_contract(begin in 0u64..1000, span in 1u64..5000,
                                 init in 0.0f64..0.5, fin in 0.5f64..1.0) {
        let end = begin + span;
        let mut prev = init;
        for t in (0..end + 500).step_by(97) {
            let s = pruning::gradual_sparsity(t, begin, end, init, fin);
            prop_assert!((init..=fin).contains(&s));
            prop_assert!(s >= prev - 1e-12);
            prev = s;
        }
        prop_assert_eq!(pruning::gradual_sparsity(end + 1, begin, end, init, fin), fin);
    }

    /// MobileNet width scaling: channels are multiples of 8, monotone in
    /// width, and MACs grow with width.
    #[test]
    fn mobilenet_width_scaling(w1 in 0.5f64..2.0, delta in 0.1f64..1.0) {
        let a = MobileNetV1::new(w1);
        let b = MobileNetV1::new(w1 + delta);
        for blk in a.blocks.iter().chain(b.blocks.iter()) {
            prop_assert_eq!(blk.in_channels % 8, 0);
            prop_assert_eq!(blk.out_channels % 8, 0);
        }
        prop_assert!(b.macs() >= a.macs());
    }

    /// ResNet-50 conv inventory is internally consistent under the matmul
    /// lowering: positive dims, spatial monotone non-increasing.
    #[test]
    fn resnet_inventory_consistent(_x in 0u8..1) {
        let convs = dnn::resnet50_convs();
        let mut prev_spatial = usize::MAX;
        for c in &convs {
            prop_assert!(c.out_channels > 0 && c.k > 0 && c.spatial > 0);
            // Spatial never grows through the network (stem aside).
            prop_assert!(c.spatial <= prev_spatial || prev_spatial == usize::MAX);
            prev_spatial = prev_spatial.min(c.spatial);
        }
    }
}
