//! Launch-attribution and profile-report invariants for the attention
//! stack.
//!
//! Two regressions are pinned here:
//!
//! 1. **Every device-data mutation and every simulated microsecond is
//!    attributed to a launch.** The attention pipelines used to scale the
//!    logits with a host-side loop over device data — zero simulated cost,
//!    invisible to the trace. The scale now rides inside the softmax
//!    kernels (or the fused kernel), so each `AttentionTime` component must
//!    equal the duration of a traced launch and the components must sum to
//!    the track's total.
//!
//! 2. **Per-layer report rows sum exactly to the trace total** once fusion
//!    changes launch counts ([`ProfileReport::check`]), across the
//!    transformer's span/replay accounting.
//!
//! The trace recorder is process-global, so these tests serialize on one
//! lock and isolate themselves with uniquely-named device tracks.

use dnn::attention;
use dnn::transformer::{benchmark, AttentionMode, TransformerConfig};
use gpu_sim::trace::{self, EventKind, TraceEvent};
use gpu_sim::{DeviceConfig, Gpu, ProfileReport};
use sparse::{gen, Matrix};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn test_gpu(track: &str) -> Gpu {
    let mut dev = DeviceConfig::v100();
    dev.name = track.to_string();
    Gpu::new(dev)
}

fn traced<R>(track: &str, f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
    trace::enable();
    let out = f();
    let events = trace::disable()
        .into_iter()
        .filter(|e| e.track == track)
        .collect();
    (out, events)
}

fn launches(events: &[TraceEvent]) -> Vec<(&str, f64)> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Launch { stats, .. } => Some((e.name.as_str(), stats.time_us)),
            _ => None,
        })
        .collect()
}

/// Dense attention: three launches, the scale inside the softmax kernel,
/// every timing component backed by exactly one launch.
#[test]
fn dense_attention_attributes_every_microsecond_to_a_launch() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let track = "attr-dense";
    let gpu = test_gpu(track);
    let q = Matrix::<f32>::random(48, 16, 1);
    let k = Matrix::<f32>::random(48, 16, 2);
    let v = Matrix::<f32>::random(48, 16, 3);
    let ((_, t), events) = traced(track, || attention::dense_attention(&gpu, &q, &k, &v));

    let l = launches(&events);
    assert_eq!(
        l.len(),
        3,
        "dense attention is exactly three launches: {l:?}"
    );
    assert_eq!(
        l[1].0, "dense_softmax_scaled",
        "the logit scale must ride inside the softmax kernel"
    );
    assert_eq!(t.scores_us, l[0].1);
    assert_eq!(t.softmax_us, l[1].1);
    assert_eq!(t.context_us, l[2].1);
    assert_eq!(t.fused_us, 0.0);
    let traced_us: f64 = l.iter().map(|&(_, us)| us).sum();
    assert!(
        (t.total_us() - traced_us).abs() <= 1e-9 * traced_us.max(1.0),
        "attention time {} must be fully launch-attributed ({} traced)",
        t.total_us(),
        traced_us
    );
}

/// Sparse attention through the planner: one fused launch wrapped in a
/// fusion span, and the same attribution invariant.
#[test]
fn fused_sparse_attention_is_one_attributed_launch() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let track = "attr-fused";
    let gpu = test_gpu(track);
    let q = Matrix::<f32>::random(64, 16, 4);
    let k = Matrix::<f32>::random(64, 16, 5);
    let v = Matrix::<f32>::random(64, 16, 6);
    let mask = gen::attention_mask(64, 8, 0.8, 7);
    let ((_, t), events) = traced(track, || {
        attention::sparse_attention(&gpu, &q, &k, &v, &mask)
    });

    let l = launches(&events);
    assert_eq!(l.len(), 1, "fused attention is one launch: {l:?}");
    assert!(
        l[0].0.starts_with("fused_sddmm_softmax_spmm"),
        "unexpected kernel {}",
        l[0].0
    );
    assert_eq!(t.fused_us, l[0].1);
    assert_eq!(t.total_us(), l[0].1);
    let fusion_span = events
        .iter()
        .find(|e| e.cat == "fusion" && matches!(e.kind, EventKind::Span { .. }));
    let span = fusion_span.expect("fused launch wrapped in a fusion span");
    assert!((span.dur_us() - t.fused_us).abs() <= 1e-9 * t.fused_us.max(1.0));
}

/// The unfused reference: three launches, the scale inside the sparse
/// softmax kernel (scaled variant), nothing host-side.
#[test]
fn unfused_sparse_attention_scale_rides_in_the_softmax_kernel() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let track = "attr-unfused";
    let gpu = test_gpu(track);
    let q = Matrix::<f32>::random(48, 16, 8);
    let k = Matrix::<f32>::random(48, 16, 9);
    let v = Matrix::<f32>::random(48, 16, 10);
    let mask = gen::attention_mask(48, 8, 0.8, 11);
    let ((_, t), events) = traced(track, || {
        attention::sparse_attention_unfused(&gpu, &q, &k, &v, &mask)
    });

    let l = launches(&events);
    assert_eq!(
        l.len(),
        3,
        "unfused sparse attention is three launches: {l:?}"
    );
    assert!(
        l[1].0.starts_with("sputnik_sparse_softmax_scaled"),
        "the scale must be fused into the sparse softmax: {}",
        l[1].0
    );
    assert_eq!(t.scores_us, l[0].1);
    assert_eq!(t.softmax_us, l[1].1);
    assert_eq!(t.context_us, l[2].1);
    assert_eq!(t.fused_us, 0.0);
}

/// The transformer's traced profile: per-layer rows must sum exactly to
/// the total ([`ProfileReport::check`]), with fused attention changing the
/// launch count inside each layer span.
#[test]
fn transformer_layer_rows_sum_to_total_with_fusion() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let track = "attr-transformer";
    let gpu = test_gpu(track);
    let cfg = TransformerConfig {
        layers: 3,
        heads: 2,
        d_model: 64,
        ff: 128,
        seq: 256,
        batch: 2,
    };
    let mode = AttentionMode::Sparse {
        band: 16,
        off_diag_sparsity: 0.9,
        seed: 12,
    };
    let (bench, events) = traced(track, || benchmark(&gpu, &cfg, &mode));
    assert!(!bench.out_of_memory);

    // The fused kernel ran inside the layer span.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Launch { .. })
                && e.name.starts_with("fused_sddmm_softmax_spmm")),
        "sparse transformer attention must route through the fused kernel"
    );
    assert!(
        events
            .iter()
            .any(|e| e.cat == "fusion" && matches!(e.kind, EventKind::Span { .. })),
        "per-fusion span events must be exported"
    );

    let report = ProfileReport::from_events(&events);
    report
        .check()
        .unwrap_or_else(|e| panic!("sum invariant violated: {e}"));
    assert_eq!(
        report.layers.len(),
        cfg.layers,
        "one row per layer, no synthetic leakage: {:?}",
        report
            .layers
            .iter()
            .map(|l| l.name.clone())
            .collect::<Vec<_>>()
    );
    assert!(
        (report.total_us - bench.forward_us).abs() <= 1e-6 * bench.forward_us,
        "trace total {} must match the benchmark's forward time {}",
        report.total_us,
        bench.forward_us
    );
    // Replayed layers repeat layer 0's cost exactly.
    let first = report.layers[0].dur_us;
    for row in &report.layers[1..] {
        assert!(
            (row.dur_us - first).abs() <= 1e-6 * first,
            "layer rows must be identical across replays: {} vs {first}",
            row.dur_us
        );
    }
}
