//! The sparse Transformer experiment (Section VII-C, Table III).
//!
//! Paper configuration: a 3-layer Transformer with 8 attention heads, hidden
//! dimension 1,024, filter size 4,096, sequence length 12,288
//! (ImageNet-64x64 image generation), batch size 8. The sparse variant uses
//! an attention mask with a dense band of 256 along the diagonal and random
//! off-diagonal connectivity at 95% sparsity, "shared by all attention heads
//! and layers".

use crate::attention;
use gpu_sim::Gpu;
use serde::{Deserialize, Serialize};
use sparse::{gen, CsrMatrix, IndexWidth};

/// Transformer architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    pub layers: usize,
    pub heads: usize,
    pub d_model: usize,
    pub ff: usize,
    pub seq: usize,
    pub batch: usize,
}

impl TransformerConfig {
    /// The paper's sparse-Transformer benchmark model.
    pub fn paper() -> Self {
        Self {
            layers: 3,
            heads: 8,
            d_model: 1024,
            ff: 4096,
            seq: 12288,
            batch: 8,
        }
    }

    /// A scaled-down configuration for functional tests.
    pub fn tiny() -> Self {
        Self {
            layers: 1,
            heads: 2,
            d_model: 64,
            ff: 128,
            seq: 128,
            batch: 1,
        }
    }

    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    pub fn tokens(&self) -> usize {
        self.seq * self.batch
    }

    /// Parameter bytes: per layer, QKVO projections (4 x d^2) plus the FFN
    /// (2 x d x ff), in f32.
    pub fn weight_bytes(&self) -> u64 {
        let per_layer = 4 * self.d_model * self.d_model + 2 * self.d_model * self.ff;
        (self.layers * per_layer * 4) as u64
    }
}

/// The attention connectivity used by the model.
pub enum AttentionMode {
    Dense,
    /// The paper's mask: dense band + distance-decaying random off-diagonal.
    Sparse {
        band: usize,
        off_diag_sparsity: f64,
        seed: u64,
    },
}

impl AttentionMode {
    /// The paper's sparse configuration.
    pub fn paper_sparse() -> Self {
        AttentionMode::Sparse {
            band: 256,
            off_diag_sparsity: 0.95,
            seed: 0x5eed,
        }
    }

    pub fn build_mask(&self, seq: usize) -> Option<CsrMatrix<f32>> {
        match self {
            AttentionMode::Dense => None,
            AttentionMode::Sparse {
                band,
                off_diag_sparsity,
                seed,
            } => Some(gen::attention_mask(seq, *band, *off_diag_sparsity, *seed)),
        }
    }
}

/// Table III row: the forward-pass benchmark of one model on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBench {
    pub model: String,
    pub device: String,
    /// Whether the model fits in device memory at all.
    pub out_of_memory: bool,
    pub tokens_per_second: f64,
    pub memory_gb: f64,
    pub forward_us: f64,
    /// Attention share of the forward pass (diagnostic).
    pub attention_us: f64,
}

/// Peak memory model (documented in EXPERIMENTS.md): weights + streamed
/// per-element activations (Q/K/V/context + two FFN buffers) + the
/// attention score/probability buffers, which are materialized for the
/// whole batch (scores and probs both live across the softmax).
pub fn memory_bytes(cfg: &TransformerConfig, mask: Option<&CsrMatrix<f32>>) -> u64 {
    // Q/K/V/context buffers for one batch element; FFN intermediates are
    // computed in tiles and do not persist.
    let act = (cfg.seq * cfg.d_model * 4 * 4) as u64;
    let attn = match mask {
        None => (cfg.batch * cfg.seq * cfg.seq * 4 * 2) as u64,
        Some(m) => cfg.batch as u64 * (2 * m.nnz() as u64 * 4) + m.bytes(IndexWidth::U32),
    };
    cfg.weight_bytes() + act + attn
}

/// Benchmark the forward pass (cost model; the shapes are far beyond
/// functional simulation). Returns a Table III row.
pub fn benchmark(gpu: &Gpu, cfg: &TransformerConfig, mode: &AttentionMode) -> TransformerBench {
    let mask = mode.build_mask(cfg.seq);
    let model = match mode {
        AttentionMode::Dense => "Transformer".to_string(),
        AttentionMode::Sparse { .. } => "Sparse Transformer".to_string(),
    };
    let mem = memory_bytes(cfg, mask.as_ref());
    let device = gpu.device().name.clone();
    if mem > gpu.device().dram_capacity_bytes {
        return TransformerBench {
            model,
            device,
            out_of_memory: true,
            tokens_per_second: 0.0,
            memory_gb: mem as f64 / 1e9,
            forward_us: 0.0,
            attention_us: 0.0,
        };
    }

    let tokens = cfg.tokens();
    // The model profiles each distinct shape once and multiplies; the trace
    // mirrors that with `replay` events so the per-layer breakdown still
    // accounts for every simulated microsecond. Capture the flag once so
    // every opened span is closed.
    let traced = gpu_sim::trace::enabled();
    if traced {
        gpu_sim::trace::begin_span("layer", &device, "layer0");
    }
    // Projections: Q, K, V, O — each a d_model x d_model GEMM over all
    // tokens (weights are dense in this experiment; sparsity lives in the
    // attention connectivity).
    let proj_one = baselines::gemm_profile(gpu, cfg.d_model, cfg.d_model, tokens).time_us;
    if traced {
        gpu_sim::trace::replay(&device, "qkvo_projection", proj_one * 3.0, 3);
    }
    let proj_us = 4.0 * proj_one;
    // FFN: two GEMMs plus the pointwise nonlinearity.
    let ffn_us = baselines::gemm_profile(gpu, cfg.ff, cfg.d_model, tokens).time_us
        + baselines::gemm_profile(gpu, cfg.d_model, cfg.ff, tokens).time_us
        + crate::layers::bias_relu_profile(gpu, cfg.ff, tokens).time_us;

    // Attention: one head's cost, repeated for heads x batch (identical
    // shapes -> identical simulated cost).
    let per_head = match &mask {
        None => attention::dense_attention_profile(gpu, cfg.seq, cfg.d_head()),
        Some(m) => attention::sparse_attention_profile(gpu, m, cfg.d_head()),
    };
    let head_reps = (cfg.heads * cfg.batch - 1) as u64;
    if traced && head_reps > 0 {
        gpu_sim::trace::replay(
            &device,
            "attention_heads",
            per_head.total_us() * head_reps as f64,
            head_reps,
        );
    }
    let attn_us = per_head.total_us() * (cfg.heads * cfg.batch) as f64;

    let layer_us = proj_us + ffn_us + attn_us;
    if traced {
        gpu_sim::trace::end_span(&device);
        // Layers 1..L repeat layer 0's cost exactly.
        for l in 1..cfg.layers {
            gpu_sim::trace::begin_span("layer", &device, &format!("layer{l}"));
            gpu_sim::trace::replay(&device, "layer_replay", layer_us, 1);
            gpu_sim::trace::end_span(&device);
        }
    }
    let forward_us = layer_us * cfg.layers as f64;

    TransformerBench {
        model,
        device,
        out_of_memory: false,
        tokens_per_second: tokens as f64 / (forward_us * 1e-6),
        memory_gb: mem as f64 / 1e9,
        forward_us,
        attention_us: attn_us * cfg.layers as f64,
    }
}

/// Model quality (bits per dimension on ImageNet-64x64) — reproduced from
/// the paper's reported values (Table III); we cannot train a 140k-step
/// image-generation model in this environment. Clearly labelled as a
/// carried-through result in EXPERIMENTS.md.
pub fn bits_per_dimension(mode: &AttentionMode) -> f64 {
    match mode {
        AttentionMode::Dense => 3.76,
        AttentionMode::Sparse { .. } => 3.77,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shapes() {
        let cfg = TransformerConfig::paper();
        assert_eq!(cfg.d_head(), 128);
        assert_eq!(cfg.tokens(), 98304);
        // ~150 MB of weights in f32.
        let gb = cfg.weight_bytes() as f64 / 1e9;
        assert!(gb > 0.1 && gb < 0.25, "weights {gb} GB");
    }

    #[test]
    fn dense_memory_exceeds_1080_but_sparse_fits() {
        // The Table III memory story.
        let cfg = TransformerConfig::paper();
        let dense_mem = memory_bytes(&cfg, None);
        let mask = AttentionMode::paper_sparse().build_mask(cfg.seq);
        let sparse_mem = memory_bytes(&cfg, mask.as_ref());
        let gtx = gpu_sim::DeviceConfig::gtx1080();
        assert!(
            dense_mem > gtx.dram_capacity_bytes,
            "dense must OOM on the 1080"
        );
        assert!(
            sparse_mem < gtx.dram_capacity_bytes,
            "sparse must fit on the 1080"
        );
        let ratio = dense_mem as f64 / sparse_mem as f64;
        assert!(
            (6.0..25.0).contains(&ratio),
            "memory saving should be in the paper's 12.8x ballpark, got {ratio:.1}x"
        );
    }

    #[test]
    fn sparse_is_faster_on_v100() {
        // Scaled-down run of the Table III timing comparison (full seq is
        // exercised by the bench harness).
        let cfg = TransformerConfig {
            seq: 2048,
            batch: 2,
            ..TransformerConfig::paper()
        };
        let gpu = Gpu::v100();
        let dense = benchmark(&gpu, &cfg, &AttentionMode::Dense);
        let sparse = benchmark(
            &gpu,
            &cfg,
            &AttentionMode::Sparse {
                band: 64,
                off_diag_sparsity: 0.95,
                seed: 1,
            },
        );
        assert!(!dense.out_of_memory && !sparse.out_of_memory);
        let speedup = sparse.tokens_per_second / dense.tokens_per_second;
        assert!(
            speedup > 1.1,
            "sparse Transformer should be faster, got {speedup:.2}x"
        );
    }

    #[test]
    fn oom_reporting() {
        let cfg = TransformerConfig::paper();
        let gtx = Gpu::gtx1080();
        let dense = benchmark(&gtx, &cfg, &AttentionMode::Dense);
        assert!(dense.out_of_memory);
        assert_eq!(dense.tokens_per_second, 0.0);
        let sparse = benchmark(&gtx, &cfg, &AttentionMode::paper_sparse());
        assert!(!sparse.out_of_memory);
    }

    #[test]
    fn quality_is_carried_from_paper() {
        assert_eq!(bits_per_dimension(&AttentionMode::Dense), 3.76);
        assert_eq!(bits_per_dimension(&AttentionMode::paper_sparse()), 3.77);
    }
}
