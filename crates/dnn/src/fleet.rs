//! Fleet-parallel scaling workloads: sharded SpMM on the deep-learning
//! problems the paper benchmarks, swept across device counts.
//!
//! Two problem families mirror the paper's application sections:
//!
//! * **Transformer attention** (Section VII-C): the attention-weighted
//!   value product `A_attn (seq x seq, banded + random causal) * V (seq x
//!   d_head)` — the big-compute workload where row sharding should scale.
//! * **MobileNet pointwise conv** (Section VII-D): a pruned 1x1 conv
//!   `W (c_out x c_in, magnitude-pruned) * X (c_in x hw)` — small output
//!   tiles, so launch overhead and gathers bite and scaling is honest about
//!   saturating early.
//!
//! [`scaling_sweep`] runs one problem through [`sputnik::spmm_row_sharded`]
//! or [`sputnik::spmm_k_split`] at each device count, always anchoring on a
//! freshly measured single-device run, and reports per-point efficiency
//! `T1 / (D * T_D)` plus interconnect counters and a bit-identity verdict
//! against the single-GPU reference kernel.

use gpu_sim::{Fleet, Gpu, LaunchCache};
use sparse::{gen, CsrMatrix, Matrix};
use sputnik::shard::{spmm_k_split, spmm_row_sharded};
use sputnik::{spmm, SpmmConfig, SputnikError};

/// A fleet-shardable SpMM problem: sparse operand, dense operand, config.
pub struct FleetProblem {
    pub name: &'static str,
    pub a: CsrMatrix<f32>,
    pub b: Matrix<f32>,
    pub cfg: SpmmConfig,
}

/// How the problem is split across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous nnz-balanced output-row blocks (data parallel).
    RowShard,
    /// Contiguous reduction-dimension chunks + ring all-reduce (tensor
    /// parallel).
    KSplit,
}

impl ShardStrategy {
    pub fn label(self) -> &'static str {
        match self {
            ShardStrategy::RowShard => "row_shard",
            ShardStrategy::KSplit => "k_split",
        }
    }
}

/// One point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub devices: usize,
    /// Fleet makespan for the sharded run (kernels + transfers).
    pub makespan_us: f64,
    /// Sum of per-shard kernel times (the work actually distributed).
    pub kernel_us: f64,
    pub transfer_bytes: u64,
    pub transfers: u64,
    /// Scaling efficiency `T1 / (devices * makespan)`, 1.0 = linear.
    pub efficiency: f64,
    /// Sharded output equals the single-GPU kernel bit for bit.
    pub bit_identical: bool,
    /// Shard launches served by [`LaunchCache`] replay.
    pub cache_hits: usize,
}

/// The attention-weighted value product of a sparse-Transformer layer:
/// `seq x seq` causal banded mask (band plus random off-diagonal
/// connectivity at `off_sparsity`) against a `seq x d_head` value matrix.
pub fn transformer_attention_problem(
    seq: usize,
    d_head: usize,
    band: usize,
    off_sparsity: f64,
    seed: u64,
) -> FleetProblem {
    let mask = gen::attention_mask(seq, band, off_sparsity, seed);
    // The mask carries unit values; attention weights are dense in (0, 1),
    // so re-randomize to keep the numerics honest.
    let weights = Matrix::<f32>::random(1, mask.nnz(), seed ^ 0xA77E)
        .as_slice()
        .to_vec();
    let a = mask.with_values(weights);
    let b = Matrix::<f32>::random(seq, d_head, seed ^ 0x7A1);
    FleetProblem {
        name: "transformer_attention",
        a,
        b,
        cfg: SpmmConfig::heuristic::<f32>(d_head),
    }
}

/// A pruned MobileNet-style 1x1 convolution: `c_out x c_in` weights at the
/// given sparsity against a `c_in x hw` im2col activation panel.
pub fn mobilenet_pointwise_problem(
    c_out: usize,
    c_in: usize,
    hw: usize,
    sparsity: f64,
    seed: u64,
) -> FleetProblem {
    let a = gen::uniform(c_out, c_in, sparsity, seed);
    let b = Matrix::<f32>::random(c_in, hw, seed ^ 0x30B1);
    FleetProblem {
        name: "mobilenet_pointwise",
        a,
        b,
        cfg: SpmmConfig::heuristic::<f32>(hw),
    }
}

/// Sweep a problem across `device_counts`, returning one [`ScalingPoint`]
/// per count. The single-device anchor `T1` is measured through the same
/// sharded code path (a 1-device fleet runs the plain full-matrix kernel),
/// and every point's output is compared bitwise against the single-GPU
/// [`sputnik::spmm`] reference.
pub fn scaling_sweep(
    problem: &FleetProblem,
    strategy: ShardStrategy,
    device_counts: &[usize],
) -> Result<Vec<ScalingPoint>, SputnikError> {
    let reference = spmm(&Gpu::v100(), &problem.a, &problem.b, problem.cfg).0;
    let cache = LaunchCache::new();
    let t1 = run_once(problem, strategy, 1, &cache)?.sync.makespan_us;
    let mut points = Vec::with_capacity(device_counts.len());
    for &devices in device_counts {
        let run = run_once(problem, strategy, devices, &cache)?;
        let bit_identical = run
            .output
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .all(|(g, w)| g.to_bits() == w.to_bits());
        points.push(ScalingPoint {
            devices,
            makespan_us: run.sync.makespan_us,
            kernel_us: run.serial_kernel_us(),
            transfer_bytes: run.sync.transfer_bytes,
            transfers: run.sync.transfers,
            efficiency: t1 / (devices as f64 * run.sync.makespan_us),
            bit_identical,
            cache_hits: run.cache_hits,
        });
    }
    Ok(points)
}

fn run_once(
    problem: &FleetProblem,
    strategy: ShardStrategy,
    devices: usize,
    cache: &LaunchCache,
) -> Result<sputnik::ShardedRun<Matrix<f32>>, SputnikError> {
    let mut fleet = Fleet::v100(devices);
    match strategy {
        ShardStrategy::RowShard => {
            spmm_row_sharded(&mut fleet, cache, &problem.a, &problem.b, problem.cfg)
        }
        ShardStrategy::KSplit => {
            spmm_k_split(&mut fleet, cache, &problem.a, &problem.b, problem.cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_scale_and_stay_identical() {
        let problem = transformer_attention_problem(256, 32, 16, 0.98, 11);
        for strategy in [ShardStrategy::RowShard, ShardStrategy::KSplit] {
            let points = scaling_sweep(&problem, strategy, &[1, 2, 4]).unwrap();
            assert_eq!(points.len(), 3);
            for p in &points {
                assert!(p.bit_identical, "{strategy:?} D={} diverged", p.devices);
                assert!(p.efficiency > 0.0 && p.efficiency <= 1.01);
                if p.devices > 1 {
                    assert!(p.transfers > 0, "{strategy:?} must cross the interconnect");
                }
            }
            // The 1-device point re-runs the anchor through the cache, so
            // its efficiency is exactly 1.
            assert!((points[0].efficiency - 1.0).abs() < 1e-9);
            assert!(points[0].cache_hits > 0);
        }
    }

    #[test]
    fn mobilenet_problem_shards_cleanly() {
        let problem = mobilenet_pointwise_problem(128, 64, 56, 0.8, 13);
        let points = scaling_sweep(&problem, ShardStrategy::RowShard, &[2]).unwrap();
        assert!(points[0].bit_identical);
        assert!(points[0].transfer_bytes > 0);
    }
}
