//! ResNet-50 (He et al.) — the other half of the paper's matrix corpus.
//!
//! The Figure 9 dataset draws its convolution shapes from pruned ResNet-50
//! checkpoints; this module assembles the whole network so the per-layer
//! kernels can be benchmarked end to end, mirroring the MobileNetV1
//! experiment. Convolutions are benchmarked "as an im2col transform on the
//! input data followed by SpMM" (Section VII-A1) with the im2col itself
//! untimed, exactly as the paper does; batch-1 inference pads N to a
//! multiple of four for vector memory instructions.

use gpu_sim::Gpu;
use serde::{Deserialize, Serialize};
use sparse::gen;
use sputnik::SpmmConfig;

/// One convolution of the network, lowered to a matmul shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvShape {
    /// Output channels (M).
    pub out_channels: usize,
    /// Input features after lowering (K = in_channels * kh * kw).
    pub k: usize,
    /// Output spatial positions per image (N per batch element).
    pub spatial: usize,
    /// Whether the paper's pruning sweep touches this layer (the stem and
    /// shortcut projections stay dense).
    pub prunable: bool,
}

impl ConvShape {
    pub fn macs(&self) -> u64 {
        (self.out_channels * self.k * self.spatial) as u64
    }
}

/// The ResNet-50 layer inventory as matmul shapes.
///
/// Bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand (+1x1 projection on the
/// first block of each stage). Stages of [3, 4, 6, 3] blocks at spatial
/// sizes 56/28/14/7.
pub fn resnet50_convs() -> Vec<ConvShape> {
    let mut convs = Vec::new();
    // Stem: 7x7, 3->64, stride 2 on 224x224 (output 112x112). Stays dense.
    convs.push(ConvShape {
        out_channels: 64,
        k: 3 * 49,
        spatial: 112 * 112,
        prunable: false,
    });

    let stages: [(usize, usize, usize); 4] = [(64, 3, 56), (128, 4, 28), (256, 6, 14), (512, 3, 7)];
    let mut in_ch = 64;
    for (width, blocks, spatial) in stages {
        let out_ch = width * 4;
        for b in 0..blocks {
            let sp = spatial * spatial;
            // 1x1 reduce.
            convs.push(ConvShape {
                out_channels: width,
                k: in_ch,
                spatial: sp,
                prunable: true,
            });
            // 3x3 (im2col: K = 9 * width).
            convs.push(ConvShape {
                out_channels: width,
                k: 9 * width,
                spatial: sp,
                prunable: true,
            });
            // 1x1 expand.
            convs.push(ConvShape {
                out_channels: out_ch,
                k: width,
                spatial: sp,
                prunable: true,
            });
            if b == 0 {
                // Projection shortcut (dense, like the stem).
                convs.push(ConvShape {
                    out_channels: out_ch,
                    k: in_ch,
                    spatial: sp,
                    prunable: false,
                });
            }
            in_ch = out_ch;
        }
    }
    convs
}

/// Benchmark result for one inference pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResNetBench {
    pub sparse: bool,
    pub sparsity: f64,
    pub inference_us: f64,
    pub frames_per_second: f64,
    pub dense_layer_us: f64,
    pub sparse_layer_us: f64,
    pub classifier_us: f64,
    pub weight_bytes: u64,
    pub total_macs: u64,
}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// Batch-1 inference (cost model). `sparsity` of `None` is the dense
/// baseline; `Some(s)` prunes every prunable convolution to `s`.
pub fn benchmark(gpu: &Gpu, sparsity: Option<f64>) -> ResNetBench {
    let convs = resnet50_convs();
    let mut bench = ResNetBench {
        sparse: sparsity.is_some(),
        sparsity: sparsity.unwrap_or(0.0),
        ..Default::default()
    };

    for (li, conv) in convs.iter().enumerate() {
        bench.total_macs += conv.macs();
        let n = pad4(conv.spatial);
        match sparsity {
            Some(s) if conv.prunable => {
                let w = gen::uniform(conv.out_channels, conv.k, s, 0x5e7 + li as u64);
                let mut cfg = SpmmConfig::heuristic::<f32>(n);
                cfg.fused_bias_relu = true;
                bench.sparse_layer_us +=
                    sputnik::spmm_profile::<f32>(gpu, &w, conv.k, n, cfg).time_us;
                bench.weight_bytes += w.bytes(sparse::IndexWidth::U32);
            }
            _ => {
                bench.dense_layer_us += baselines::gemm_profile(gpu, conv.out_channels, conv.k, n)
                    .time_us
                    + crate::layers::bias_relu_profile(gpu, conv.out_channels, conv.spatial)
                        .time_us;
                bench.weight_bytes += (conv.out_channels * conv.k * 4) as u64;
            }
        }
    }

    // Global average pool + fc1000 (dense).
    bench.classifier_us = baselines::gemm_profile(gpu, 1000, 2048, 4).time_us;
    bench.weight_bytes += 1000 * 2048 * 4;

    bench.inference_us = bench.dense_layer_us + bench.sparse_layer_us + bench.classifier_us;
    bench.frames_per_second = 1e6 / bench.inference_us;
    bench
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory_matches_resnet50() {
        let convs = resnet50_convs();
        // 1 stem + 16 blocks x 3 convs + 4 projections = 53 convolutions.
        assert_eq!(convs.len(), 53);
        // ~4.1 GMACs per image at 224x224.
        let gmacs: f64 = convs.iter().map(|c| c.macs() as f64).sum::<f64>() / 1e9;
        assert!((3.2..4.6).contains(&gmacs), "got {gmacs} GMACs");
        // Prunable layers carry the majority of the compute.
        let prunable: f64 = convs
            .iter()
            .filter(|c| c.prunable)
            .map(|c| c.macs() as f64)
            .sum();
        assert!(prunable / (gmacs * 1e9) > 0.75);
    }

    #[test]
    fn sparse_inference_is_faster_and_smaller() {
        let gpu = Gpu::v100();
        let dense = benchmark(&gpu, None);
        let sparse = benchmark(&gpu, Some(0.9));
        assert!(
            sparse.inference_us < dense.inference_us,
            "{} vs {}",
            sparse.inference_us,
            dense.inference_us
        );
        assert!(sparse.weight_bytes < dense.weight_bytes);
        assert_eq!(dense.total_macs, sparse.total_macs, "same architecture");
    }

    #[test]
    fn moderate_sparsity_helps_less() {
        let gpu = Gpu::v100();
        let s70 = benchmark(&gpu, Some(0.7));
        let s95 = benchmark(&gpu, Some(0.95));
        assert!(s95.sparse_layer_us < s70.sparse_layer_us);
    }

    #[test]
    fn dense_layers_unaffected_by_pruning() {
        let gpu = Gpu::v100();
        let a = benchmark(&gpu, Some(0.8));
        let b = benchmark(&gpu, Some(0.95));
        assert!((a.dense_layer_us - b.dense_layer_us).abs() < 1e-9);
    }
}
