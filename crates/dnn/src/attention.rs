//! Multi-head attention: dense and sparse (Section VII-C).
//!
//! Dense attention computes `Softmax(Q K^T / sqrt(d_k)) V` with two GEMMs
//! and a dense softmax. Sparse attention computes "a subset of the outputs
//! of QK^T and then multiplies the sparse output by V. With unstructured
//! sparsity, these operations correspond to an SDDMM followed by an SpMM",
//! with the paper's custom sparse softmax in between.

use gpu_sim::Gpu;
use sparse::{CsrMatrix, Matrix};
use sputnik::{SddmmConfig, SpmmConfig};

/// Timing breakdown of one attention head's forward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttentionTime {
    pub scores_us: f64,
    pub softmax_us: f64,
    pub context_us: f64,
}

impl AttentionTime {
    pub fn total_us(&self) -> f64 {
        self.scores_us + self.softmax_us + self.context_us
    }
}

/// Functional dense attention for one head: `q`, `k`, `v` are `seq x d`.
/// Returns the context and the simulated time of the three kernels (the
/// host-side K transpose stands in for cuBLAS's transB mode, which is free).
pub fn dense_attention(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
) -> (Matrix<f32>, AttentionTime) {
    assert_eq!(q.cols(), k.cols());
    assert_eq!(k.rows(), v.rows());
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();

    let kt = k.transpose();
    let (mut scores, s1) = baselines::gemm(gpu, q, &kt);
    for val in scores.as_mut_slice() {
        *val *= scale;
    }
    let (probs, s2) = crate::layers::dense_softmax(gpu, &scores);
    let (ctxm, s3) = baselines::gemm(gpu, &probs, v);
    (
        ctxm,
        AttentionTime {
            scores_us: s1.time_us,
            softmax_us: s2.time_us,
            context_us: s3.time_us,
        },
    )
}

/// Functional sparse attention for one head with the given connectivity
/// mask: SDDMM -> scale -> sparse softmax -> SpMM.
pub fn sparse_attention(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
) -> (Matrix<f32>, AttentionTime) {
    assert_eq!(q.cols(), k.cols());
    assert_eq!(mask.rows(), q.rows());
    assert_eq!(mask.cols(), k.rows());
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();

    // SDDMM computes Q K^T at the mask's nonzero positions (our kernel's
    // native transposed-RHS form: no explicit transpose needed).
    let (mut scores, s1) = sputnik::sddmm(gpu, q, k, mask, SddmmConfig::heuristic::<f32>(d));
    for val in scores.values_mut() {
        *val *= scale;
    }
    let (probs, s2) = sputnik::sparse_softmax(gpu, &scores);
    let (context, s3) = sputnik::spmm(gpu, &probs, v, SpmmConfig::heuristic::<f32>(v.cols()));
    (
        context,
        AttentionTime {
            scores_us: s1.time_us,
            softmax_us: s2.time_us,
            context_us: s3.time_us,
        },
    )
}

/// Cost-only dense attention for one `seq x d` head.
pub fn dense_attention_profile(gpu: &Gpu, seq: usize, d: usize) -> AttentionTime {
    AttentionTime {
        scores_us: baselines::gemm_profile(gpu, seq, d, seq).time_us,
        softmax_us: crate::layers::dense_softmax_profile(gpu, seq, seq).time_us,
        context_us: baselines::gemm_profile(gpu, seq, seq, d).time_us,
    }
}

/// Cost-only sparse attention for one head with the given mask.
pub fn sparse_attention_profile(gpu: &Gpu, mask: &CsrMatrix<f32>, d: usize) -> AttentionTime {
    AttentionTime {
        scores_us: sputnik::sddmm_profile::<f32>(gpu, mask, d, SddmmConfig::heuristic::<f32>(d))
            .time_us,
        softmax_us: sputnik::sparse_softmax_profile::<f32>(gpu, mask).time_us,
        context_us: sputnik::spmm_profile::<f32>(
            gpu,
            mask,
            mask.cols(),
            d,
            SpmmConfig::heuristic::<f32>(d),
        )
        .time_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    /// Sparse attention under a fully dense causal mask must agree with
    /// dense attention masked the same way — checked against a host
    /// implementation instead (simpler and exact).
    #[test]
    fn sparse_attention_matches_host_reference() {
        let seq = 48;
        let d = 16;
        let q = Matrix::<f32>::random(seq, d, 101);
        let k = Matrix::<f32>::random(seq, d, 102);
        let v = Matrix::<f32>::random(seq, d, 103);
        let mask = gen::attention_mask(seq, 8, 0.8, 104);
        let gpu = Gpu::v100();
        let (ctxm, _) = sparse_attention(&gpu, &q, &k, &v, &mask);

        // Host reference.
        let scale = 1.0 / (d as f32).sqrt();
        for i in 0..seq {
            let (cols, _) = mask.row(i);
            let logits: Vec<f32> = cols
                .iter()
                .map(|&j| {
                    (0..d)
                        .map(|l| q.get(i, l) * k.get(j as usize, l))
                        .sum::<f32>()
                        * scale
                })
                .collect();
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for l in 0..d {
                let want: f32 = cols
                    .iter()
                    .zip(&exps)
                    .map(|(&j, &e)| e / sum * v.get(j as usize, l))
                    .sum();
                let got = ctxm.get(i, l);
                assert!((got - want).abs() < 1e-3, "({i},{l}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn dense_attention_rows_are_convex_combinations() {
        let seq = 32;
        let d = 8;
        let q = Matrix::<f32>::random(seq, d, 105);
        let k = Matrix::<f32>::random(seq, d, 106);
        // V = all ones: every output must be exactly 1 (softmax sums to 1).
        let v = Matrix::<f32>::from_fn(seq, d, |_, _| 1.0);
        let gpu = Gpu::v100();
        let (ctxm, t) = dense_attention(&gpu, &q, &k, &v);
        for r in 0..seq {
            for c in 0..d {
                assert!((ctxm.get(r, c) - 1.0).abs() < 1e-4);
            }
        }
        assert!(t.total_us() > 0.0);
    }

    #[test]
    fn sparse_attention_is_faster_at_long_sequences() {
        // The headline effect: at seq >> band, sparse attention wins.
        let gpu = Gpu::v100();
        let seq = 4096;
        let d = 64;
        let mask = gen::attention_mask(seq, 128, 0.95, 107);
        let dense = dense_attention_profile(&gpu, seq, d);
        let sparse = sparse_attention_profile(&gpu, &mask, d);
        let speedup = dense.total_us() / sparse.total_us();
        assert!(
            speedup > 1.5,
            "sparse attention should win at seq={seq}, got {speedup:.2}x"
        );
    }
}
