//! Multi-head attention: dense and sparse (Section VII-C).
//!
//! Dense attention computes `Softmax(Q K^T / sqrt(d_k)) V` with two GEMMs
//! and a dense softmax. Sparse attention computes "a subset of the outputs
//! of QK^T and then multiplies the sparse output by V. With unstructured
//! sparsity, these operations correspond to an SDDMM followed by an SpMM",
//! with the paper's custom sparse softmax in between.
//!
//! The sparse path routes through the fusion planner
//! ([`sputnik::FusionPlanner`]): when the mask's staging footprint fits the
//! device's shared memory, the whole SDDMM → scale → softmax → SpMM chain
//! runs as one fused launch; otherwise it falls back to the bit-identical
//! three-launch pipeline. Either way the logit scale is folded into a
//! kernel (never applied by the host), so every simulated microsecond and
//! every device-data mutation is attributed to a launch.

use gpu_sim::{Gpu, LaunchCache};
use sparse::{CsrMatrix, Matrix};
use sputnik::AutoTuner;

/// Timing breakdown of one attention head's forward pass. A fused run
/// reports one launch in `fused_us`; an unfused run reports the
/// three-kernel breakdown. `total_us` sums whichever side is populated.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttentionTime {
    pub scores_us: f64,
    pub softmax_us: f64,
    pub context_us: f64,
    /// Time of the single fused SDDMM+softmax+SpMM launch (0 when unfused).
    pub fused_us: f64,
}

impl AttentionTime {
    pub fn total_us(&self) -> f64 {
        self.scores_us + self.softmax_us + self.context_us + self.fused_us
    }
}

impl From<sputnik::FusedAttentionTime> for AttentionTime {
    fn from(t: sputnik::FusedAttentionTime) -> Self {
        AttentionTime {
            scores_us: t.scores_us,
            softmax_us: t.softmax_us,
            context_us: t.context_us,
            fused_us: t.fused_us,
        }
    }
}

/// Functional dense attention for one head: `q`, `k`, `v` are `seq x d`.
/// Returns the context and the simulated time of the three kernels (the
/// host-side K transpose stands in for cuBLAS's transB mode, which is free;
/// the logit scale rides inside the softmax kernel's read pass).
pub fn dense_attention(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
) -> (Matrix<f32>, AttentionTime) {
    assert_eq!(q.cols(), k.cols());
    assert_eq!(k.rows(), v.rows());
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();

    let kt = k.transpose();
    let (scores, s1) = baselines::gemm(gpu, q, &kt);
    let (probs, s2) = crate::layers::dense_softmax_scaled(gpu, &scores, scale);
    let (ctxm, s3) = baselines::gemm(gpu, &probs, v);
    (
        ctxm,
        AttentionTime {
            scores_us: s1.time_us,
            softmax_us: s2.time_us,
            context_us: s3.time_us,
            fused_us: 0.0,
        },
    )
}

/// Functional sparse attention for one head with the given connectivity
/// mask, through the fusion planner: one fused launch when the staging
/// footprint fits shared memory, the three-launch fallback otherwise.
pub fn sparse_attention(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
) -> (Matrix<f32>, AttentionTime) {
    sparse_attention_cached(gpu, q, k, v, mask, None, None)
}

/// [`sparse_attention`] with an optional [`LaunchCache`] and [`AutoTuner`]
/// threaded through to the planner (replayed heads hit the cache).
pub fn sparse_attention_cached(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
) -> (Matrix<f32>, AttentionTime) {
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let run = sputnik::sparse_attention_fused(gpu, q, k, v, mask, scale, cache, tuner);
    (run.context, run.time.into())
}

/// The three-launch sparse attention reference (SDDMM → scaled softmax →
/// SpMM), bypassing the planner. Kept as the bit-exactness baseline the
/// fused path is pinned against.
pub fn sparse_attention_unfused(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
) -> (Matrix<f32>, AttentionTime) {
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let configs = sputnik::attention_configs(gpu, None, None, mask, d, v.cols());
    let (context, time) = sputnik::sparse_attention_unfused(gpu, q, k, v, mask, scale, &configs)
        .unwrap_or_else(|e| panic!("sparse_attention_unfused: {e}"));
    (context, time.into())
}

/// Cost-only dense attention for one `seq x d` head.
pub fn dense_attention_profile(gpu: &Gpu, seq: usize, d: usize) -> AttentionTime {
    let scale = 1.0 / (d as f32).sqrt();
    AttentionTime {
        scores_us: baselines::gemm_profile(gpu, seq, d, seq).time_us,
        softmax_us: crate::layers::dense_softmax_scaled_profile(gpu, seq, seq, scale).time_us,
        context_us: baselines::gemm_profile(gpu, seq, seq, d).time_us,
        fused_us: 0.0,
    }
}

/// Cost-only sparse attention for one head with the given mask, through
/// the same planner and config selection as the functional path.
pub fn sparse_attention_profile(gpu: &Gpu, mask: &CsrMatrix<f32>, d: usize) -> AttentionTime {
    sparse_attention_profile_cached(gpu, mask, d, None, None)
}

/// [`sparse_attention_profile`] with an optional cache/tuner, mirroring
/// [`sparse_attention_cached`].
pub fn sparse_attention_profile_cached(
    gpu: &Gpu,
    mask: &CsrMatrix<f32>,
    d: usize,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
) -> AttentionTime {
    let scale = 1.0 / (d as f32).sqrt();
    let (time, _, _) =
        sputnik::sparse_attention_fused_profile(gpu, mask, d, d, scale, cache, tuner)
            .unwrap_or_else(|e| panic!("sparse_attention_profile: {e}"));
    time.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    /// Sparse attention under a fully dense causal mask must agree with
    /// dense attention masked the same way — checked against a host
    /// implementation instead (simpler and exact).
    #[test]
    fn sparse_attention_matches_host_reference() {
        let seq = 48;
        let d = 16;
        let q = Matrix::<f32>::random(seq, d, 101);
        let k = Matrix::<f32>::random(seq, d, 102);
        let v = Matrix::<f32>::random(seq, d, 103);
        let mask = gen::attention_mask(seq, 8, 0.8, 104);
        let gpu = Gpu::v100();
        let (ctxm, t) = sparse_attention(&gpu, &q, &k, &v, &mask);
        assert!(t.fused_us > 0.0, "small head should take the fused path");

        // Host reference.
        let scale = 1.0 / (d as f32).sqrt();
        for i in 0..seq {
            let (cols, _) = mask.row(i);
            let logits: Vec<f32> = cols
                .iter()
                .map(|&j| {
                    (0..d)
                        .map(|l| q.get(i, l) * k.get(j as usize, l))
                        .sum::<f32>()
                        * scale
                })
                .collect();
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for l in 0..d {
                let want: f32 = cols
                    .iter()
                    .zip(&exps)
                    .map(|(&j, &e)| e / sum * v.get(j as usize, l))
                    .sum();
                let got = ctxm.get(i, l);
                assert!((got - want).abs() < 1e-3, "({i},{l}): {got} vs {want}");
            }
        }
    }

    /// The planner-routed path and the three-launch reference must agree
    /// bitwise — fusion is invisible to the numbers.
    #[test]
    fn fused_and_unfused_attention_agree_bitwise() {
        let seq = 64;
        let d = 16;
        let q = Matrix::<f32>::random(seq, d, 110);
        let k = Matrix::<f32>::random(seq, d, 111);
        let v = Matrix::<f32>::random(seq, d, 112);
        let mask = gen::attention_mask(seq, 8, 0.8, 113);
        let gpu = Gpu::v100();
        let (fused, tf) = sparse_attention(&gpu, &q, &k, &v, &mask);
        let (unfused, tu) = sparse_attention_unfused(&gpu, &q, &k, &v, &mask);
        assert!(tf.fused_us > 0.0 && tu.fused_us == 0.0);
        assert_eq!(fused.as_slice(), unfused.as_slice());
    }

    #[test]
    fn dense_attention_rows_are_convex_combinations() {
        let seq = 32;
        let d = 8;
        let q = Matrix::<f32>::random(seq, d, 105);
        let k = Matrix::<f32>::random(seq, d, 106);
        // V = all ones: every output must be exactly 1 (softmax sums to 1).
        let v = Matrix::<f32>::from_fn(seq, d, |_, _| 1.0);
        let gpu = Gpu::v100();
        let (ctxm, t) = dense_attention(&gpu, &q, &k, &v);
        for r in 0..seq {
            for c in 0..d {
                assert!((ctxm.get(r, c) - 1.0).abs() < 1e-4);
            }
        }
        assert!(t.total_us() > 0.0);
    }

    #[test]
    fn sparse_attention_is_faster_at_long_sequences() {
        // The headline effect: at seq >> band, sparse attention wins.
        let gpu = Gpu::v100();
        let seq = 4096;
        let d = 64;
        let mask = gen::attention_mask(seq, 128, 0.95, 107);
        let dense = dense_attention_profile(&gpu, seq, d);
        let sparse = sparse_attention_profile(&gpu, &mask, d);
        let speedup = dense.total_us() / sparse.total_us();
        assert!(
            speedup > 1.5,
            "sparse attention should win at seq={seq}, got {speedup:.2}x"
        );
    }

    #[test]
    fn fusion_beats_unfused_profile_at_long_sequences() {
        let gpu = Gpu::v100();
        let d = 64;
        let mask = gen::attention_mask(4096, 128, 0.95, 108);
        let fused = sparse_attention_profile(&gpu, &mask, d);
        assert!(fused.fused_us > 0.0, "band mask must fuse");
        let scale = 1.0 / (d as f32).sqrt();
        let configs = sputnik::attention_configs(&gpu, None, None, &mask, d, d);
        let mut unfused_us = 0.0;
        unfused_us += sputnik::sddmm_profile::<f32>(&gpu, &mask, d, configs.sddmm).time_us;
        unfused_us += sputnik::sparse_softmax_scaled_profile::<f32>(&gpu, &mask, scale).time_us;
        unfused_us +=
            sputnik::spmm_profile::<f32>(&gpu, &mask, mask.cols(), d, configs.spmm).time_us;
        let speedup = unfused_us / fused.total_us();
        assert!(
            speedup > 1.3,
            "fusion should win at seq=4096, got {speedup:.2}x"
        );
    }
}
