//! Recurrent-network problem suite (Section VII-A2, Figure 10).
//!
//! "We benchmark each kernel on RNN, gated recurrent unit (GRU), and long
//! short-term memory network (LSTM) problems with sparse weights ... state
//! sizes 1k, 2k, 4k, and 8k, sparsities 70%, 80%, and 90% and batch sizes 32
//! and 128", with random uniform sparsity. The weight-sparse recurrent
//! matmul has M = gates x hidden (4x for LSTM, 3x for GRU, 1x for vanilla
//! RNN), K = hidden, N = batch.

use serde::{Deserialize, Serialize};
use sparse::{gen, CsrMatrix};

/// Recurrent cell family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    Rnn,
    Gru,
    Lstm,
}

impl CellKind {
    /// Gate multiplier: rows of the recurrent weight matrix per hidden unit.
    pub fn gates(self) -> usize {
        match self {
            CellKind::Rnn => 1,
            CellKind::Gru => 3,
            CellKind::Lstm => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CellKind::Rnn => "RNN",
            CellKind::Gru => "GRU",
            CellKind::Lstm => "LSTM",
        }
    }
}

/// One benchmark problem from the Figure 10 suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RnnProblem {
    pub cell: CellKind,
    pub hidden: usize,
    pub sparsity: f64,
    pub batch: usize,
}

impl RnnProblem {
    /// M dimension of the sparse weight matrix.
    pub fn m(&self) -> usize {
        self.cell.gates() * self.hidden
    }

    /// K dimension (the recurrent state size).
    pub fn k(&self) -> usize {
        self.hidden
    }

    /// N dimension (batch).
    pub fn n(&self) -> usize {
        self.batch
    }

    /// Figure 10's "M/K/N/sparsity" label.
    pub fn label(&self) -> String {
        format!(
            "{} {}/{}/{}/{:.0}",
            self.cell.name(),
            self.m(),
            self.k(),
            self.n(),
            self.sparsity * 100.0
        )
    }

    /// Generate the uniformly sparse recurrent weight matrix.
    pub fn weights(&self, seed: u64) -> CsrMatrix<f32> {
        gen::uniform(self.m(), self.k(), self.sparsity, seed)
    }

    pub fn flops(&self) -> u64 {
        let nnz = (self.m() as f64 * self.k() as f64 * (1.0 - self.sparsity)) as u64;
        2 * nnz * self.n() as u64
    }
}

/// The full Figure 10 sweep. `hidden_sizes` defaults to the paper's
/// {1k, 2k, 4k, 8k}; pass a subset for quicker runs.
pub fn problem_suite(hidden_sizes: &[usize]) -> Vec<RnnProblem> {
    let mut out = Vec::new();
    for &cell in &[CellKind::Rnn, CellKind::Gru, CellKind::Lstm] {
        for &hidden in hidden_sizes {
            for &sparsity in &[0.7, 0.8, 0.9] {
                for &batch in &[32usize, 128] {
                    out.push(RnnProblem {
                        cell,
                        hidden,
                        sparsity,
                        batch,
                    });
                }
            }
        }
    }
    out
}

/// Profile one problem's recurrent SpMM on the simulator, wrapped in a
/// trace span labelled with the Figure 10 problem name so profile reports
/// attribute the launch to its problem.
pub fn profile_problem(
    gpu: &gpu_sim::Gpu,
    problem: &RnnProblem,
    seed: u64,
) -> gpu_sim::LaunchStats {
    let w = problem.weights(seed);
    let traced = gpu_sim::trace::enabled();
    if traced {
        gpu_sim::trace::begin_span("layer", &gpu.device().name, &problem.label());
    }
    let cfg = sputnik::SpmmConfig::heuristic::<f32>(problem.n());
    let stats = sputnik::spmm_profile::<f32>(gpu, &w, problem.k(), problem.n(), cfg);
    if traced {
        gpu_sim::trace::end_span(&gpu.device().name);
    }
    stats
}

/// The paper's hidden-size list.
pub const PAPER_HIDDEN_SIZES: [usize; 4] = [1024, 2048, 4096, 8192];

/// The Figure 1 problem: "input size 8192, hidden size 2048, and batch size
/// 128" — an LSTM recurrent matmul with M = 8192 = 4 x 2048.
pub fn figure1_problem(sparsity: f64) -> RnnProblem {
    RnnProblem {
        cell: CellKind::Lstm,
        hidden: 2048,
        sparsity,
        batch: 128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_size_matches_paper() {
        // 3 cells x 4 sizes x 3 sparsities x 2 batches = 72 problems.
        assert_eq!(problem_suite(&PAPER_HIDDEN_SIZES).len(), 72);
    }

    #[test]
    fn figure1_shape() {
        let p = figure1_problem(0.9);
        assert_eq!(p.m(), 8192);
        assert_eq!(p.k(), 2048);
        assert_eq!(p.n(), 128);
    }

    #[test]
    fn gates_scale_m() {
        let lstm = RnnProblem {
            cell: CellKind::Lstm,
            hidden: 1024,
            sparsity: 0.8,
            batch: 32,
        };
        let gru = RnnProblem {
            cell: CellKind::Gru,
            ..lstm
        };
        let rnn = RnnProblem {
            cell: CellKind::Rnn,
            ..lstm
        };
        assert_eq!(lstm.m(), 4096);
        assert_eq!(gru.m(), 3072);
        assert_eq!(rnn.m(), 1024);
    }

    #[test]
    fn weights_match_spec() {
        let p = RnnProblem {
            cell: CellKind::Gru,
            hidden: 512,
            sparsity: 0.8,
            batch: 32,
        };
        let w = p.weights(7);
        assert_eq!(w.rows(), p.m());
        assert_eq!(w.cols(), p.k());
        assert!((w.sparsity() - 0.8).abs() < 0.03);
    }

    #[test]
    fn labels_are_figure10_format() {
        let p = figure1_problem(0.9);
        assert_eq!(p.label(), "LSTM 8192/2048/128/90");
    }
}
