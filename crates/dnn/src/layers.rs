//! Neural-network layer primitives on the simulated GPU.
//!
//! Everything the paper's application benchmarks need beyond the core
//! SpMM/SDDMM: dense/sparse linear layers (1x1 convolutions in CHW layout
//! are exactly matrix multiplications), depthwise convolutions with fused
//! bias + ReLU ("for depthwise convolution, we wrote kernels that support
//! fused bias and ReLU operations"), a standalone fused bias + ReLU kernel
//! for the dense baselines, a dense row-softmax for dense attention, im2col
//! for 3x3 convolutions, and batch-norm folding.

use gpu_sim::{
    AccessPattern, BlockContext, BufferId, BufferSpec, Dim3, Gpu, Kernel, LaunchStats,
    SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle};
use sputnik::{SpmmConfig, SpmmKernel};

/// A linear operator `y = act(W x + b)` with dense or sparse weights.
/// Activations are `K x N` (features x positions), weights `M x K`.
pub enum Linear {
    Dense {
        weights: Matrix<f32>,
        bias: Option<Vec<f32>>,
        relu: bool,
    },
    Sparse {
        weights: CsrMatrix<f32>,
        swizzle: RowSwizzle,
        bias: Option<Vec<f32>>,
        relu: bool,
    },
}

impl Linear {
    pub fn dense(weights: Matrix<f32>, bias: Option<Vec<f32>>, relu: bool) -> Self {
        Linear::Dense {
            weights,
            bias,
            relu,
        }
    }

    pub fn sparse(weights: CsrMatrix<f32>, bias: Option<Vec<f32>>, relu: bool) -> Self {
        let swizzle = RowSwizzle::by_length_desc(&weights);
        Linear::Sparse {
            weights,
            swizzle,
            bias,
            relu,
        }
    }

    pub fn out_features(&self) -> usize {
        match self {
            Linear::Dense { weights, .. } => weights.rows(),
            Linear::Sparse { weights, .. } => weights.rows(),
        }
    }

    pub fn in_features(&self) -> usize {
        match self {
            Linear::Dense { weights, .. } => weights.cols(),
            Linear::Sparse { weights, .. } => weights.cols(),
        }
    }

    /// Weight memory in bytes (CSR for sparse, dense array otherwise).
    pub fn weight_bytes(&self) -> u64 {
        match self {
            Linear::Dense { weights, .. } => weights.bytes(),
            Linear::Sparse {
                weights, swizzle, ..
            } => weights.bytes(sparse::IndexWidth::U32) + swizzle.bytes(),
        }
    }

    /// Functional forward pass; returns activations and total simulated time
    /// across the launched kernels.
    pub fn forward(&self, gpu: &Gpu, x: &Matrix<f32>) -> (Matrix<f32>, f64) {
        match self {
            Linear::Dense {
                weights,
                bias,
                relu,
            } => {
                let (y, s1) = baselines::gemm(gpu, weights, x);
                match bias {
                    Some(b) => {
                        let (y, s2) = bias_relu(gpu, &y, b, *relu);
                        (y, s1.time_us + s2.time_us)
                    }
                    None => {
                        if *relu {
                            let zeros = vec![0.0f32; y.rows()];
                            let (y, s2) = bias_relu(gpu, &y, &zeros, true);
                            (y, s1.time_us + s2.time_us)
                        } else {
                            (y, s1.time_us)
                        }
                    }
                }
            }
            Linear::Sparse {
                weights,
                swizzle,
                bias,
                relu,
            } => {
                let mut cfg = SpmmConfig::heuristic::<f32>(x.cols());
                let mut out = Matrix::<f32>::zeros(weights.rows(), x.cols());
                let stats = match (bias, relu) {
                    (Some(b), true) => {
                        cfg.fused_bias_relu = true;
                        let kernel =
                            SpmmKernel::new(weights, x, &mut out, swizzle, cfg).with_bias_relu(b);
                        gpu.launch(&kernel)
                    }
                    _ => {
                        let kernel = SpmmKernel::new(weights, x, &mut out, swizzle, cfg);
                        gpu.launch(&kernel)
                    }
                };
                (out, stats.time_us)
            }
        }
    }

    /// Cost-only forward at `n` output positions: the path the large model
    /// benchmarks take.
    pub fn forward_profile(&self, gpu: &Gpu, n: usize) -> f64 {
        match self {
            Linear::Dense { weights, bias, .. } => {
                let t = baselines::gemm_profile(gpu, weights.rows(), weights.cols(), n).time_us;
                if bias.is_some() {
                    t + bias_relu_profile(gpu, weights.rows(), n).time_us
                } else {
                    t
                }
            }
            Linear::Sparse {
                weights,
                bias,
                relu,
                ..
            } => {
                let mut cfg = SpmmConfig::heuristic::<f32>(n);
                cfg.fused_bias_relu = bias.is_some() && *relu;
                sputnik::spmm_profile::<f32>(gpu, weights, weights.cols(), n, cfg).time_us
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fused bias + ReLU kernel
// ---------------------------------------------------------------------------

pub const BUF_X: BufferId = BufferId(0);
pub const BUF_BIAS: BufferId = BufferId(1);
pub const BUF_Y: BufferId = BufferId(2);

/// Elementwise `y = max(0, x + bias[row])` over an M x N activation matrix —
/// the epilogue kernel the paper wrote for its dense MobileNet baseline.
pub struct BiasReluKernel<'a> {
    x: Option<&'a Matrix<f32>>,
    bias: Option<&'a [f32]>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    relu: bool,
    m: usize,
    n: usize,
}

impl<'a> BiasReluKernel<'a> {
    pub fn new(x: &'a Matrix<f32>, bias: &'a [f32], out: &'a mut Matrix<f32>, relu: bool) -> Self {
        assert_eq!(bias.len(), x.rows());
        assert_eq!((out.rows(), out.cols()), (x.rows(), x.cols()));
        let (m, n) = (x.rows(), x.cols());
        Self {
            x: Some(x),
            bias: Some(bias),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            relu,
            m,
            n,
        }
    }

    pub fn for_profile(m: usize, n: usize) -> Self {
        Self {
            x: None,
            bias: None,
            out: None,
            relu: true,
            m,
            n,
        }
    }
}

impl Kernel for BiasReluKernel<'_> {
    fn name(&self) -> String {
        "fused_bias_relu".to_string()
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy((self.n as u32).div_ceil(256), self.m as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BUF_X,
                name: "x",
                footprint_bytes: (self.m * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_BIAS,
                name: "bias",
                footprint_bytes: self.m as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_Y,
                name: "y",
                footprint_bytes: (self.m * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let row = block.y as usize;
        let c0 = block.x as usize * 256;
        let w = 256.min(self.n - c0);
        let addr = (row * self.n + c0) as u64 * 4;
        let instrs = (w as u64).div_ceil(32 * 4);
        ctx.cost.ld_global_instrs += instrs;
        ctx.cost.st_global_instrs += instrs;
        ctx.ld_global(BUF_BIAS, row as u64 * 4, 1, 1, 4);
        ctx.cost.gmem[BUF_X.0 as usize].ld_sectors +=
            gpu_sim::memory::sectors_contiguous(addr, w as u64 * 4);
        ctx.cost.gmem[BUF_Y.0 as usize].st_sectors +=
            gpu_sim::memory::sectors_contiguous(addr, w as u64 * 4);
        ctx.fp(2 * (w as u64).div_ceil(32), 2 * w as u64);
        ctx.misc(6);
        ctx.cost.flops += 2 * w as u64;

        if let (true, Some(x), Some(bias), Some(out)) =
            (ctx.functional(), self.x, self.bias, self.out.as_ref())
        {
            let x = x.as_slice();
            let b = bias[row];
            for c in c0..c0 + w {
                let mut v = x[row * self.n + c] + b;
                if self.relu {
                    v = v.max(0.0);
                }
                unsafe { out.write(row * self.n + c, v) };
            }
        }
    }
}

/// Functional fused bias (+ optional ReLU).
pub fn bias_relu(
    gpu: &Gpu,
    x: &Matrix<f32>,
    bias: &[f32],
    relu: bool,
) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let stats = {
        let kernel = BiasReluKernel::new(x, bias, &mut out, relu);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile the fused bias + ReLU at the given shape.
pub fn bias_relu_profile(gpu: &Gpu, m: usize, n: usize) -> LaunchStats {
    gpu.profile(&BiasReluKernel::for_profile(m, n))
}

// ---------------------------------------------------------------------------
// Depthwise 3x3 convolution (CHW layout)
// ---------------------------------------------------------------------------

/// A CHW image tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Chw {
    pub channels: usize,
    pub height: usize,
    pub width: usize,
    pub data: Vec<f32>,
}

impl Chw {
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    pub fn random(channels: usize, height: usize, width: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..channels * height * width)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    #[inline]
    pub fn get(&self, c: usize, y: i64, x: i64) -> f32 {
        if y < 0 || x < 0 || y >= self.height as i64 || x >= self.width as i64 {
            return 0.0; // zero padding
        }
        self.data[c * self.height * self.width + y as usize * self.width + x as usize]
    }

    /// View the CHW tensor as a (channels x pixels) activation matrix — the
    /// layout under which 1x1 convolutions are plain matrix multiplications
    /// ("the 1x1 convolutions ... can be computed as matrix multiplication
    /// if the input data is stored in CHW format").
    pub fn as_matrix(&self) -> Matrix<f32> {
        Matrix::from_vec(self.channels, self.height * self.width, self.data.clone())
    }

    pub fn from_matrix(m: &Matrix<f32>, height: usize, width: usize) -> Self {
        assert_eq!(m.cols(), height * width);
        Self {
            channels: m.rows(),
            height,
            width,
            data: m.as_slice().to_vec(),
        }
    }

    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }
}

/// Depthwise 3x3 convolution with fused bias + ReLU, stride 1 or 2,
/// zero padding 1.
pub struct DepthwiseConvKernel<'a> {
    input: Option<&'a Chw>,
    /// 3x3 filter per channel, flattened `[c][ky*3+kx]`.
    filters: Option<&'a [f32]>,
    bias: Option<&'a [f32]>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    channels: usize,
    in_h: usize,
    in_w: usize,
    stride: usize,
}

pub const BUF_DW_IN: BufferId = BufferId(0);
pub const BUF_DW_W: BufferId = BufferId(1);
pub const BUF_DW_OUT: BufferId = BufferId(2);

impl<'a> DepthwiseConvKernel<'a> {
    pub fn new(
        input: &'a Chw,
        filters: &'a [f32],
        bias: &'a [f32],
        out: &'a mut Chw,
        stride: usize,
    ) -> Self {
        assert!(stride == 1 || stride == 2);
        assert_eq!(filters.len(), input.channels * 9);
        assert_eq!(bias.len(), input.channels);
        let (oh, ow) = Self::out_dims(input.height, input.width, stride);
        assert_eq!(
            (out.channels, out.height, out.width),
            (input.channels, oh, ow)
        );
        let (channels, in_h, in_w) = (input.channels, input.height, input.width);
        Self {
            input: Some(input),
            filters: Some(filters),
            bias: Some(bias),
            out: Some(SyncUnsafeSlice::new(&mut out.data)),
            channels,
            in_h,
            in_w,
            stride,
        }
    }

    pub fn for_profile(channels: usize, in_h: usize, in_w: usize, stride: usize) -> Self {
        Self {
            input: None,
            filters: None,
            bias: None,
            out: None,
            channels,
            in_h,
            in_w,
            stride,
        }
    }

    pub fn out_dims(h: usize, w: usize, stride: usize) -> (usize, usize) {
        (h.div_ceil(stride), w.div_ceil(stride))
    }
}

impl Kernel for DepthwiseConvKernel<'_> {
    fn name(&self) -> String {
        format!("depthwise_conv3x3_s{}_bias_relu", self.stride)
    }

    fn grid(&self) -> Dim3 {
        let (oh, ow) = Self::out_dims(self.in_h, self.in_w, self.stride);
        Dim3::xy(((oh * ow) as u32).div_ceil(256), self.channels as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let (oh, ow) = Self::out_dims(self.in_h, self.in_w, self.stride);
        vec![
            BufferSpec {
                id: BUF_DW_IN,
                name: "input",
                footprint_bytes: (self.channels * self.in_h * self.in_w * 4) as u64,
                pattern: AccessPattern::SharedReuse, // 3x3 window overlap
            },
            BufferSpec {
                id: BUF_DW_W,
                name: "filters",
                footprint_bytes: (self.channels * 9 * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_DW_OUT,
                name: "output",
                footprint_bytes: (self.channels * oh * ow * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let c = block.y as usize;
        let (oh, ow) = Self::out_dims(self.in_h, self.in_w, self.stride);
        let p0 = block.x as usize * 256;
        let count = 256.min(oh * ow - p0);
        if count == 0 {
            return;
        }

        // Cost: each output pixel reads a 3x3 window (overlapping rows are
        // sector-shared across the warp: ~3 rows of stride-adjacent pixels),
        // 9 FMAs, fused bias + ReLU, one store.
        let warps = (count as u64).div_ceil(32);
        ctx.ld_global(BUF_DW_W, (c * 9) as u64 * 4, 9, 1, 4);
        ctx.ld_global(BUF_DW_W, c as u64 * 4, 1, 1, 4); // bias via same buffer
                                                        // 3 rows x 3 taps of (mostly) contiguous loads per warp.
        ctx.cost.ld_global_instrs += warps * 9;
        let row_bytes = (32 * self.stride) as u64 * 4 + 8;
        ctx.cost.gmem[BUF_DW_IN.0 as usize].ld_sectors +=
            warps * 3 * gpu_sim::memory::sectors_contiguous(4, row_bytes);
        ctx.cost.fma_instrs += warps * 9;
        ctx.fp(warps * 2, 2 * count as u64);
        ctx.misc(warps * 12);
        ctx.cost.st_global_instrs += warps;
        ctx.cost.gmem[BUF_DW_OUT.0 as usize].st_sectors +=
            gpu_sim::memory::sectors_contiguous(((c * oh * ow + p0) * 4) as u64, count as u64 * 4);
        ctx.cost.flops += (9 * 2 + 2) * count as u64;

        if let (true, Some(input), Some(filters), Some(bias), Some(out)) = (
            ctx.functional(),
            self.input,
            self.filters,
            self.bias,
            self.out.as_ref(),
        ) {
            let bias = bias[c];
            for p in p0..p0 + count {
                let oy = (p / ow) as i64;
                let ox = (p % ow) as i64;
                let mut acc = bias;
                for ky in 0..3i64 {
                    for kx in 0..3i64 {
                        let iy = oy * self.stride as i64 + ky - 1;
                        let ix = ox * self.stride as i64 + kx - 1;
                        acc += filters[c * 9 + (ky * 3 + kx) as usize] * input.get(c, iy, ix);
                    }
                }
                unsafe { out.write(c * oh * ow + p, acc.max(0.0)) };
            }
        }
    }
}

/// Functional depthwise convolution (stride 1 or 2, pad 1, fused bias+ReLU).
pub fn depthwise_conv(
    gpu: &Gpu,
    input: &Chw,
    filters: &[f32],
    bias: &[f32],
    stride: usize,
) -> (Chw, LaunchStats) {
    let (oh, ow) = DepthwiseConvKernel::out_dims(input.height, input.width, stride);
    let mut out = Chw::zeros(input.channels, oh, ow);
    let stats = {
        let kernel = DepthwiseConvKernel::new(input, filters, bias, &mut out, stride);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile a depthwise convolution.
pub fn depthwise_conv_profile(
    gpu: &Gpu,
    channels: usize,
    h: usize,
    w: usize,
    stride: usize,
) -> LaunchStats {
    gpu.profile(&DepthwiseConvKernel::for_profile(channels, h, w, stride))
}

// ---------------------------------------------------------------------------
// Dense row softmax (for the dense-attention baseline)
// ---------------------------------------------------------------------------

/// Row-wise softmax over a dense matrix: three bandwidth-bound passes, one
/// warp row-slice each. The memory traffic of this kernel on seq x seq score
/// matrices is a large part of why dense attention runs out of memory and
/// time at long sequence lengths.
pub struct DenseSoftmaxKernel<'a> {
    x: Option<&'a Matrix<f32>>,
    out: Option<SyncUnsafeSlice<'a, f32>>,
    m: usize,
    n: usize,
    /// Logit scale applied on the fly while reading `x` (attention's
    /// `1/sqrt(d_k)`), so the host never mutates device data outside a
    /// launch. `None` is bit-identical to the historical unscaled kernel.
    scale: Option<f32>,
}

impl<'a> DenseSoftmaxKernel<'a> {
    pub fn new(x: &'a Matrix<f32>, out: &'a mut Matrix<f32>) -> Self {
        assert_eq!((out.rows(), out.cols()), (x.rows(), x.cols()));
        let (m, n) = (x.rows(), x.cols());
        Self {
            x: Some(x),
            out: Some(SyncUnsafeSlice::new(out.as_mut_slice())),
            m,
            n,
            scale: None,
        }
    }

    pub fn for_profile(m: usize, n: usize) -> Self {
        Self {
            x: None,
            out: None,
            m,
            n,
            scale: None,
        }
    }

    /// Fold a logit scale into the softmax's read pass.
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = Some(scale);
        self
    }
}

impl Kernel for DenseSoftmaxKernel<'_> {
    fn name(&self) -> String {
        if self.scale.is_some() {
            "dense_softmax_scaled".to_string()
        } else {
            "dense_softmax".to_string()
        }
    }

    fn grid(&self) -> Dim3 {
        Dim3::x((self.m as u32).div_ceil(4))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(32, 4)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BUF_X,
                name: "x",
                footprint_bytes: (self.m * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_Y,
                name: "y",
                footprint_bytes: (self.m * self.n * 4) as u64,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        for w in 0..4usize {
            let row = block.x as usize * 4 + w;
            if row >= self.m {
                continue;
            }
            let n = self.n as u64;
            let load_instrs = n.div_ceil(32 * 4);
            let sectors = gpu_sim::memory::sectors_contiguous((row * self.n * 4) as u64, n * 4);
            ctx.cost.ld_global_instrs += 3 * load_instrs;
            ctx.cost.gmem[BUF_X.0 as usize].ld_sectors += 3 * sectors;
            if self.scale.is_some() {
                // One multiply per element across the three read passes.
                ctx.fp(3 * n.div_ceil(32), 3 * n);
                ctx.cost.flops += 3 * n;
            }
            ctx.fp(3 * n.div_ceil(32), 3 * n);
            ctx.shfl(10);
            ctx.fp(10, 10);
            ctx.cost.st_global_instrs += load_instrs;
            ctx.cost.gmem[BUF_Y.0 as usize].st_sectors += sectors;
            ctx.misc(8);
            ctx.cost.flops += 3 * n;

            if let (true, Some(x), Some(out)) = (ctx.functional(), self.x, self.out.as_ref()) {
                let x = x.as_slice();
                let rowv = &x[row * self.n..(row + 1) * self.n];
                let logit = |v: f32| match self.scale {
                    Some(s) => v * s,
                    None => v,
                };
                let max = rowv
                    .iter()
                    .map(|&v| logit(v))
                    .fold(f32::NEG_INFINITY, f32::max);
                let sum: f32 = rowv.iter().map(|&v| (logit(v) - max).exp()).sum();
                for (i, &v) in rowv.iter().enumerate() {
                    unsafe { out.write(row * self.n + i, (logit(v) - max).exp() / sum) };
                }
            }
        }
    }
}

/// Functional dense softmax.
pub fn dense_softmax(gpu: &Gpu, x: &Matrix<f32>) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let stats = {
        let kernel = DenseSoftmaxKernel::new(x, &mut out);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile a dense softmax at the given shape.
pub fn dense_softmax_profile(gpu: &Gpu, m: usize, n: usize) -> LaunchStats {
    gpu.profile(&DenseSoftmaxKernel::for_profile(m, n))
}

/// Functional dense softmax with the logit scale folded into the kernel's
/// read pass (`softmax(x * scale)` in one launch, no host-side mutation).
pub fn dense_softmax_scaled(gpu: &Gpu, x: &Matrix<f32>, scale: f32) -> (Matrix<f32>, LaunchStats) {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let stats = {
        let kernel = DenseSoftmaxKernel::new(x, &mut out).with_scale(scale);
        gpu.launch(&kernel)
    };
    (out, stats)
}

/// Profile a scaled dense softmax at the given shape.
pub fn dense_softmax_scaled_profile(gpu: &Gpu, m: usize, n: usize, scale: f32) -> LaunchStats {
    gpu.profile(&DenseSoftmaxKernel::for_profile(m, n).with_scale(scale))
}

// ---------------------------------------------------------------------------
// Host-side helpers
// ---------------------------------------------------------------------------

/// im2col for 3x3 convolutions: lowers a CHW image to a `(C*9) x (Ho*Wo)`
/// matrix so the convolution becomes a GEMM/SpMM. "We benchmark convolution
/// operations found in ResNet-50 as an im2col transform on the input data
/// followed by SpMM ... we do not include the time of the im2col transform"
/// — matching that, this runs on the host and is not timed.
pub fn im2col_3x3(input: &Chw, stride: usize) -> Matrix<f32> {
    let (oh, ow) = DepthwiseConvKernel::out_dims(input.height, input.width, stride);
    let mut out = Matrix::zeros(input.channels * 9, oh * ow);
    for c in 0..input.channels {
        for ky in 0..3i64 {
            for kx in 0..3i64 {
                let r = c * 9 + (ky * 3 + kx) as usize;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * stride) as i64 + ky - 1;
                        let ix = (ox * stride) as i64 + kx - 1;
                        out.set(r, oy * ow + ox, input.get(c, iy, ix));
                    }
                }
            }
        }
    }
    out
}

/// Fold batch normalization into the preceding linear operation's weights
/// and bias: `w' = w * gamma / sqrt(var + eps)`, `b' = (b - mean) * gamma /
/// sqrt(var + eps) + beta`. "At inference time, batch normalization can be
/// fused into the preceding linear operation."
pub fn fold_batchnorm(
    weights: &mut Matrix<f32>,
    bias: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
) {
    let m = weights.rows();
    assert!(
        bias.len() == m && gamma.len() == m && beta.len() == m && mean.len() == m && var.len() == m
    );
    for r in 0..m {
        let scale = gamma[r] / (var[r] + eps).sqrt();
        for c in 0..weights.cols() {
            let w = weights.get(r, c);
            weights.set(r, c, w * scale);
        }
        bias[r] = (bias[r] - mean[r]) * scale + beta[r];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn linear_dense_and_sparse_agree_on_dense_weights() {
        // A "sparse" layer holding fully dense weights must match the dense
        // layer's outputs exactly.
        let w = Matrix::<f32>::random(32, 48, 81);
        let x = Matrix::<f32>::random(48, 16, 82);
        let gpu = Gpu::v100();
        let dense = Linear::dense(w.clone(), None, false);
        let sp = Linear::sparse(CsrMatrix::from_dense(&w), None, false);
        let (yd, _) = dense.forward(&gpu, &x);
        let (ys, _) = sp.forward(&gpu, &x);
        assert!(yd.max_abs_diff(&ys) < 1e-3);
    }

    #[test]
    fn linear_fused_bias_relu_matches_reference() {
        let w = gen::uniform(24, 32, 0.8, 83);
        let x = Matrix::<f32>::random(32, 20, 84);
        let bias: Vec<f32> = (0..24).map(|i| i as f32 * 0.1 - 1.0).collect();
        let gpu = Gpu::v100();
        let layer = Linear::sparse(w.clone(), Some(bias.clone()), true);
        let (y, _) = layer.forward(&gpu, &x);
        let expect = sputnik::reference::bias_relu(&sputnik::reference::spmm(&w, &x), &bias);
        assert!(y.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn bias_relu_kernel_matches_reference() {
        let x = Matrix::<f32>::random(17, 33, 85);
        let bias: Vec<f32> = (0..17).map(|i| (i as f32 - 8.0) / 4.0).collect();
        let gpu = Gpu::v100();
        let (y, _) = bias_relu(&gpu, &x, &bias, true);
        let expect = sputnik::reference::bias_relu(&x, &bias);
        assert!(y.max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    fn depthwise_conv_identity_filter() {
        // A filter with only the center tap = 1 reproduces the input (ReLU'd).
        let input = Chw::random(4, 8, 8, 86);
        let mut filters = vec![0.0f32; 4 * 9];
        for c in 0..4 {
            filters[c * 9 + 4] = 1.0;
        }
        let bias = vec![0.0f32; 4];
        let gpu = Gpu::v100();
        let (out, _) = depthwise_conv(&gpu, &input, &filters, &bias, 1);
        for c in 0..4 {
            for y in 0..8i64 {
                for x in 0..8i64 {
                    let want = input.get(c, y, x).max(0.0);
                    assert!((out.get(c, y, x) - want).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn depthwise_conv_stride2_dims() {
        let input = Chw::random(2, 9, 9, 87);
        let filters = vec![0.1f32; 18];
        let bias = vec![0.0f32; 2];
        let gpu = Gpu::v100();
        let (out, _) = depthwise_conv(&gpu, &input, &filters, &bias, 2);
        assert_eq!((out.height, out.width), (5, 5));
    }

    #[test]
    fn depthwise_conv_sum_matches_manual() {
        let mut input = Chw::zeros(1, 3, 3);
        input.data = (1..=9).map(|v| v as f32).collect();
        let filters = vec![1.0f32; 9];
        let bias = vec![0.5f32];
        let gpu = Gpu::v100();
        let (out, _) = depthwise_conv(&gpu, &input, &filters, &bias, 1);
        // Center output = sum of all 9 inputs + bias.
        assert!((out.get(0, 1, 1) - 45.5).abs() < 1e-6);
        // Corner sees only the 2x2 in-bounds region.
        assert!((out.get(0, 0, 0) - (1.0 + 2.0 + 4.0 + 5.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn dense_softmax_matches_host() {
        let x = Matrix::<f32>::random(16, 40, 88);
        let gpu = Gpu::v100();
        let (y, _) = dense_softmax(&gpu, &x);
        for r in 0..16 {
            let sum: f32 = (0..40).map(|c| y.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        // Full conv via im2col + GEMM equals the direct computation.
        let input = Chw::random(3, 6, 6, 89);
        let w = Matrix::<f32>::random(5, 27, 90); // 5 output channels, 3x3x3
        let cols = im2col_3x3(&input, 1);
        let y = w.matmul(&cols);
        // Direct: out[o][y][x] = sum_c sum_k w[o][c*9+k] * in[c, y+ky-1, x+kx-1]
        for o in 0..5 {
            for oy in 0..6i64 {
                for ox in 0..6i64 {
                    let mut acc = 0.0f32;
                    for c in 0..3 {
                        for ky in 0..3i64 {
                            for kx in 0..3i64 {
                                acc += w.get(o, c * 9 + (ky * 3 + kx) as usize)
                                    * input.get(c, oy + ky - 1, ox + kx - 1);
                            }
                        }
                    }
                    let got = y.get(o, (oy * 6 + ox) as usize);
                    assert!((got - acc).abs() < 1e-4, "({o},{oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn batchnorm_folding_preserves_output() {
        let mut w = Matrix::<f32>::random(8, 8, 91);
        let mut bias = vec![0.1f32; 8];
        let orig_w = w.clone();
        let orig_b = bias.clone();
        let gamma = vec![1.5f32; 8];
        let beta = vec![0.2f32; 8];
        let mean = vec![0.3f32; 8];
        let var = vec![0.8f32; 8];
        fold_batchnorm(&mut w, &mut bias, &gamma, &beta, &mean, &var, 1e-5);
        let x = Matrix::<f32>::random(8, 4, 92);
        // Folded: w'x + b' must equal gamma*(wx + b - mean)/sqrt(var+eps) + beta.
        let folded = w.matmul(&x);
        let raw = orig_w.matmul(&x);
        for r in 0..8 {
            for c in 0..4 {
                let scale = gamma[r] / (var[r] + 1e-5f32).sqrt();
                let want = (raw.get(r, c) + orig_b[r] - mean[r]) * scale + beta[r];
                let got = folded.get(r, c) + bias[r];
                assert!((got - want).abs() < 1e-4);
            }
        }
    }

    use sparse::CsrMatrix;
}
