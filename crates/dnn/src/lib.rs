//! # dnn — the neural-network substrate for the application experiments
//!
//! Layers (dense/sparse linear, depthwise conv, fused bias+ReLU, softmax),
//! magnitude pruning, multi-head attention (dense and SDDMM->sparse-softmax
//! ->SpMM), the paper's sparse Transformer (Table III) and sparse
//! MobileNetV1 (Table IV / Figure 12) models, and the recurrent-network
//! problem suite of Figure 10 — all running on the simulated GPU.
pub mod accuracy;
pub mod attention;
pub mod fleet;
pub mod gru;
pub mod jointsweep;
pub mod layers;
pub mod lstm;
pub mod mobilenet;
pub mod pruning;
pub mod resnet;
pub mod rnn;
pub mod training;
pub mod transformer;

pub use attention::{dense_attention, sparse_attention, AttentionTime};
pub use fleet::{
    mobilenet_pointwise_problem, scaling_sweep, transformer_attention_problem, FleetProblem,
    ScalingPoint, ShardStrategy,
};
pub use gru::{GruStep, SparseGruCell};
pub use jointsweep::{joint_crossover_sweep, JointSweep, JointSweepPoint};
pub use layers::{bias_relu, depthwise_conv, im2col_3x3, Chw, Linear};
pub use lstm::{LstmStep, SparseLstmCell};
pub use mobilenet::MobileNetV1;
pub use pruning::{magnitude_prune, threshold_activations};
pub use resnet::resnet50_convs;
pub use rnn::{problem_suite, CellKind, RnnProblem};
pub use training::{
    sparse_attention_backward, AttentionGrads, SparseAdam, SparseLinearTrainer, StepTiming,
};
pub use transformer::{AttentionMode, TransformerConfig};
