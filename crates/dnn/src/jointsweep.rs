//! The joint-sparsity crossover sweep (the Figure 9 methodology applied to
//! *activation* density).
//!
//! Figure 9 of the paper sweeps weight sparsity to locate where SpMM
//! overtakes dense GEMM. This module holds the weight sparsity fixed and
//! sweeps the *activation* zero fraction instead, measuring four contenders
//! at every point:
//!
//! * dense GEMM (`baselines::cublas`) — ignores both kinds of sparsity;
//! * weight-only Sputnik SpMM — the paper's kernel, blind to activations;
//! * joint SpMM with a fine 8x32 pattern LUT;
//! * joint SpMM with a coarse 64x32 pattern LUT.
//!
//! The interesting structure is *multiplicative*: weight-only SpMM's
//! advantage over GEMM comes from the weight sparsity, and the joint
//! kernel's advantage over weight-only SpMM comes from the activation
//! sparsity, so the two compose. The sweep also locates the activation-
//! density crossover: the zero fraction past which the joint kernel beats
//! dense GEMM even when weight-only SpMM alone does not.
//!
//! Every point functionally launches all three sparse contenders and
//! asserts nothing — it *records* whether the joint outputs are bit-
//! identical to the weight-only output, and downstream gates (tests, the
//! `jointwall` bench) turn that bit into a hard failure.

use baselines::gemm_profile;
use gpu_sim::Gpu;
use sparse::{gen, CsrMatrix, Matrix, PatternGranularity, PatternLut};
use sputnik::{joint_heuristic, joint_spmm, spmm, SpmmConfig};

/// One activation-density point of the sweep.
#[derive(Debug, Clone)]
pub struct JointSweepPoint {
    /// Target zero fraction handed to the activation generator.
    pub target_zero_frac: f64,
    /// Zero fraction the generator actually realized.
    pub realized_zero_frac: f64,
    /// Fraction of 8x32 LUT tiles proven dead.
    pub fine_dead_frac: f64,
    /// Fraction of 64x32 LUT tiles proven dead.
    pub coarse_dead_frac: f64,
    /// Simulated time of the dense GEMM baseline, microseconds.
    pub dense_gemm_us: f64,
    /// Simulated time of weight-only Sputnik SpMM, microseconds.
    pub weight_spmm_us: f64,
    /// Simulated time of the joint kernel with the fine LUT, microseconds.
    pub joint_fine_us: f64,
    /// Simulated time of the joint kernel with the coarse LUT, microseconds.
    pub joint_coarse_us: f64,
    /// Whether both joint outputs matched the weight-only SpMM output
    /// bit-for-bit (the soundness contract, recorded per point).
    pub bit_identical: bool,
}

impl JointSweepPoint {
    /// Joint-fine speedup over the weight-only kernel (the activation
    /// multiplier).
    pub fn fine_speedup_vs_spmm(&self) -> f64 {
        self.weight_spmm_us / self.joint_fine_us
    }

    /// Joint-coarse speedup over the weight-only kernel.
    pub fn coarse_speedup_vs_spmm(&self) -> f64 {
        self.weight_spmm_us / self.joint_coarse_us
    }

    /// Whether the fine joint kernel beats the dense GEMM baseline here.
    pub fn fine_beats_dense(&self) -> bool {
        self.joint_fine_us < self.dense_gemm_us
    }
}

/// A completed crossover sweep over one problem shape.
#[derive(Debug, Clone)]
pub struct JointSweep {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Weight sparsity held fixed across the sweep.
    pub weight_sparsity: f64,
    /// Points in ascending target-zero-fraction order.
    pub points: Vec<JointSweepPoint>,
}

impl JointSweep {
    /// The activation-density crossover: the smallest swept zero fraction at
    /// which the fine joint kernel beats dense GEMM, if any point does.
    /// `None` means the dense baseline won everywhere (e.g. the weights are
    /// too dense for any activation sparsity to compensate).
    pub fn crossover_zero_frac(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.fine_beats_dense())
            .map(|p| p.target_zero_frac)
    }

    /// True iff every point's joint outputs were bit-identical to the
    /// weight-only kernel's.
    pub fn all_bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.bit_identical)
    }
}

fn zero_fraction(m: &Matrix<f32>) -> f64 {
    let total = m.as_slice().len();
    if total == 0 {
        return 0.0;
    }
    let zeros = m.as_slice().iter().filter(|v| v.to_bits() == 0).count();
    zeros as f64 / total as f64
}

fn bits_equal(a: &Matrix<f32>, b: &Matrix<f32>) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Run the crossover sweep: fixed `m x k` weights at `weight_sparsity`,
/// `k x n` activations regenerated at each target zero fraction with the
/// seeded generator ([`sparse::gen::activations`]), one functional launch
/// per contender per point. Deterministic for fixed arguments.
pub fn joint_crossover_sweep(
    gpu: &Gpu,
    m: usize,
    k: usize,
    n: usize,
    weight_sparsity: f64,
    zero_fracs: &[f64],
    seed: u64,
) -> JointSweep {
    let a: CsrMatrix<f32> = gen::uniform(m, k, weight_sparsity, seed);
    let cfg: SpmmConfig = joint_heuristic::<f32>(n);
    let mut points = Vec::with_capacity(zero_fracs.len());
    for (i, &zf) in zero_fracs.iter().enumerate() {
        let b = gen::activations(k, n, zf, seed.wrapping_add(1 + i as u64));
        let fine = PatternLut::build(&b, PatternGranularity::Fine);
        let coarse = PatternLut::build(&b, PatternGranularity::Coarse);

        let dense_gemm_us = gemm_profile(gpu, m, k, n).time_us;
        let (c_weight, weight_stats) = spmm(gpu, &a, &b, cfg);
        let (c_fine, fine_stats) = joint_spmm(gpu, &a, &b, &fine, cfg);
        let (c_coarse, coarse_stats) = joint_spmm(gpu, &a, &b, &coarse, cfg);

        points.push(JointSweepPoint {
            target_zero_frac: zf,
            realized_zero_frac: zero_fraction(&b),
            fine_dead_frac: fine.dead_fraction(),
            coarse_dead_frac: coarse.dead_fraction(),
            dense_gemm_us,
            weight_spmm_us: weight_stats.time_us,
            joint_fine_us: fine_stats.time_us,
            joint_coarse_us: coarse_stats.time_us,
            bit_identical: bits_equal(&c_fine, &c_weight) && bits_equal(&c_coarse, &c_weight),
        });
    }
    JointSweep {
        m,
        k,
        n,
        weight_sparsity,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> JointSweep {
        // Memory-bound enough (B overflows L2 reuse) that skipped B traffic
        // shows up in launch time, small enough for a functional test.
        let gpu = Gpu::v100();
        joint_crossover_sweep(&gpu, 512, 1024, 256, 0.9, &[0.0, 0.3, 0.6, 0.85], 0x10_17)
    }

    #[test]
    fn sweep_is_bit_identical_at_every_point() {
        let s = sweep();
        assert_eq!(s.points.len(), 4);
        assert!(s.all_bit_identical(), "joint outputs diverged: {s:?}");
    }

    #[test]
    fn skipping_pays_off_as_activations_sparsify() {
        let s = sweep();
        let first = &s.points[0];
        let last = &s.points[s.points.len() - 1];
        assert!(
            last.joint_fine_us < first.joint_fine_us,
            "fine joint time should fall with activation sparsity: {} -> {}",
            first.joint_fine_us,
            last.joint_fine_us
        );
        assert!(
            last.fine_speedup_vs_spmm() > 1.2,
            "fine skip speedup at 85% target zeros: {}",
            last.fine_speedup_vs_spmm()
        );
        // Fine tiles die at least as often as coarse ones, so fine is never
        // slower than coarse by more than the extra probe traffic.
        assert!(last.fine_dead_frac >= last.coarse_dead_frac);
    }

    #[test]
    fn dense_baseline_is_density_invariant() {
        let s = sweep();
        let d0 = s.points[0].dense_gemm_us;
        for p in &s.points {
            assert!((p.dense_gemm_us - d0).abs() < 1e-9, "GEMM ignores sparsity");
        }
    }

    #[test]
    fn crossover_is_reported_in_sweep_order() {
        let s = sweep();
        if let Some(zf) = s.crossover_zero_frac() {
            let idx = s
                .points
                .iter()
                .position(|p| p.target_zero_frac == zf)
                .expect("crossover point is a swept point");
            assert!(s.points[idx].fine_beats_dense());
            assert!(!s.points[..idx].iter().any(|p| p.fine_beats_dense()));
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let gpu = Gpu::v100();
        let a = joint_crossover_sweep(&gpu, 64, 128, 32, 0.7, &[0.5], 42);
        let b = joint_crossover_sweep(&gpu, 64, 128, 32, 0.7, &[0.5], 42);
        assert_eq!(a.points[0].joint_fine_us, b.points[0].joint_fine_us);
        assert_eq!(
            a.points[0].realized_zero_frac,
            b.points[0].realized_zero_frac
        );
    }
}
