//! Training on compressed representations, end to end.
//!
//! The paper's introduction sets the bar: "to make training large sparse
//! models feasible, all computation during training needs to operate
//! directly on the compressed sparse representation of the model's
//! weights." This module assembles that computation from the kernels this
//! repository provides — nothing ever densifies:
//!
//! * **Sparse linear layer step**: forward SpMM; weight gradient by SDDMM
//!   (topology-preserving); input gradient by the cached-transpose SpMM;
//!   SGD update on the value array; cached-transpose refresh by the permute
//!   kernel.
//! * **Sparse attention backward**: dV via transposed SpMM of the
//!   probabilities, dP via SDDMM against the mask, the softmax backward as
//!   a row-wise sparse elementwise pass, then dQ/dK via SpMM and transposed
//!   SpMM of the score gradients.

use crate::attention::AttentionTime;
use gpu_sim::Gpu;
use sparse::{CsrMatrix, Matrix, RowSwizzle};
use sputnik::{CachedTranspose, SddmmConfig, SpmmConfig};

/// A sparse linear layer with everything amortizable precomputed.
pub struct SparseLinearTrainer {
    weights: CsrMatrix<f32>,
    swizzle: RowSwizzle,
    wt_cache: CachedTranspose<f32>,
}

/// Timing of one training step's kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTiming {
    pub forward_us: f64,
    pub weight_grad_us: f64,
    pub input_grad_us: f64,
    pub update_us: f64,
}

impl StepTiming {
    pub fn total_us(&self) -> f64 {
        self.forward_us + self.weight_grad_us + self.input_grad_us + self.update_us
    }
}

impl SparseLinearTrainer {
    pub fn new(weights: CsrMatrix<f32>) -> Self {
        let swizzle = RowSwizzle::by_length_desc(&weights);
        let wt_cache = CachedTranspose::new(&weights);
        Self {
            weights,
            swizzle,
            wt_cache,
        }
    }

    pub fn weights(&self) -> &CsrMatrix<f32> {
        &self.weights
    }

    /// Forward pass: `Y = W X`.
    pub fn forward(&self, gpu: &Gpu, x: &Matrix<f32>) -> (Matrix<f32>, f64) {
        let cfg = SpmmConfig::heuristic::<f32>(x.cols());
        let mut out = Matrix::<f32>::zeros(self.weights.rows(), x.cols());
        let stats = {
            let kernel = sputnik::SpmmKernel::new(&self.weights, x, &mut out, &self.swizzle, cfg);
            gpu.launch(&kernel)
        };
        (out, stats.time_us)
    }

    /// One SGD step given the layer input and the output gradient: computes
    /// `dW = dY X^T ⊙ I[W]` and `dX = W^T dY`, updates the weight values,
    /// refreshes the cached transpose, and returns `dX` with timings.
    pub fn step(
        &mut self,
        gpu: &Gpu,
        x: &Matrix<f32>,
        dy: &Matrix<f32>,
        lr: f32,
    ) -> (Matrix<f32>, StepTiming) {
        let n = x.cols();
        assert_eq!(dy.cols(), n);
        assert_eq!(dy.rows(), self.weights.rows());
        let mut timing = StepTiming::default();

        // Weight gradient (keeps W's topology exactly).
        let (dw, s) = sputnik::sddmm(gpu, dy, x, &self.weights, SddmmConfig::heuristic::<f32>(n));
        timing.weight_grad_us = s.time_us;

        // Input gradient through the cached transpose.
        let (dx, s) = self.wt_cache.spmm(gpu, dy, SpmmConfig::heuristic::<f32>(n));
        timing.input_grad_us = s.time_us;

        // SGD on the value array only.
        let new_values: Vec<f32> = self
            .weights
            .values()
            .iter()
            .zip(dw.values())
            .map(|(w, g)| w - lr * g)
            .collect();
        self.weights = self.weights.with_values(new_values);
        let s = self.wt_cache.update_values(gpu, self.weights.values());
        timing.update_us = s.time_us;

        (dx, timing)
    }
}

/// Gradients of sparse attention.
pub struct AttentionGrads {
    pub dq: Matrix<f32>,
    pub dk: Matrix<f32>,
    pub dv: Matrix<f32>,
    pub time: AttentionTime,
}

/// Backward pass of `Z = softmax((Q K^T ⊙ mask) / sqrt(d)) V` given `dZ`.
///
/// `probs` is the forward pass's post-softmax sparse matrix (callers keep it
/// for the backward, as frameworks do). Every step operates on the
/// compressed representation:
///
/// ```text
/// dV = P^T dZ                      transposed SpMM
/// dP = (dZ V^T) ⊙ I[mask]          SDDMM
/// dS = P ⊙ (dP - rowsum(P ⊙ dP))   sparse row-wise elementwise (host-assisted)
/// dQ = (dS / sqrt(d)) K            SpMM
/// dK = (dS / sqrt(d))^T Q          transposed SpMM
/// ```
pub fn sparse_attention_backward(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    probs: &CsrMatrix<f32>,
    dz: &Matrix<f32>,
) -> AttentionGrads {
    let d = q.cols();
    assert_eq!(k.cols(), d);
    let scale = 1.0 / (d as f32).sqrt();
    let mut time = AttentionTime::default();

    // dV = P^T dZ.
    let pt = CachedTranspose::new(probs);
    let (dv, s) = pt.spmm(gpu, dz, SpmmConfig::heuristic::<f32>(dz.cols()));
    time.context_us += s.time_us;

    // dP at the mask's positions.
    let (dp, s) = sputnik::sddmm(gpu, dz, v, probs, SddmmConfig::heuristic::<f32>(v.cols()));
    time.scores_us += s.time_us;

    // Softmax backward, row-wise over the sparse values. (The elementwise
    // arithmetic runs on the host here; its device cost is the same
    // bandwidth-bound shape as the forward sparse softmax, so we charge one
    // extra softmax pass.)
    let softmax_cost = sputnik::sparse_softmax_profile::<f32>(gpu, probs);
    time.softmax_us += softmax_cost.time_us;
    let mut ds_values = Vec::with_capacity(probs.nnz());
    for r in 0..probs.rows() {
        let (_, pvals) = probs.row(r);
        let start = probs.row_offsets()[r] as usize;
        let dpvals = &dp.values()[start..start + pvals.len()];
        let dot: f32 = pvals.iter().zip(dpvals).map(|(p, g)| p * g).sum();
        for (p, g) in pvals.iter().zip(dpvals) {
            ds_values.push(p * (g - dot) * scale);
        }
    }
    let ds = probs.with_values(ds_values);

    // dQ = dS K.
    let (dq, s) = sputnik::spmm(gpu, &ds, k, SpmmConfig::heuristic::<f32>(d));
    time.context_us += s.time_us;

    // dK = dS^T Q.
    let dst = CachedTranspose::new(&ds);
    let (dk, s) = dst.spmm(gpu, q, SpmmConfig::heuristic::<f32>(d));
    time.context_us += s.time_us;

    AttentionGrads { dq, dk, dv, time }
}

// ---------------------------------------------------------------------------
// Optimizers on compressed value arrays
// ---------------------------------------------------------------------------

/// Adam state over a sparse matrix's value array. The moments share the
/// weight topology, so the optimizer never materializes anything dense —
/// its device cost is one elementwise kernel over `nnz` elements per step,
/// modeled with the same bandwidth shape as the LSTM/GRU pointwise kernels.
pub struct SparseAdam {
    m: Vec<f32>,
    v: Vec<f32>,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u32,
}

impl SparseAdam {
    pub fn new(nnz: usize) -> Self {
        Self {
            m: vec![0.0; nnz],
            v: vec![0.0; nnz],
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
        }
    }

    /// Apply one Adam update to `weights` given a same-topology gradient.
    /// Returns the updated matrix and the simulated device time of the
    /// elementwise pass (reads w, g, m, v; writes w, m, v => 7 nnz-sized
    /// streams).
    pub fn step(
        &mut self,
        gpu: &Gpu,
        weights: &CsrMatrix<f32>,
        grads: &CsrMatrix<f32>,
        lr: f32,
    ) -> (CsrMatrix<f32>, f64) {
        assert!(
            weights.same_pattern(grads),
            "Adam requires matching topology"
        );
        assert_eq!(self.m.len(), weights.nnz());
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);

        let mut new_values = Vec::with_capacity(weights.nnz());
        for (i, (&w, &g)) in weights.values().iter().zip(grads.values()).enumerate() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            new_values.push(w - lr * m_hat / (v_hat.sqrt() + self.eps));
        }

        // Device cost: a 7-stream elementwise pass over nnz values —
        // bandwidth-bound, identical in shape to the fused cell kernels.
        let bytes = 7.0 * weights.nnz() as f64 * 4.0;
        let dev = gpu.device();
        let time_us = bytes / (dev.dram_bw_gbps * 1e3) + dev.launch_overhead_us;

        (weights.with_values(new_values), time_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn linear_trainer_gradients_match_host() {
        let gpu = Gpu::v100();
        let w = gen::uniform(24, 16, 0.6, 701);
        let mut trainer = SparseLinearTrainer::new(w.clone());
        let x = Matrix::<f32>::random(16, 8, 702);
        let dy = Matrix::<f32>::random(24, 8, 703);

        let w_before = trainer.weights().clone();
        let (dx, timing) = trainer.step(&gpu, &x, &dy, 0.1);

        // dX = W^T dY.
        let dx_expect = sputnik::reference::spmm(&w_before.transpose(), &dy);
        assert!(dx.max_abs_diff(&dx_expect) < 1e-3);

        // Updated values: w - lr * (dY X^T at W's positions).
        let dw_expect = sputnik::reference::sddmm(&dy, &x, &w_before);
        for ((new, old), g) in trainer
            .weights()
            .values()
            .iter()
            .zip(w_before.values())
            .zip(dw_expect.values())
        {
            assert!((new - (old - 0.1 * g)).abs() < 1e-3);
        }
        assert!(
            trainer.weights().same_pattern(&w_before),
            "topology must not change"
        );
        assert!(timing.total_us() > 0.0);
    }

    #[test]
    fn trainer_descends_on_a_fixed_batch() {
        let gpu = Gpu::v100();
        let w = gen::uniform(16, 12, 0.5, 704);
        let target = w.with_values(w.values().iter().map(|v| v * -1.5).collect());
        let mut trainer = SparseLinearTrainer::new(w);
        let x = Matrix::<f32>::random(12, 8, 705);
        let y_star = sputnik::reference::spmm(&target, &x);

        let loss = |trainer: &SparseLinearTrainer| -> f32 {
            let y = sputnik::reference::spmm(trainer.weights(), &x);
            y.as_slice()
                .iter()
                .zip(y_star.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        let l0 = loss(&trainer);
        for _ in 0..20 {
            let y = sputnik::reference::spmm(trainer.weights(), &x);
            let dy = Matrix::from_vec(
                16,
                8,
                y.as_slice()
                    .iter()
                    .zip(y_star.as_slice())
                    .map(|(a, b)| (a - b) / 8.0)
                    .collect(),
            );
            trainer.step(&gpu, &x, &dy, 0.2);
        }
        let l1 = loss(&trainer);
        assert!(
            l1 < l0 * 0.2,
            "loss {l0} -> {l1} should collapse on a realizable target"
        );
    }

    /// Analytic check of the attention backward against a dense host
    /// implementation restricted to the mask.
    #[test]
    fn attention_backward_matches_host() {
        let gpu = Gpu::v100();
        let (seq, d) = (24usize, 8usize);
        let q = Matrix::<f32>::random(seq, d, 706);
        let k = Matrix::<f32>::random(seq, d, 707);
        let v = Matrix::<f32>::random(seq, d, 708);
        let mask = gen::attention_mask(seq, 4, 0.7, 709);
        let scale = 1.0 / (d as f32).sqrt();

        // Forward on the host.
        let (probs, _) = {
            let (mut scores, _) = sputnik::sddmm(&gpu, &q, &k, &mask, SddmmConfig::default());
            for val in scores.values_mut() {
                *val *= scale;
            }
            sputnik::sparse_softmax(&gpu, &scores)
        };
        let dz = Matrix::<f32>::random(seq, d, 710);

        let grads = sparse_attention_backward(&gpu, &q, &k, &v, &probs, &dz);

        // Host reference, fully explicit.
        let p_dense = probs.to_dense();
        // dV = P^T dZ.
        let dv_ref = p_dense.transpose().matmul(&dz);
        assert!(grads.dv.max_abs_diff(&dv_ref) < 1e-3, "dV");

        // dP = dZ V^T on the mask; dS = P*(dP - rowsum(P*dP))*scale.
        let dp_dense = dz.matmul(&v.transpose());
        let mut ds_dense = Matrix::<f32>::zeros(seq, seq);
        for r in 0..seq {
            let (cols, pvals) = probs.row(r);
            let dot: f32 = cols
                .iter()
                .zip(pvals)
                .map(|(&c, &p)| p * dp_dense.get(r, c as usize))
                .sum();
            for (&c, &p) in cols.iter().zip(pvals) {
                ds_dense.set(
                    r,
                    c as usize,
                    p * (dp_dense.get(r, c as usize) - dot) * scale,
                );
            }
        }
        // dQ = dS K; dK = dS^T Q.
        let dq_ref = ds_dense.matmul(&k);
        let dk_ref = ds_dense.transpose().matmul(&q);
        assert!(grads.dq.max_abs_diff(&dq_ref) < 1e-3, "dQ");
        assert!(grads.dk.max_abs_diff(&dk_ref) < 1e-3, "dK");
        assert!(grads.time.total_us() > 0.0);
    }

    #[test]
    fn adam_matches_scalar_reference() {
        let gpu = Gpu::v100();
        let w = gen::uniform(8, 8, 0.5, 715);
        let g = w.with_values(w.values().iter().map(|v| v * 0.3 + 0.1).collect());
        let mut opt = SparseAdam::new(w.nnz());
        let (w1, t) = opt.step(&gpu, &w, &g, 0.01);
        assert!(t > 0.0);
        // First step: m=(1-b1)g, v=(1-b2)g^2; hat-corrected update is
        // lr * g/(|g| + eps) = lr * sign(g) to first order.
        for ((old, new), grad) in w.values().iter().zip(w1.values()).zip(g.values()) {
            let expect = old - 0.01 * grad.signum() * (grad.abs() / (grad.abs() + 1e-8));
            assert!((new - expect).abs() < 1e-4, "{new} vs {expect}");
        }
        // Second step moves further in the same direction for a constant grad.
        let (w2, _) = opt.step(&gpu, &w1, &g, 0.01);
        for ((v0, v1), v2) in w.values().iter().zip(w1.values()).zip(w2.values()) {
            assert!((v1 - v0).signum() == (v2 - v1).signum() || (v2 - v1).abs() < 1e-9);
        }
    }

    #[test]
    fn adam_keeps_topology_and_rejects_mismatch() {
        let gpu = Gpu::v100();
        let w = gen::uniform(16, 16, 0.7, 716);
        let g = w.with_values(vec![0.5; w.nnz()]);
        let mut opt = SparseAdam::new(w.nnz());
        let (w1, _) = opt.step(&gpu, &w, &g, 0.1);
        assert!(w1.same_pattern(&w));
        let other = gen::uniform(16, 16, 0.7, 717);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut opt2 = SparseAdam::new(w.nnz());
            opt2.step(&gpu, &w, &other, 0.1)
        }));
        assert!(result.is_err(), "mismatched topology must panic");
    }

    /// Finite-difference spot check: the analytic dQ moves the loss as
    /// predicted for a few random coordinates.
    #[test]
    fn attention_backward_finite_difference() {
        let gpu = Gpu::v100();
        let (seq, d) = (12usize, 4usize);
        let q0 = Matrix::<f32>::random(seq, d, 711);
        let k = Matrix::<f32>::random(seq, d, 712);
        let v = Matrix::<f32>::random(seq, d, 713);
        let mask = gen::attention_mask(seq, 3, 0.5, 714);
        let dz = Matrix::<f32>::from_fn(seq, d, |_, _| 1.0); // loss = sum(Z)
        let scale = 1.0 / (d as f32).sqrt();

        let forward_loss = |q: &Matrix<f32>| -> f32 {
            let (mut scores, _) = sputnik::sddmm(&gpu, q, &k, &mask, SddmmConfig::default());
            for val in scores.values_mut() {
                *val *= scale;
            }
            let (probs, _) = sputnik::sparse_softmax(&gpu, &scores);
            let (z, _) = sputnik::spmm(&gpu, &probs, &v, SpmmConfig::heuristic::<f32>(d));
            z.as_slice().iter().sum()
        };

        let (probs, _) = {
            let (mut scores, _) = sputnik::sddmm(&gpu, &q0, &k, &mask, SddmmConfig::default());
            for val in scores.values_mut() {
                *val *= scale;
            }
            sputnik::sparse_softmax(&gpu, &scores)
        };
        let grads = sparse_attention_backward(&gpu, &q0, &k, &v, &probs, &dz);

        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (5, 2), (11, 3)] {
            let mut qp = q0.clone();
            qp.set(r, c, q0.get(r, c) + eps);
            let mut qm = q0.clone();
            qm.set(r, c, q0.get(r, c) - eps);
            let numeric = (forward_loss(&qp) - forward_loss(&qm)) / (2.0 * eps);
            let analytic = grads.dq.get(r, c);
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "dQ[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
