//! Model-quality lookup.
//!
//! Training ImageNet classifiers (100+ epochs on 32 accelerators) is outside
//! this environment, so the accuracy axis of Table IV / Figure 12 is carried
//! through from the paper's reported measurements via calibrated
//! interpolation. Every use of these numbers is labelled as reproduced-from-
//! paper in EXPERIMENTS.md; the *throughput* axis is measured from our
//! simulator.

use serde::{Deserialize, Serialize};

/// A (width multiplier, top-1 accuracy %) measurement from Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    pub width: f64,
    pub top1: f64,
}

/// Dense MobileNetV1 accuracies reported in Table IV.
pub const DENSE_MOBILENET: [AccuracyPoint; 3] = [
    AccuracyPoint {
        width: 1.0,
        top1: 72.7,
    },
    AccuracyPoint {
        width: 1.2,
        top1: 73.8,
    },
    AccuracyPoint {
        width: 1.4,
        top1: 74.8,
    },
];

/// 90%-sparse MobileNetV1 accuracies reported in Table IV.
pub const SPARSE_MOBILENET: [AccuracyPoint; 6] = [
    AccuracyPoint {
        width: 1.3,
        top1: 72.9,
    },
    AccuracyPoint {
        width: 1.4,
        top1: 73.3,
    },
    AccuracyPoint {
        width: 1.5,
        top1: 73.8,
    },
    AccuracyPoint {
        width: 1.6,
        top1: 74.1,
    },
    AccuracyPoint {
        width: 1.7,
        top1: 74.4,
    },
    AccuracyPoint {
        width: 1.8,
        top1: 74.9,
    },
];

/// Piecewise-linear interpolation (with linear extrapolation at the ends)
/// over a table of accuracy points — used to draw the Figure 12 tradeoff
/// curves between the measured widths.
pub fn interpolate(points: &[AccuracyPoint], width: f64) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    // Find the bracketing segment (points are sorted by width).
    let mut i = 0;
    while i + 2 < points.len() && points[i + 1].width < width {
        i += 1;
    }
    let (a, b) = (points[i], points[i + 1]);
    let t = (width - a.width) / (b.width - a.width);
    a.top1 + t * (b.top1 - a.top1)
}

/// Dense MobileNetV1 top-1 at an arbitrary width.
pub fn dense_mobilenet_top1(width: f64) -> f64 {
    interpolate(&DENSE_MOBILENET, width)
}

/// 90%-sparse MobileNetV1 top-1 at an arbitrary width.
pub fn sparse_mobilenet_top1(width: f64) -> f64 {
    interpolate(&SPARSE_MOBILENET, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_points_are_reproduced() {
        assert_eq!(dense_mobilenet_top1(1.0), 72.7);
        assert_eq!(dense_mobilenet_top1(1.4), 74.8);
        assert_eq!(sparse_mobilenet_top1(1.3), 72.9);
        assert_eq!(sparse_mobilenet_top1(1.8), 74.9);
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut prev = 0.0;
        for w in [1.0, 1.1, 1.2, 1.3, 1.4] {
            let a = dense_mobilenet_top1(w);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn sparse_needs_more_width_for_same_accuracy() {
        // The Table IV story: sparse 1.5 matches dense 1.2 (73.8%).
        assert!((sparse_mobilenet_top1(1.5) - dense_mobilenet_top1(1.2)).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_continues_the_last_segment() {
        let beyond = dense_mobilenet_top1(1.6);
        assert!(
            beyond > 74.8,
            "extrapolating past 1.4 should keep rising, got {beyond}"
        );
    }
}
