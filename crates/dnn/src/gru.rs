//! A weight-sparse GRU cell (Cho et al.), companion to [`crate::lstm`].
//!
//! The Figure 10 suite benchmarks GRU-shaped matmuls (M = 3H); this module
//! runs the full cell functionally:
//!
//! ```text
//! [r z n] = W_x x + b_x       (input path, one SpMM, M = 3H)
//! [r z n]_h = W_h h + b_h     (recurrent path, one SpMM)
//! r = sigmoid(r_x + r_h)      z = sigmoid(z_x + z_h)
//! n = tanh(n_x + r * n_h)
//! h' = (1 - z) * n + z * h
//! ```

use gpu_sim::{
    AccessPattern, BlockContext, BufferId, BufferSpec, Dim3, Gpu, Kernel, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle};
use sputnik::{SpmmConfig, SpmmKernel};

/// A sparse GRU cell.
pub struct SparseGruCell {
    w_x: CsrMatrix<f32>,
    w_h: CsrMatrix<f32>,
    bias_x: Vec<f32>,
    bias_h: Vec<f32>,
    swizzle_x: RowSwizzle,
    swizzle_h: RowSwizzle,
    hidden: usize,
}

/// One step's output and kernel times.
pub struct GruStep {
    pub h: Matrix<f32>,
    pub input_matmul_us: f64,
    pub recurrent_matmul_us: f64,
    pub elementwise_us: f64,
}

impl GruStep {
    pub fn total_us(&self) -> f64 {
        self.input_matmul_us + self.recurrent_matmul_us + self.elementwise_us
    }
}

impl SparseGruCell {
    pub fn new(
        w_x: CsrMatrix<f32>,
        w_h: CsrMatrix<f32>,
        bias_x: Vec<f32>,
        bias_h: Vec<f32>,
    ) -> Self {
        assert_eq!(w_x.rows(), w_h.rows());
        assert_eq!(w_x.rows() % 3, 0, "GRU needs 3 gates");
        let hidden = w_x.rows() / 3;
        assert_eq!(w_h.cols(), hidden);
        assert_eq!(bias_x.len(), 3 * hidden);
        assert_eq!(bias_h.len(), 3 * hidden);
        let swizzle_x = RowSwizzle::by_length_desc(&w_x);
        let swizzle_h = RowSwizzle::by_length_desc(&w_h);
        Self {
            w_x,
            w_h,
            bias_x,
            bias_h,
            swizzle_x,
            swizzle_h,
            hidden,
        }
    }

    pub fn random(input: usize, hidden: usize, sparsity: f64, seed: u64) -> Self {
        let w_x = sparse::gen::uniform(3 * hidden, input, sparsity, seed);
        let w_h = sparse::gen::uniform(3 * hidden, hidden, sparsity, seed ^ 0x6e);
        Self::new(w_x, w_h, vec![0.0; 3 * hidden], vec![0.0; 3 * hidden])
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One timestep: `x` is `I x batch`, `h` is `H x batch`.
    pub fn step(&self, gpu: &Gpu, x: &Matrix<f32>, h: &Matrix<f32>) -> GruStep {
        let batch = x.cols();
        assert_eq!(h.cols(), batch);
        assert_eq!(h.rows(), self.hidden);
        let cfg = SpmmConfig::heuristic::<f32>(batch);

        let mut gx = Matrix::<f32>::zeros(3 * self.hidden, batch);
        let s1 = {
            let kernel = SpmmKernel::new(&self.w_x, x, &mut gx, &self.swizzle_x, cfg);
            gpu.launch(&kernel)
        };
        let mut gh = Matrix::<f32>::zeros(3 * self.hidden, batch);
        let s2 = {
            let kernel = SpmmKernel::new(&self.w_h, h, &mut gh, &self.swizzle_h, cfg);
            gpu.launch(&kernel)
        };

        let mut h_out = Matrix::<f32>::zeros(self.hidden, batch);
        let s3 = {
            let kernel =
                GruElementwiseKernel::new(&gx, &gh, &self.bias_x, &self.bias_h, h, &mut h_out);
            gpu.launch(&kernel)
        };
        GruStep {
            h: h_out,
            input_matmul_us: s1.time_us,
            recurrent_matmul_us: s2.time_us,
            elementwise_us: s3.time_us,
        }
    }
}

pub const BUF_GX: BufferId = BufferId(0);
pub const BUF_GH: BufferId = BufferId(1);
pub const BUF_BIAS: BufferId = BufferId(2);
pub const BUF_H_IN: BufferId = BufferId(3);
pub const BUF_H_OUT: BufferId = BufferId(4);

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The fused GRU pointwise kernel. Note the GRU subtlety: the reset gate
/// multiplies the *recurrent* candidate pre-activation, so the two matmul
/// outputs must stay separate until this kernel (unlike the LSTM, where they
/// can be summed eagerly).
pub struct GruElementwiseKernel<'a> {
    gx: &'a Matrix<f32>,
    gh: &'a Matrix<f32>,
    bias_x: &'a [f32],
    bias_h: &'a [f32],
    h_in: &'a Matrix<f32>,
    h_out: SyncUnsafeSlice<'a, f32>,
    hidden: usize,
    batch: usize,
}

impl<'a> GruElementwiseKernel<'a> {
    pub fn new(
        gx: &'a Matrix<f32>,
        gh: &'a Matrix<f32>,
        bias_x: &'a [f32],
        bias_h: &'a [f32],
        h_in: &'a Matrix<f32>,
        h_out: &'a mut Matrix<f32>,
    ) -> Self {
        let hidden = h_in.rows();
        let batch = h_in.cols();
        assert_eq!(gx.rows(), 3 * hidden);
        assert_eq!(gh.rows(), 3 * hidden);
        assert_eq!((gx.cols(), gh.cols()), (batch, batch));
        assert_eq!((h_out.rows(), h_out.cols()), (hidden, batch));
        Self {
            gx,
            gh,
            bias_x,
            bias_h,
            h_in,
            h_out: SyncUnsafeSlice::new(h_out.as_mut_slice()),
            hidden,
            batch,
        }
    }
}

impl Kernel for GruElementwiseKernel<'_> {
    fn name(&self) -> String {
        "gru_elementwise".to_string()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(((self.hidden * self.batch) as u32).div_ceil(256))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let hb = (self.hidden * self.batch * 4) as u64;
        vec![
            BufferSpec {
                id: BUF_GX,
                name: "gates_x",
                footprint_bytes: 3 * hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_GH,
                name: "gates_h",
                footprint_bytes: 3 * hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_BIAS,
                name: "biases",
                footprint_bytes: (6 * self.hidden * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_H_IN,
                name: "h_in",
                footprint_bytes: hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_H_OUT,
                name: "h_out",
                footprint_bytes: hb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let start = block.x as usize * 256;
        let total = self.hidden * self.batch;
        let count = 256.min(total - start);
        if count == 0 {
            return;
        }
        let warps = (count as u64).div_ceil(32);
        for gate in 0..3u64 {
            for buf in [BUF_GX, BUF_GH] {
                ctx.cost.ld_global_instrs += warps;
                ctx.cost.gmem[buf.0 as usize].ld_sectors += gpu_sim::memory::sectors_contiguous(
                    (gate * total as u64 + start as u64) * 4,
                    count as u64 * 4,
                );
            }
        }
        ctx.ld_global(BUF_BIAS, 0, warps as u32, 1, 4);
        ctx.cost.ld_global_instrs += warps;
        ctx.cost.gmem[BUF_H_IN.0 as usize].ld_sectors +=
            gpu_sim::memory::sectors_contiguous(start as u64 * 4, count as u64 * 4);
        ctx.fp(20 * warps, 20 * count as u64);
        ctx.misc(8 * warps);
        ctx.cost.st_global_instrs += warps;
        ctx.cost.gmem[BUF_H_OUT.0 as usize].st_sectors +=
            gpu_sim::memory::sectors_contiguous(start as u64 * 4, count as u64 * 4);
        ctx.cost.flops += 20 * count as u64;

        if ctx.functional() {
            let b = self.batch;
            for idx in start..start + count {
                let (row, col) = (idx / b, idx % b);
                let gx = |k: usize| {
                    self.gx.get(k * self.hidden + row, col) + self.bias_x[k * self.hidden + row]
                };
                let gh = |k: usize| {
                    self.gh.get(k * self.hidden + row, col) + self.bias_h[k * self.hidden + row]
                };
                let r = sigmoid(gx(0) + gh(0));
                let z = sigmoid(gx(1) + gh(1));
                let n = (gx(2) + r * gh(2)).tanh();
                let h_prev = self.h_in.get(row, col);
                unsafe { self.h_out.write(idx, (1.0 - z) * n + z * h_prev) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_step(cell: &SparseGruCell, x: &Matrix<f32>, h: &Matrix<f32>) -> Matrix<f32> {
        let gx = sputnik::reference::spmm(&cell.w_x, x);
        let gh = sputnik::reference::spmm(&cell.w_h, h);
        let hidden = cell.hidden;
        let mut out = Matrix::zeros(hidden, h.cols());
        for row in 0..hidden {
            for col in 0..h.cols() {
                let gxi = |k: usize| gx.get(k * hidden + row, col) + cell.bias_x[k * hidden + row];
                let ghi = |k: usize| gh.get(k * hidden + row, col) + cell.bias_h[k * hidden + row];
                let r = sigmoid(gxi(0) + ghi(0));
                let z = sigmoid(gxi(1) + ghi(1));
                let n = (gxi(2) + r * ghi(2)).tanh();
                out.set(row, col, (1.0 - z) * n + z * h.get(row, col));
            }
        }
        out
    }

    #[test]
    fn step_matches_reference() {
        let cell = SparseGruCell::random(20, 12, 0.7, 611);
        let gpu = Gpu::v100();
        let x = Matrix::<f32>::random(20, 6, 612);
        let h = Matrix::<f32>::random(12, 6, 613);
        let step = cell.step(&gpu, &x, &h);
        let expect = reference_step(&cell, &x, &h);
        assert!(step.h.max_abs_diff(&expect) < 1e-3);
        assert!(step.total_us() > 0.0);
    }

    #[test]
    fn interpolation_gate_bounds_state() {
        // h' interpolates between h and tanh(...) in [-1,1]: once |h| <= 1 it
        // stays there.
        let cell = SparseGruCell::random(8, 8, 0.5, 614);
        let gpu = Gpu::v100();
        let x = Matrix::<f32>::random(8, 3, 615);
        let mut h = Matrix::<f32>::zeros(8, 3);
        for _ in 0..6 {
            h = cell.step(&gpu, &x, &h).h;
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        }
    }

    #[test]
    fn gru_matmul_is_three_quarters_of_lstm() {
        // M = 3H vs 4H: the recurrent matmul cost ratio tracks the gates.
        let gpu = Gpu::v100();
        let gru = SparseGruCell::random(256, 512, 0.9, 616);
        let lstm = crate::lstm::SparseLstmCell::random(256, 512, 0.9, 616);
        let x = Matrix::<f32>::random(256, 32, 617);
        let h = Matrix::<f32>::zeros(512, 32);
        let c = Matrix::<f32>::zeros(512, 32);
        let g = gru.step(&gpu, &x, &h);
        let l = lstm.step(&gpu, &x, &h, &c);
        let ratio = g.recurrent_matmul_us / l.recurrent_matmul_us;
        assert!(
            (0.55..0.95).contains(&ratio),
            "expected ~0.75, got {ratio:.2}"
        );
    }
}
