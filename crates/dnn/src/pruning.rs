//! Magnitude pruning (Zhu & Gupta, "To Prune or Not to Prune"), the
//! sparsification algorithm the paper uses for its MobileNetV1 experiments
//! ("we introduce sparsity into the 1x1 convolutions of MobileNetV1 using
//! magnitude pruning. We prune all models to 90% sparsity").

use sparse::{CsrMatrix, Matrix};

/// Prune a dense weight matrix to `sparsity` by zeroing the
/// smallest-magnitude entries. Returns the sparse weights in CSR form.
pub fn magnitude_prune(weights: &Matrix<f32>, sparsity: f64) -> CsrMatrix<f32> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let total = weights.rows() * weights.cols();
    let keep = total - ((total as f64) * sparsity).round() as usize;
    if keep == 0 {
        return CsrMatrix::empty(weights.rows(), weights.cols());
    }
    // Threshold = keep-th largest magnitude via select_nth.
    let mut mags: Vec<f32> = weights.as_slice().iter().map(|v| v.abs()).collect();
    let idx = total - keep;
    mags.select_nth_unstable_by(idx, f32::total_cmp);
    let threshold = mags[idx];

    // Keep strictly-above first, then fill ties deterministically (row-major
    // order) to land exactly on `keep` survivors.
    let strictly_above = weights
        .as_slice()
        .iter()
        .filter(|v| v.abs() > threshold)
        .count();
    let mut pruned = Matrix::<f32>::zeros(weights.rows(), weights.cols());
    let mut tie_budget = keep.saturating_sub(strictly_above);
    for r in 0..weights.rows() {
        for c in 0..weights.cols() {
            let v = weights.get(r, c);
            if v.abs() > threshold {
                pruned.set(r, c, v);
            } else if v.abs() == threshold && v != 0.0 && tie_budget > 0 {
                pruned.set(r, c, v);
                tie_budget -= 1;
            }
        }
    }
    CsrMatrix::from_dense(&pruned)
}

/// Threshold *activations* in place: every entry with `|v| <= tau` becomes
/// an exact `+0.0` (bit pattern zero). Returns the realized zero fraction.
///
/// This is the inference-time analogue of magnitude pruning: ReLU networks
/// already emit exact zeros, and thresholding extends the dead region to
/// near-zero activations. Writing `+0.0` specifically (never `-0.0`) is
/// what makes the result eligible for [`sparse::PatternLut`] dead-tile
/// detection — the joint-sparsity kernel's skip proof only covers bits that
/// are exactly zero, so a sloppy `-0.0` here would silently disable skips
/// for its whole tile.
pub fn threshold_activations(x: &mut Matrix<f32>, tau: f32) -> f64 {
    assert!(tau >= 0.0, "threshold must be non-negative");
    let mut zeros = 0usize;
    let total = x.as_slice().len();
    for v in x.as_mut_slice() {
        if v.abs() <= tau {
            *v = 0.0;
        }
        if v.to_bits() == 0 {
            zeros += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

/// Gradual pruning schedule from Zhu & Gupta: the sparsity at training step
/// `t` ramps cubically from `initial` to `final_sparsity` between steps
/// `begin` and `end`. The paper trains its sparse models 10x longer "which
/// helps the sparse models converge while being pruned".
pub fn gradual_sparsity(t: u64, begin: u64, end: u64, initial: f64, final_sparsity: f64) -> f64 {
    if t <= begin {
        return initial;
    }
    if t >= end {
        return final_sparsity;
    }
    let frac = 1.0 - (t - begin) as f64 / (end - begin) as f64;
    final_sparsity + (initial - final_sparsity) * frac * frac * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_to_exact_sparsity() {
        let w = Matrix::<f32>::random(64, 64, 5);
        let p = magnitude_prune(&w, 0.9);
        let expect = 64 * 64 / 10;
        assert!(
            (p.nnz() as i64 - expect as i64).abs() <= 1,
            "nnz {}",
            p.nnz()
        );
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let w = Matrix::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32 - 8.0);
        let p = magnitude_prune(&w, 0.5);
        // Survivors are the 8 largest |values|: -8..-5 and 4..7.
        for (_, _, v) in p.iter() {
            assert!(v.abs() >= 4.0, "kept small value {v}");
        }
        assert_eq!(p.nnz(), 8);
    }

    #[test]
    fn zero_sparsity_keeps_everything_nonzero() {
        let w = Matrix::<f32>::random(16, 16, 6);
        let p = magnitude_prune(&w, 0.0);
        assert_eq!(p.nnz(), 256);
        assert_eq!(p.to_dense(), w);
    }

    #[test]
    fn full_sparsity_keeps_nothing() {
        let w = Matrix::<f32>::random(8, 8, 7);
        assert_eq!(magnitude_prune(&w, 1.0).nnz(), 0);
    }

    #[test]
    fn thresholding_writes_exact_positive_zeros() {
        let mut x = Matrix::<f32>::from_fn(8, 8, |r, c| {
            let v = (r as f32 - 4.0) * 0.1 + c as f32 * 0.01;
            if (r + c) % 2 == 0 {
                -v
            } else {
                v
            }
        });
        let frac = threshold_activations(&mut x, 0.15);
        assert!(frac > 0.0 && frac < 1.0, "realized fraction {frac}");
        let mut zeros = 0;
        for v in x.as_slice() {
            if *v == 0.0 {
                assert_eq!(v.to_bits(), 0, "thresholded zero must be +0.0");
                zeros += 1;
            } else {
                assert!(v.abs() > 0.15, "survivor {v} under threshold");
            }
        }
        assert_eq!(zeros as f64 / 64.0, frac);
        // Idempotent: a second pass changes nothing.
        assert_eq!(threshold_activations(&mut x, 0.15), frac);
    }

    #[test]
    fn gradual_schedule_ramps_cubically() {
        assert_eq!(gradual_sparsity(0, 100, 1100, 0.0, 0.9), 0.0);
        assert_eq!(gradual_sparsity(2000, 100, 1100, 0.0, 0.9), 0.9);
        let mid = gradual_sparsity(600, 100, 1100, 0.0, 0.9);
        assert!(
            mid > 0.7 && mid < 0.9,
            "cubic ramp is front-loaded, got {mid}"
        );
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for t in (0..1200).step_by(50) {
            let s = gradual_sparsity(t, 100, 1100, 0.0, 0.9);
            assert!(s >= prev);
            prev = s;
        }
    }
}
