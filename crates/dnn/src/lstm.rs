//! A weight-sparse LSTM cell, end to end.
//!
//! The Figure 1 / Figure 10 benchmarks time the recurrent SpMM in
//! isolation; this module runs the *whole* cell functionally on the
//! simulator — input and recurrent sparse matmuls, then a fused elementwise
//! kernel for the gate nonlinearities and state update:
//!
//! ```text
//! [i f g o] = W_x x + W_h h + b          (two SpMMs, M = 4H)
//! c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
//! h' = sigmoid(o) * tanh(c')
//! ```

use gpu_sim::{
    AccessPattern, BlockContext, BufferId, BufferSpec, Dim3, Gpu, Kernel, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle};
use sputnik::{SpmmConfig, SpmmKernel};

/// A sparse LSTM cell: both weight matrices pruned, biases dense.
pub struct SparseLstmCell {
    /// Input weights, `4H x I`.
    w_x: CsrMatrix<f32>,
    /// Recurrent weights, `4H x H` — the matrix the paper's benchmarks use.
    w_h: CsrMatrix<f32>,
    bias: Vec<f32>,
    swizzle_x: RowSwizzle,
    swizzle_h: RowSwizzle,
    hidden: usize,
}

/// One step's outputs plus the simulated time of its three kernels.
pub struct LstmStep {
    pub h: Matrix<f32>,
    pub c: Matrix<f32>,
    pub input_matmul_us: f64,
    pub recurrent_matmul_us: f64,
    pub elementwise_us: f64,
}

impl LstmStep {
    pub fn total_us(&self) -> f64 {
        self.input_matmul_us + self.recurrent_matmul_us + self.elementwise_us
    }
}

impl SparseLstmCell {
    pub fn new(w_x: CsrMatrix<f32>, w_h: CsrMatrix<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(w_x.rows(), w_h.rows(), "gate counts must agree");
        assert_eq!(w_x.rows() % 4, 0, "LSTM needs 4 gates");
        let hidden = w_x.rows() / 4;
        assert_eq!(w_h.cols(), hidden, "recurrent weights are 4H x H");
        assert_eq!(bias.len(), 4 * hidden);
        let swizzle_x = RowSwizzle::by_length_desc(&w_x);
        let swizzle_h = RowSwizzle::by_length_desc(&w_h);
        Self {
            w_x,
            w_h,
            bias,
            swizzle_x,
            swizzle_h,
            hidden,
        }
    }

    /// Generate a random cell at the given sparsity (for benchmarks).
    pub fn random(input: usize, hidden: usize, sparsity: f64, seed: u64) -> Self {
        let w_x = sparse::gen::uniform(4 * hidden, input, sparsity, seed);
        let w_h = sparse::gen::uniform(4 * hidden, hidden, sparsity, seed ^ 0x15);
        let bias = vec![0.0f32; 4 * hidden];
        Self::new(w_x, w_h, bias)
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One timestep: `x` is `I x batch`, `h`/`c` are `H x batch`.
    pub fn step(&self, gpu: &Gpu, x: &Matrix<f32>, h: &Matrix<f32>, c: &Matrix<f32>) -> LstmStep {
        let batch = x.cols();
        assert_eq!(h.cols(), batch);
        assert_eq!(c.cols(), batch);
        assert_eq!(h.rows(), self.hidden);

        // The whole step is one span on the device track: two SpMMs plus the
        // fused elementwise kernel. Capture the flag once so the span is
        // closed iff it was opened.
        let traced = gpu_sim::trace::enabled();
        if traced {
            gpu_sim::trace::begin_span(
                "layer",
                &gpu.device().name,
                &format!("lstm_step h={} b={batch}", self.hidden),
            );
        }

        // Gates from the input path.
        let cfg = SpmmConfig::heuristic::<f32>(batch);
        let mut gates = Matrix::<f32>::zeros(4 * self.hidden, batch);
        let s1 = {
            let kernel = SpmmKernel::new(&self.w_x, x, &mut gates, &self.swizzle_x, cfg);
            gpu.launch(&kernel)
        };
        // Recurrent path into a second buffer (real frameworks fuse the
        // accumulation; we add on the host and charge the elementwise kernel
        // for the extra read).
        let mut gates_h = Matrix::<f32>::zeros(4 * self.hidden, batch);
        let s2 = {
            let kernel = SpmmKernel::new(&self.w_h, h, &mut gates_h, &self.swizzle_h, cfg);
            gpu.launch(&kernel)
        };
        for (g, gh) in gates.as_mut_slice().iter_mut().zip(gates_h.as_slice()) {
            *g += gh;
        }

        // Fused gate nonlinearities + state update.
        let mut h_out = Matrix::<f32>::zeros(self.hidden, batch);
        let mut c_out = Matrix::<f32>::zeros(self.hidden, batch);
        let s3 = {
            let kernel = LstmElementwiseKernel::new(&gates, &self.bias, c, &mut h_out, &mut c_out);
            gpu.launch(&kernel)
        };

        if traced {
            gpu_sim::trace::end_span(&gpu.device().name);
        }
        LstmStep {
            h: h_out,
            c: c_out,
            input_matmul_us: s1.time_us,
            recurrent_matmul_us: s2.time_us,
            elementwise_us: s3.time_us,
        }
    }
}

pub const BUF_GATES: BufferId = BufferId(0);
pub const BUF_BIAS: BufferId = BufferId(1);
pub const BUF_C_IN: BufferId = BufferId(2);
pub const BUF_H_OUT: BufferId = BufferId(3);
pub const BUF_C_OUT: BufferId = BufferId(4);

/// The fused LSTM pointwise kernel: reads the summed pre-activations
/// (4H x batch), the bias, and the previous cell state; writes h' and c'.
pub struct LstmElementwiseKernel<'a> {
    gates: &'a Matrix<f32>,
    bias: &'a [f32],
    c_in: &'a Matrix<f32>,
    h_out: SyncUnsafeSlice<'a, f32>,
    c_out: SyncUnsafeSlice<'a, f32>,
    hidden: usize,
    batch: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl<'a> LstmElementwiseKernel<'a> {
    pub fn new(
        gates: &'a Matrix<f32>,
        bias: &'a [f32],
        c_in: &'a Matrix<f32>,
        h_out: &'a mut Matrix<f32>,
        c_out: &'a mut Matrix<f32>,
    ) -> Self {
        let hidden = c_in.rows();
        let batch = c_in.cols();
        assert_eq!(gates.rows(), 4 * hidden);
        assert_eq!(gates.cols(), batch);
        assert_eq!(bias.len(), 4 * hidden);
        assert_eq!((h_out.rows(), h_out.cols()), (hidden, batch));
        assert_eq!((c_out.rows(), c_out.cols()), (hidden, batch));
        Self {
            gates,
            bias,
            c_in,
            h_out: SyncUnsafeSlice::new(h_out.as_mut_slice()),
            c_out: SyncUnsafeSlice::new(c_out.as_mut_slice()),
            hidden,
            batch,
        }
    }
}

impl Kernel for LstmElementwiseKernel<'_> {
    fn name(&self) -> String {
        "lstm_elementwise".to_string()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(((self.hidden * self.batch) as u32).div_ceil(256))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let hb = (self.hidden * self.batch * 4) as u64;
        vec![
            BufferSpec {
                id: BUF_GATES,
                name: "gates",
                footprint_bytes: 4 * hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_BIAS,
                name: "bias",
                footprint_bytes: (4 * self.hidden * 4) as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C_IN,
                name: "c_in",
                footprint_bytes: hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_H_OUT,
                name: "h_out",
                footprint_bytes: hb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_C_OUT,
                name: "c_out",
                footprint_bytes: hb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let start = block.x as usize * 256;
        let total = self.hidden * self.batch;
        let count = 256.min(total - start);
        if count == 0 {
            return;
        }
        let warps = (count as u64).div_ceil(32);
        // Four strided gate reads (one per gate region), bias, c_in.
        for gate in 0..4u64 {
            ctx.cost.ld_global_instrs += warps;
            ctx.cost.gmem[BUF_GATES.0 as usize].ld_sectors += gpu_sim::memory::sectors_contiguous(
                (gate * total as u64 + start as u64) * 4,
                count as u64 * 4,
            );
        }
        ctx.ld_global(BUF_BIAS, 0, warps as u32, 1, 4);
        ctx.cost.ld_global_instrs += warps;
        ctx.cost.gmem[BUF_C_IN.0 as usize].ld_sectors +=
            gpu_sim::memory::sectors_contiguous(start as u64 * 4, count as u64 * 4);
        // sigmoid x3 + tanh x2 + FMAs: ~24 flops/element through the MUFU.
        ctx.fp(24 * warps, 24 * count as u64);
        ctx.misc(8 * warps);
        ctx.cost.st_global_instrs += 2 * warps;
        ctx.cost.gmem[BUF_H_OUT.0 as usize].st_sectors +=
            gpu_sim::memory::sectors_contiguous(start as u64 * 4, count as u64 * 4);
        ctx.cost.gmem[BUF_C_OUT.0 as usize].st_sectors +=
            gpu_sim::memory::sectors_contiguous(start as u64 * 4, count as u64 * 4);
        ctx.cost.flops += 24 * count as u64;

        if ctx.functional() {
            let g = self.gates.as_slice();
            let c_in = self.c_in.as_slice();
            let b = self.batch;
            for (idx, &c_prev) in c_in.iter().enumerate().take(start + count).skip(start) {
                let (row, col) = (idx / b, idx % b);
                let gate = |k: usize| {
                    g[(k * self.hidden + row) * b + col] + self.bias[k * self.hidden + row]
                };
                let i = sigmoid(gate(0));
                let f = sigmoid(gate(1));
                let gg = gate(2).tanh();
                let o = sigmoid(gate(3));
                let c_new = f * c_prev + i * gg;
                unsafe {
                    self.c_out.write(idx, c_new);
                    self.h_out.write(idx, o * c_new.tanh());
                }
            }
        }
    }
}

/// Run the cell over a `T`-step input sequence (cost-model-friendly: the
/// per-step kernels are identical, so the first step is simulated and the
/// rest reuse its cost; the sequence-level serialization — each step depends
/// on the previous hidden state — means no cross-step overlap beyond launch
/// pipelining).
pub struct SequenceRun {
    pub final_h: Matrix<f32>,
    pub final_c: Matrix<f32>,
    pub steps: usize,
    pub total_us: f64,
    pub per_step_us: f64,
}

impl SparseLstmCell {
    /// Functionally run `xs` (each `I x batch`) through the cell.
    pub fn run_sequence(&self, gpu: &Gpu, xs: &[Matrix<f32>]) -> SequenceRun {
        assert!(!xs.is_empty());
        let batch = xs[0].cols();
        let mut h = Matrix::<f32>::zeros(self.hidden, batch);
        let mut c = Matrix::<f32>::zeros(self.hidden, batch);
        let mut total_us = 0.0;
        let overhead = gpu.device().launch_overhead_us;
        for (i, x) in xs.iter().enumerate() {
            let step = self.step(gpu, x, &h, &c);
            // Within a step the three kernels pipeline their launches; across
            // steps the dependency chain allows the same overlap.
            let pipelined =
                step.total_us() - 2.0 * overhead * 0.7 - if i > 0 { overhead * 0.7 } else { 0.0 };
            total_us += pipelined.max(overhead);
            h = step.h;
            c = step.c;
        }
        SequenceRun {
            final_h: h,
            final_c: c,
            steps: xs.len(),
            total_us,
            per_step_us: total_us / xs.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host reference for one LSTM step.
    fn reference_step(
        cell_wx: &CsrMatrix<f32>,
        cell_wh: &CsrMatrix<f32>,
        bias: &[f32],
        x: &Matrix<f32>,
        h: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> (Matrix<f32>, Matrix<f32>) {
        let gx = sputnik::reference::spmm(cell_wx, x);
        let gh = sputnik::reference::spmm(cell_wh, h);
        let hidden = h.rows();
        let batch = h.cols();
        let mut h_out = Matrix::zeros(hidden, batch);
        let mut c_out = Matrix::zeros(hidden, batch);
        for r in 0..hidden {
            for col in 0..batch {
                let gate = |k: usize| {
                    gx.get(k * hidden + r, col) + gh.get(k * hidden + r, col) + bias[k * hidden + r]
                };
                let i = sigmoid(gate(0));
                let f = sigmoid(gate(1));
                let g = gate(2).tanh();
                let o = sigmoid(gate(3));
                let cn = f * c.get(r, col) + i * g;
                c_out.set(r, col, cn);
                h_out.set(r, col, o * cn.tanh());
            }
        }
        (h_out, c_out)
    }

    #[test]
    fn step_matches_reference() {
        let cell = SparseLstmCell::random(24, 16, 0.7, 601);
        let gpu = Gpu::v100();
        let x = Matrix::<f32>::random(24, 8, 602);
        let h = Matrix::<f32>::random(16, 8, 603);
        let c = Matrix::<f32>::random(16, 8, 604);
        let step = cell.step(&gpu, &x, &h, &c);
        let (h_ref, c_ref) = reference_step(&cell.w_x, &cell.w_h, &cell.bias, &x, &h, &c);
        assert!(step.h.max_abs_diff(&h_ref) < 1e-3);
        assert!(step.c.max_abs_diff(&c_ref) < 1e-3);
        assert!(step.total_us() > 0.0);
    }

    #[test]
    fn states_stay_bounded_over_many_steps() {
        // tanh/sigmoid keep |h| <= 1 regardless of weights — a stability
        // invariant any correct cell satisfies.
        let cell = SparseLstmCell::random(16, 16, 0.8, 605);
        let gpu = Gpu::v100();
        let x = Matrix::<f32>::random(16, 4, 606);
        let mut h = Matrix::<f32>::zeros(16, 4);
        let mut c = Matrix::<f32>::zeros(16, 4);
        for _ in 0..8 {
            let step = cell.step(&gpu, &x, &h, &c);
            h = step.h;
            c = step.c;
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        }
    }

    #[test]
    fn sequence_run_matches_stepping_manually() {
        let cell = SparseLstmCell::random(12, 10, 0.6, 609);
        let gpu = Gpu::v100();
        let xs: Vec<Matrix<f32>> = (0..4).map(|i| Matrix::random(12, 3, 620 + i)).collect();
        let run = cell.run_sequence(&gpu, &xs);

        let mut h = Matrix::<f32>::zeros(10, 3);
        let mut c = Matrix::<f32>::zeros(10, 3);
        for x in &xs {
            let s = cell.step(&gpu, x, &h, &c);
            h = s.h;
            c = s.c;
        }
        assert!(run.final_h.max_abs_diff(&h) < 1e-6);
        assert!(run.final_c.max_abs_diff(&c) < 1e-6);
        assert_eq!(run.steps, 4);
        // Launch pipelining makes the sequence cheaper than naive stepping.
        let naive: f64 = 4.0 * cell.step(&gpu, &xs[0], &h, &c).total_us();
        assert!(run.total_us < naive);
    }

    #[test]
    fn recurrent_matmul_dominates_at_large_hidden() {
        // The Figure 1 premise: the recurrent SpMM is the cell's hot spot.
        let cell = SparseLstmCell::random(256, 512, 0.9, 607);
        let gpu = Gpu::v100();
        let x = Matrix::<f32>::random(256, 32, 608);
        let h = Matrix::<f32>::zeros(512, 32);
        let c = Matrix::<f32>::zeros(512, 32);
        let step = cell.step(&gpu, &x, &h, &c);
        assert!(
            step.recurrent_matmul_us > step.elementwise_us,
            "recurrent {} vs elementwise {}",
            step.recurrent_matmul_us,
            step.elementwise_us
        );
    }
}
