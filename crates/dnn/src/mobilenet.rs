//! Sparse MobileNetV1 (Section VII-D, Table IV, Figure 12).
//!
//! MobileNetV1 alternates depthwise and 1x1 ("pointwise") convolutions; the
//! pointwise convolutions carry the large majority of the FLOPs and, in CHW
//! layout, are plain matrix multiplications. The paper prunes them to 90%
//! with magnitude pruning, leaves the first full convolution dense, fuses
//! batch-norm + bias + ReLU everywhere, and benchmarks single-image
//! inference on a V100 — with an oracle kernel selector for the handful of
//! layers where the heuristic picks a sub-optimal variant.

use gpu_sim::Gpu;
use serde::{Deserialize, Serialize};
use sparse::{gen, CsrMatrix, IndexWidth};
use sputnik::SpmmConfig;

/// One depthwise-separable block of the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub in_channels: usize,
    pub out_channels: usize,
    /// Stride of the depthwise stage.
    pub stride: usize,
    /// Input spatial size (square).
    pub spatial: usize,
}

/// The MobileNetV1 architecture at a given width multiplier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobileNetV1 {
    pub width: f64,
    /// First full 3x3 convolution: 3 -> c(32), stride 2, on 224x224 input.
    pub stem_out: usize,
    pub blocks: Vec<Block>,
    pub classifier_in: usize,
    pub num_classes: usize,
}

/// Round channels to the hardware-friendly multiple of 8, as the MobileNet
/// family does.
fn scale_channels(base: usize, width: f64) -> usize {
    (((base as f64 * width) / 8.0).round() as usize * 8).max(8)
}

impl MobileNetV1 {
    /// Build the 13-block architecture at width multiplier `width`.
    pub fn new(width: f64) -> Self {
        let c = |base: usize| scale_channels(base, width);
        // (in, out, stride, spatial) per depthwise-separable block.
        let raw: [(usize, usize, usize, usize); 13] = [
            (32, 64, 1, 112),
            (64, 128, 2, 112),
            (128, 128, 1, 56),
            (128, 256, 2, 56),
            (256, 256, 1, 28),
            (256, 512, 2, 28),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 1024, 2, 14),
            (1024, 1024, 1, 7),
        ];
        let blocks = raw
            .iter()
            .map(|&(i, o, s, sp)| Block {
                in_channels: c(i),
                out_channels: c(o),
                stride: s,
                spatial: sp,
            })
            .collect();
        Self {
            width,
            stem_out: c(32),
            blocks,
            classifier_in: c(1024),
            num_classes: 1000,
        }
    }

    /// Total multiply-accumulate count for one image (diagnostic).
    pub fn macs(&self) -> u64 {
        let mut macs = 112u64 * 112 * 27 * self.stem_out as u64;
        for b in &self.blocks {
            let out_sp = (b.spatial / b.stride) as u64;
            macs += out_sp * out_sp * 9 * b.in_channels as u64; // depthwise
            macs += out_sp * out_sp * (b.in_channels * b.out_channels) as u64; // pointwise
        }
        macs + (self.classifier_in * self.num_classes) as u64
    }
}

/// Per-layer timing of one inference pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MobileNetBench {
    pub width: f64,
    pub sparse: bool,
    pub inference_us: f64,
    pub frames_per_second: f64,
    pub stem_us: f64,
    pub depthwise_us: f64,
    pub pointwise_us: f64,
    pub classifier_us: f64,
    pub weight_bytes: u64,
    /// Layers where the oracle selector overrode the heuristic.
    pub oracle_overrides: usize,
}

/// Candidate SpMM configurations the oracle selector tries (the heuristic's
/// pick plus neighbouring tile shapes).
fn oracle_candidates(n: usize) -> Vec<SpmmConfig> {
    let base = SpmmConfig::heuristic::<f32>(n);
    let mut cands = vec![base];
    for biy in [1u32, 2, 8] {
        cands.push(SpmmConfig {
            block_items_y: biy,
            ..base
        });
    }
    if base.vector_width > 1 {
        cands.push(SpmmConfig {
            vector_width: base.vector_width / 2,
            ..base
        });
    }
    for bix in [32u32, 64] {
        if bix != base.block_items_x && bix % base.vector_width == 0 {
            let cand = SpmmConfig {
                block_items_x: bix,
                ..base
            };
            if cand.threads_x() <= 32 {
                cands.push(cand);
            }
        }
    }
    cands
}

/// Benchmark one inference (batch 1, 224x224, cost model). `sparsity` of
/// `None` benchmarks the dense baseline (cuBLAS GEMM + separate fused
/// bias/ReLU kernel); `Some(s)` prunes every pointwise convolution to `s`
/// and uses the Sputnik SpMM with fused epilogue.
pub fn benchmark(
    gpu: &Gpu,
    model: &MobileNetV1,
    sparsity: Option<f64>,
    oracle: bool,
) -> MobileNetBench {
    let mut bench = MobileNetBench {
        width: model.width,
        sparse: sparsity.is_some(),
        ..Default::default()
    };
    // Layer spans live on the device track so a profile report can break the
    // run down per layer. Capture the flag once so every begin has its end.
    let traced = gpu_sim::trace::enabled();
    let track = &gpu.device().name;

    // Stem: dense 3x3 conv via im2col GEMM (27 input features), 112x112
    // output, plus its fused bias/ReLU pass. Kept dense in the sparse models
    // ("we leave the first layer dense, as we found it to be bandwidth bound
    // by the activation matrix").
    if traced {
        gpu_sim::trace::begin_span("layer", track, "stem");
    }
    let stem_n = 112 * 112;
    bench.stem_us = baselines::gemm_profile(gpu, model.stem_out, 27, pad4(stem_n)).time_us
        + crate::layers::bias_relu_profile(gpu, model.stem_out, stem_n).time_us;
    bench.weight_bytes += (model.stem_out * 27 * 4) as u64;
    if traced {
        gpu_sim::trace::end_span(track);
    }

    for (li, b) in model.blocks.iter().enumerate() {
        if traced {
            gpu_sim::trace::begin_span(
                "layer",
                track,
                &format!("block{li} ({}->{})", b.in_channels, b.out_channels),
            );
        }
        let out_sp = b.spatial / b.stride;
        let n = out_sp * out_sp;
        // Depthwise 3x3 with fused bias + ReLU.
        bench.depthwise_us += crate::layers::depthwise_conv_profile(
            gpu,
            b.in_channels,
            b.spatial,
            b.spatial,
            b.stride,
        )
        .time_us;
        bench.weight_bytes += (b.in_channels * 9 * 4) as u64;

        // Pointwise 1x1: the sparse/dense fork.
        match sparsity {
            None => {
                bench.pointwise_us +=
                    baselines::gemm_profile(gpu, b.out_channels, b.in_channels, pad4(n)).time_us
                        + crate::layers::bias_relu_profile(gpu, b.out_channels, n).time_us;
                bench.weight_bytes += (b.out_channels * b.in_channels * 4) as u64;
            }
            Some(s) => {
                let w = gen::uniform(b.out_channels, b.in_channels, s, 0xb10c + li as u64);
                let n_padded = pad4(n);
                let mut cfg = SpmmConfig::heuristic::<f32>(n_padded);
                cfg.fused_bias_relu = true;
                let mut t =
                    sputnik::spmm_profile::<f32>(gpu, &w, b.in_channels, n_padded, cfg).time_us;
                if oracle {
                    let mut best = t;
                    for mut cand in oracle_candidates(n_padded) {
                        cand.fused_bias_relu = true;
                        let ct =
                            sputnik::spmm_profile::<f32>(gpu, &w, b.in_channels, n_padded, cand)
                                .time_us;
                        if ct < best {
                            best = ct;
                        }
                    }
                    if best < t {
                        bench.oracle_overrides += 1;
                        t = best;
                    }
                }
                bench.pointwise_us += t;
                bench.weight_bytes += w.bytes(IndexWidth::U32);
            }
        }
        if traced {
            gpu_sim::trace::end_span(track);
        }
    }

    // Global average pool is negligible; classifier stays dense.
    if traced {
        gpu_sim::trace::begin_span("layer", track, "classifier");
    }
    bench.classifier_us =
        baselines::gemm_profile(gpu, model.num_classes, model.classifier_in, 4).time_us;
    bench.weight_bytes += (model.num_classes * model.classifier_in * 4) as u64;
    if traced {
        gpu_sim::trace::end_span(track);
    }

    bench.inference_us =
        bench.stem_us + bench.depthwise_us + bench.pointwise_us + bench.classifier_us;
    bench.frames_per_second = 1e6 / bench.inference_us;
    bench
}

/// Pad the N dimension to a multiple of 4 ("for ResNet-50 benchmarks with
/// inference batch size, we pad the batch dimension to the nearest multiple
/// of four to enable vector memory instructions" — same trick here).
fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// Prune a functional MobileNet pointwise layer (utility for the examples).
pub fn prune_pointwise(weights: &sparse::Matrix<f32>, sparsity: f64) -> CsrMatrix<f32> {
    crate::pruning::magnitude_prune(weights, sparsity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_scaling_rounds_to_eight() {
        let m = MobileNetV1::new(1.4);
        assert_eq!(m.stem_out, 48); // 32 * 1.4 = 44.8 -> 48
        assert_eq!(m.blocks[0].out_channels % 8, 0);
        let m13 = MobileNetV1::new(1.3);
        assert!(m13.blocks.iter().all(|b| b.in_channels % 8 == 0));
    }

    #[test]
    fn macs_match_published_scale() {
        // MobileNetV1 1.0 is ~569M MACs.
        let m = MobileNetV1::new(1.0);
        let macs = m.macs() as f64 / 1e6;
        assert!((450.0..700.0).contains(&macs), "got {macs}M MACs");
    }

    #[test]
    fn sparse_inference_is_faster_at_matched_width() {
        let gpu = Gpu::v100();
        let model = MobileNetV1::new(1.0);
        let dense = benchmark(&gpu, &model, None, false);
        let sparse = benchmark(&gpu, &model, Some(0.9), false);
        assert!(
            sparse.pointwise_us < dense.pointwise_us,
            "90% sparse pointwise should beat dense: {} vs {}",
            sparse.pointwise_us,
            dense.pointwise_us
        );
        assert!(sparse.frames_per_second > dense.frames_per_second);
    }

    #[test]
    fn depthwise_become_bottleneck_after_pruning() {
        // Paper: "the depthwise convolutions become a significant bottleneck
        // after the 1x1 convolutions are pruned."
        let gpu = Gpu::v100();
        let model = MobileNetV1::new(1.0);
        let sparse = benchmark(&gpu, &model, Some(0.9), false);
        let dense = benchmark(&gpu, &model, None, false);
        let sparse_dw_share = sparse.depthwise_us / sparse.inference_us;
        let dense_dw_share = dense.depthwise_us / dense.inference_us;
        assert!(sparse_dw_share > dense_dw_share);
    }

    #[test]
    fn oracle_never_hurts() {
        let gpu = Gpu::v100();
        let model = MobileNetV1::new(1.4);
        let plain = benchmark(&gpu, &model, Some(0.9), false);
        let oracle = benchmark(&gpu, &model, Some(0.9), true);
        assert!(oracle.pointwise_us <= plain.pointwise_us + 1e-9);
    }

    #[test]
    fn wider_models_are_slower() {
        let gpu = Gpu::v100();
        let narrow = benchmark(&gpu, &MobileNetV1::new(1.0), Some(0.9), false);
        let wide = benchmark(&gpu, &MobileNetV1::new(1.8), Some(0.9), false);
        assert!(wide.inference_us > narrow.inference_us);
    }

    #[test]
    fn sparse_weights_are_smaller() {
        let gpu = Gpu::v100();
        let model = MobileNetV1::new(1.0);
        let dense = benchmark(&gpu, &model, None, false);
        let sparse = benchmark(&gpu, &model, Some(0.9), false);
        assert!(sparse.weight_bytes < dense.weight_bytes / 2);
    }
}
