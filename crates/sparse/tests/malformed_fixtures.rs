//! Corpus of malformed `.smtx` / `.mtx` fixtures: every one must come back
//! as the *right* typed error — and none may panic. The fixtures live in
//! `tests/fixtures/` so they are real files exercising the same read path
//! as production corpus loading.

// Test-only code: unwrap on fixture-file opens is the assertion we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sparse::csr::CsrError;
use sparse::io::{read_smtx, SmtxError};
use sparse::mtx::{read_mtx, MtxError};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn smtx(name: &str) -> Result<sparse::CsrMatrix<f32>, SmtxError> {
    read_smtx(BufReader::new(File::open(fixture(name)).unwrap()))
}

fn mtx(name: &str) -> Result<sparse::CsrMatrix<f32>, MtxError> {
    read_mtx(BufReader::new(File::open(fixture(name)).unwrap()))
}

#[test]
fn smtx_truncated_offsets_line() {
    assert!(matches!(
        smtx("truncated_offsets.smtx"),
        Err(SmtxError::Parse(_))
    ));
}

#[test]
fn smtx_truncated_indices_line() {
    let e = smtx("truncated_indices.smtx");
    assert!(matches!(e, Err(SmtxError::Parse(msg)) if msg.contains("truncated")));
}

#[test]
fn smtx_non_monotone_offsets() {
    assert!(matches!(
        smtx("nonmonotone_offsets.smtx"),
        Err(SmtxError::Invalid(CsrError::NonMonotoneOffsets { .. }))
    ));
}

#[test]
fn smtx_column_out_of_bounds() {
    assert!(matches!(
        smtx("column_out_of_bounds.smtx"),
        Err(SmtxError::Invalid(CsrError::ColumnOutOfBounds {
            col: 5,
            cols: 2,
            ..
        }))
    ));
}

#[test]
fn smtx_duplicate_entries_in_row() {
    // Duplicate columns violate the strictly-increasing invariant.
    assert!(matches!(
        smtx("duplicate_entries.smtx"),
        Err(SmtxError::Invalid(CsrError::UnsortedRow { row: 0 }))
    ));
}

#[test]
fn smtx_nnz_mismatch() {
    assert!(matches!(
        smtx("nnz_mismatch.smtx"),
        Err(SmtxError::Parse(_))
    ));
}

#[test]
fn smtx_bad_offset_length() {
    assert!(matches!(
        smtx("bad_offset_len.smtx"),
        Err(SmtxError::Invalid(CsrError::BadOffsetLen {
            expected: 3,
            got: 2
        }))
    ));
}

#[test]
fn smtx_garbage_nnz_token() {
    assert!(matches!(smtx("garbage_nnz.smtx"), Err(SmtxError::Parse(_))));
}

#[test]
fn mtx_missing_symmetry_token() {
    let e = mtx("missing_symmetry.mtx");
    assert!(matches!(e, Err(MtxError::Parse(msg)) if msg.contains("symmetry")));
}

#[test]
fn mtx_out_of_bounds_entry() {
    let e = mtx("out_of_bounds_entry.mtx");
    assert!(matches!(e, Err(MtxError::Parse(msg)) if msg.contains("bounds")));
}

#[test]
fn mtx_nnz_mismatch() {
    assert!(matches!(mtx("nnz_mismatch.mtx"), Err(MtxError::Parse(_))));
}

#[test]
fn mtx_short_entry_line() {
    let e = mtx("short_entry.mtx");
    assert!(matches!(e, Err(MtxError::Parse(msg)) if msg.contains("short entry")));
}

#[test]
fn mtx_unsupported_field() {
    assert!(matches!(
        mtx("unsupported_field.mtx"),
        Err(MtxError::Unsupported(_))
    ));
}

#[test]
fn mtx_zero_indexed_entry() {
    let e = mtx("zero_indexed_entry.mtx");
    assert!(matches!(e, Err(MtxError::Parse(msg)) if msg.contains("1-indexed")));
}

#[test]
fn mtx_unsupported_format() {
    assert!(matches!(
        mtx("unsupported_format.mtx"),
        Err(MtxError::Unsupported(_))
    ));
}

/// Sweep: every fixture in the corpus directory must parse to `Err`, never
/// panic, never silently succeed.
#[test]
fn every_fixture_errors_without_panicking() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        match path.extension().and_then(|e| e.to_str()) {
            Some("smtx") => {
                assert!(smtx(&name).is_err(), "{name} must be rejected");
                checked += 1;
            }
            Some("mtx") => {
                assert!(mtx(&name).is_err(), "{name} must be rejected");
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(
        checked >= 15,
        "fixture corpus went missing: only {checked} files checked"
    );
}
