//! Property-based tests for the tensor library's core invariants.

use proptest::prelude::*;
use sparse::{gen, stats, CsrMatrix, Half, Matrix, RowSwizzle};

/// Strategy: a small dense matrix with ~half the entries zeroed.
fn dense_matrix() -> impl Strategy<Value = Matrix<f32>> {
    (1usize..24, 1usize..24).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => Just(0.0f32), 2 => -100.0f32..100.0], r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR <-> dense is a lossless roundtrip for any matrix.
    #[test]
    fn csr_dense_roundtrip(m in dense_matrix()) {
        let csr = CsrMatrix::from_dense(&m);
        prop_assert_eq!(csr.to_dense(), m.clone());
        // Invariants of the extracted structure.
        prop_assert_eq!(csr.row_offsets().len(), m.rows() + 1);
        prop_assert!(csr.nnz() <= m.rows() * m.cols());
    }

    /// Transposing twice is the identity, and the cached permutation maps
    /// values exactly as a fresh transpose would.
    #[test]
    fn transpose_involution(m in dense_matrix()) {
        let csr = CsrMatrix::from_dense(&m);
        let t = csr.transpose();
        prop_assert_eq!(t.transpose(), csr.clone());
        let perm = csr.transpose_permutation();
        let permuted: Vec<f32> = perm.iter().map(|&p| csr.values()[p as usize]).collect();
        prop_assert_eq!(permuted, t.values().to_vec());
    }

    /// Sparsity + nnz are consistent; stats stay in their domains.
    #[test]
    fn stats_domains(m in dense_matrix()) {
        let csr = CsrMatrix::from_dense(&m);
        let s = stats::matrix_stats(&csr);
        prop_assert!((0.0..=1.0).contains(&s.sparsity));
        prop_assert!(s.avg_row_length >= 0.0);
        prop_assert!(s.row_cov >= 0.0);
        prop_assert_eq!(s.nnz, csr.nnz());
    }

    /// f16 conversion: converting any f32 to half and back to f32 is a
    /// fixed point of the conversion (idempotence), and ordering of
    /// representable values is preserved.
    #[test]
    fn half_conversion_idempotent(x in -70000.0f32..70000.0) {
        let h = Half::from_f32(x);
        let back = h.to_f32();
        prop_assert_eq!(Half::from_f32(back).0, h.0);
        // |half(x)| never exceeds |x| by more than half rounding ULP scale.
        if back.is_finite() && x != 0.0 {
            prop_assert!((back - x).abs() <= x.abs() * (1.0 / 1024.0) + 6e-8);
        }
    }

    /// Monotonicity: from_f32 preserves <= on finite values.
    #[test]
    fn half_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Half::from_f32(lo).to_f32() <= Half::from_f32(hi).to_f32());
    }

    /// Generators produce valid CSR at roughly the requested sparsity.
    #[test]
    fn uniform_generator_contract(rows in 1usize..128, cols in 1usize..128,
                                  sparsity in 0.0f64..1.0, seed in 0u64..1000) {
        let m = gen::uniform(rows, cols, sparsity, seed);
        prop_assert_eq!(m.rows(), rows);
        prop_assert_eq!(m.cols(), cols);
        prop_assert!(m.nnz() <= rows * cols);
        // Re-validation through from_parts.
        let rebuilt = CsrMatrix::<f32>::from_parts(
            rows, cols,
            m.row_offsets().to_vec(), m.col_indices().to_vec(), m.values().to_vec());
        prop_assert!(rebuilt.is_ok());
    }

    /// The row swizzle is always a permutation sorted by descending length.
    #[test]
    fn swizzle_is_sorted_permutation(rows in 1usize..96, seed in 0u64..500) {
        let m = gen::with_cov(rows, 64, 0.7, 0.8, seed);
        let s = RowSwizzle::by_length_desc(&m);
        prop_assert!(s.is_permutation());
        for w in s.as_slice().windows(2) {
            prop_assert!(m.row_len(w[0] as usize) >= m.row_len(w[1] as usize));
        }
    }

    /// Attention masks are causal and include the diagonal.
    #[test]
    fn attention_mask_causal(seq in 2usize..200, band in 1usize..32, seed in 0u64..100) {
        let m = gen::attention_mask(seq, band, 0.9, seed);
        for r in 0..seq {
            let (cols, _) = m.row(r);
            prop_assert!(cols.contains(&(r as u32)), "diagonal present in row {}", r);
            prop_assert!(cols.iter().all(|&c| c as usize <= r), "causality in row {}", r);
        }
    }

    /// The activation generator is a pure function of its arguments: equal
    /// inputs give bit-identical matrices (the joint-sparsity baselines
    /// replay these exact bit patterns), zeros are always +0.0, and the
    /// realized zero fraction tracks the target.
    #[test]
    fn activations_deterministic_contract(k in 1usize..200, n in 1usize..200,
                                          zero_frac in 0.0f64..0.95, seed in 0u64..1000) {
        let a = gen::activations(k, n, zero_frac, seed);
        let b = gen::activations(k, n, zero_frac, seed);
        prop_assert_eq!(a.rows(), k);
        prop_assert_eq!(a.cols(), n);
        prop_assert!(a.as_slice().iter().zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        for v in a.as_slice() {
            prop_assert!(*v >= 0.0 && v.is_finite());
            if *v == 0.0 {
                prop_assert_eq!(v.to_bits(), 0);
            }
        }
        // Density calibration is pinned by an averaged unit test in
        // `gen::tests`; at proptest shapes (few 8x32 groups, autocorrelated
        // burst chain) the realized fraction is legitimately noisy, so the
        // property here is purity + determinism, not calibration.
    }

    /// geometric mean lies between min and max of positive inputs.
    #[test]
    fn geo_mean_bounds(xs in proptest::collection::vec(0.01f64..100.0, 1..20)) {
        let g = stats::geometric_mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
    }
}
