//! Coordinate (COO) format — the construction-friendly intermediate.
//!
//! CSR is the computation format; building a matrix incrementally (pruning
//! masks, attention patterns, test fixtures) is much more natural as a list
//! of `(row, col, value)` triplets. `CooMatrix` accepts triplets in any
//! order, handles duplicates with a configurable policy, and converts to
//! CSR in O(nnz log nnz).

use crate::csr::CsrMatrix;
use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// What to do when the same (row, col) appears more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DuplicatePolicy {
    /// Sum the values (the linear-algebra convention).
    Sum,
    /// Keep the last value pushed (the assignment convention).
    KeepLast,
    /// Treat duplicates as an error.
    Reject,
}

/// A mutable triplet-list sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, T)>,
}

/// Errors from COO construction / conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CooError {
    OutOfBounds { row: usize, col: usize },
    Duplicate { row: u32, col: u32 },
}

impl std::fmt::Display for CooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CooError::OutOfBounds { row, col } => write!(f, "entry ({row},{col}) out of bounds"),
            CooError::Duplicate { row, col } => write!(f, "duplicate entry ({row},{col})"),
        }
    }
}

impl std::error::Error for CooError {}

impl<T: Scalar> CooMatrix<T> {
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored triplets (duplicates included until conversion).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one triplet.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<(), CooError> {
        if row >= self.rows || col >= self.cols {
            return Err(CooError::OutOfBounds { row, col });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Append many triplets.
    pub fn extend(
        &mut self,
        it: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> Result<(), CooError> {
        for (r, c, v) in it {
            self.push(r, c, v)?;
        }
        Ok(())
    }

    /// Convert to CSR, resolving duplicates per `policy` and dropping
    /// explicit zeros produced by summation.
    pub fn to_csr(&self, policy: DuplicatePolicy) -> Result<CsrMatrix<T>, CooError> {
        let mut entries = self.entries.clone();
        // Stable sort preserves push order among duplicates (KeepLast needs it).
        entries.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        let mut col_indices = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());
        row_offsets.push(0u32);
        let mut current_row = 0usize;

        let mut i = 0;
        while i < entries.len() {
            let (r, c, mut v) = entries[i];
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == r && entries[j].1 == c {
                match policy {
                    DuplicatePolicy::Sum => v = T::from_f32(v.to_f32() + entries[j].2.to_f32()),
                    DuplicatePolicy::KeepLast => v = entries[j].2,
                    DuplicatePolicy::Reject => return Err(CooError::Duplicate { row: r, col: c }),
                }
                j += 1;
            }
            while current_row < r as usize {
                row_offsets.push(col_indices.len() as u32);
                current_row += 1;
            }
            if v.to_f32() != 0.0 {
                col_indices.push(c);
                values.push(v);
            }
            i = j;
        }
        while current_row < self.rows {
            row_offsets.push(col_indices.len() as u32);
            current_row += 1;
        }

        // Invariant, not input validation: the sorted sweep above emits
        // offsets/indices that satisfy every CSR precondition.
        #[allow(clippy::expect_used)]
        let csr = CsrMatrix::from_parts(self.rows, self.cols, row_offsets, col_indices, values)
            .expect("COO conversion produces valid CSR");
        Ok(csr)
    }
}

impl<T: Scalar> From<&CsrMatrix<T>> for CooMatrix<T> {
    fn from(csr: &CsrMatrix<T>) -> Self {
        let mut coo = CooMatrix::with_capacity(csr.rows(), csr.cols(), csr.nnz());
        for (r, c, v) in csr.iter() {
            // Invariant: a constructed CsrMatrix has in-bounds entries.
            #[allow(clippy::expect_used)]
            coo.push(r, c, v).expect("CSR entries are in bounds");
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::<f32>::new(3, 3);
        // Out of order on purpose.
        coo.push(2, 1, 4.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        let csr = coo.to_csr(DuplicatePolicy::Reject).unwrap();
        assert_eq!(csr.row_offsets(), &[0, 2, 2, 4]);
        assert_eq!(csr.col_indices(), &[0, 2, 0, 1]);
        assert_eq!(csr.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn duplicates_sum() {
        let mut coo = CooMatrix::<f32>::new(2, 2);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        let csr = coo.to_csr(DuplicatePolicy::Sum).unwrap();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.values()[0], 4.0);
    }

    #[test]
    fn duplicates_keep_last() {
        let mut coo = CooMatrix::<f32>::new(2, 2);
        coo.push(1, 1, 1.0).unwrap();
        coo.push(1, 1, 9.0).unwrap();
        let csr = coo.to_csr(DuplicatePolicy::KeepLast).unwrap();
        assert_eq!(csr.values(), &[9.0]);
    }

    #[test]
    fn duplicates_reject() {
        let mut coo = CooMatrix::<f32>::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        assert_eq!(
            coo.to_csr(DuplicatePolicy::Reject).unwrap_err(),
            CooError::Duplicate { row: 0, col: 1 }
        );
    }

    #[test]
    fn summation_to_zero_drops_entry() {
        let mut coo = CooMatrix::<f32>::new(1, 2);
        coo.push(0, 0, 5.0).unwrap();
        coo.push(0, 0, -5.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let csr = coo.to_csr(DuplicatePolicy::Sum).unwrap();
        assert_eq!(csr.nnz(), 1, "cancelled entry must vanish");
        assert_eq!(csr.col_indices(), &[1]);
    }

    #[test]
    fn bounds_checked() {
        let mut coo = CooMatrix::<f32>::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(CooError::OutOfBounds { .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(CooError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn csr_roundtrip() {
        let csr = crate::gen::uniform(16, 24, 0.7, 701);
        let coo = CooMatrix::from(&csr);
        assert_eq!(coo.to_csr(DuplicatePolicy::Reject).unwrap(), csr);
    }

    #[test]
    fn empty_and_trailing_rows() {
        let mut coo = CooMatrix::<f32>::new(4, 4);
        coo.push(1, 2, 7.0).unwrap();
        let csr = coo.to_csr(DuplicatePolicy::Sum).unwrap();
        assert_eq!(csr.row_offsets(), &[0, 0, 1, 1, 1]);
    }
}
