//! Deterministic random sparse-matrix generators.
//!
//! These produce the workloads of every experiment: uniform random sparsity
//! (the RNN benchmarks of Figure 10 "generated sparse matrices with random
//! uniform sparsity"), controlled row-length CoV (the load-imbalance sweep
//! of Figure 7), the sparse-attention mask of Figure 11 (dense diagonal band
//! plus random off-diagonal connections with probability inversely
//! proportional to distance), and heavy-tailed scientific-like matrices for
//! the Figure 2 corpus comparison.

use crate::csr::CsrMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sample `k` distinct column indices from `0..cols`, sorted ascending.
///
/// Partial Fisher–Yates over a scratch buffer: O(k) swaps, O(k log k) sort.
fn sample_columns(cols: usize, k: usize, rng: &mut StdRng, scratch: &mut Vec<u32>) -> Vec<u32> {
    debug_assert!(k <= cols);
    if scratch.len() != cols {
        scratch.clear();
        scratch.extend(0..cols as u32);
    }
    for i in 0..k {
        let j = rng.random_range(i..cols);
        scratch.swap(i, j);
    }
    let mut out: Vec<u32> = scratch[..k].to_vec();
    out.sort_unstable();
    out
}

/// Approximate Binomial(n, p) sample via the normal approximation, clamped
/// to [0, n]. Exact sampling is unnecessary: only the row-length
/// *distribution* matters to the kernels.
fn binomial_approx(n: usize, p: f64, rng: &mut StdRng) -> usize {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let std = (n as f64 * p * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    (mean + z * std).round().clamp(0.0, n as f64) as usize
}

/// Standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a topology with deterministic pseudo-random values in [-1, 1).
fn random_values(nnz: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..nnz).map(|_| rng.random_range(-1.0f32..1.0)).collect()
}

fn from_row_lengths(rows: usize, cols: usize, lens: &[usize], rng: &mut StdRng) -> CsrMatrix<f32> {
    let mut row_offsets = Vec::with_capacity(rows + 1);
    let mut col_indices = Vec::new();
    row_offsets.push(0u32);
    let mut scratch = Vec::new();
    for &k in lens {
        let cols_for_row = sample_columns(cols, k.min(cols), rng, &mut scratch);
        col_indices.extend_from_slice(&cols_for_row);
        row_offsets.push(col_indices.len() as u32);
    }
    let values = random_values(col_indices.len(), rng);
    // Invariant: sampled columns are sorted, deduplicated, and in bounds.
    #[allow(clippy::expect_used)]
    let csr = CsrMatrix::from_parts(rows, cols, row_offsets, col_indices, values)
        .expect("generator produces valid CSR");
    csr
}

/// Uniform random sparsity: each entry is nonzero independently with
/// probability `1 - sparsity`. Row lengths are Binomial — the low-CoV regime
/// typical of pruned DNN weights.
pub fn uniform(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CsrMatrix<f32> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 - sparsity;
    let lens: Vec<usize> = (0..rows)
        .map(|_| binomial_approx(cols, p, &mut rng))
        .collect();
    from_row_lengths(rows, cols, &lens, &mut rng)
}

/// Perfectly balanced sparsity: every row has exactly `nnz_per_row`
/// nonzeros. The CoV-0 reference point of Figure 7.
pub fn balanced(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix<f32> {
    assert!(nnz_per_row <= cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let lens = vec![nnz_per_row; rows];
    from_row_lengths(rows, cols, &lens, &mut rng)
}

/// Controlled row-length CoV at a fixed total sparsity: row lengths are
/// drawn from a lognormal distribution whose CoV equals `target_cov`, then
/// rescaled so the matrix hits the requested sparsity. This is the
/// load-imbalance dial of Figure 7.
pub fn with_cov(
    rows: usize,
    cols: usize,
    sparsity: f64,
    target_cov: f64,
    seed: u64,
) -> CsrMatrix<f32> {
    assert!((0.0..=1.0).contains(&sparsity));
    assert!(target_cov >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let target_mean = cols as f64 * (1.0 - sparsity);

    // Row lengths live in [0, cols] with mean m, so CoV cannot exceed
    // sqrt((cols - m) / m); cap the target at 95% of that bound.
    let cov_cap = ((cols as f64 - target_mean).max(0.0) / target_mean.max(1.0)).sqrt() * 0.95;
    let target_cov = target_cov.min(cov_cap);

    let mut lens: Vec<usize> = if target_cov < 1e-9 {
        vec![target_mean.round() as usize; rows]
    } else {
        // Lognormal(mu, sigma) has CoV = sqrt(exp(sigma^2) - 1), but clamping
        // the heavy tail at `cols` shrinks the achieved CoV, so calibrate
        // sigma with a few fixed-point iterations against the sampled,
        // clamped lengths.
        let mut sigma = (1.0 + target_cov * target_cov).ln().sqrt();
        let mut sampled = Vec::new();
        for _ in 0..20 {
            let mu = target_mean.max(1.0).ln() - sigma * sigma / 2.0;
            sampled = (0..rows)
                .map(|_| {
                    let z = standard_normal(&mut rng);
                    (mu + sigma * z).exp().round().clamp(0.0, cols as f64)
                })
                .collect();
            let achieved = crate::stats::cov(&sampled);
            if achieved >= target_cov * 0.99 || achieved <= 0.0 {
                break;
            }
            sigma *= (target_cov / achieved).min(1.5);
        }
        sampled.iter().map(|&l| l as usize).collect()
    };

    // Rescale total nnz to the target (clamping distorts the mean slightly).
    let total: usize = lens.iter().sum();
    let want = (target_mean * rows as f64).round() as usize;
    if total > 0 && want > 0 {
        let scale = want as f64 / total as f64;
        for l in lens.iter_mut() {
            *l = ((*l as f64) * scale).round().clamp(0.0, cols as f64) as usize;
        }
    }
    from_row_lengths(rows, cols, &lens, &mut rng)
}

/// Heavy-tailed "scientific computing" matrix: row lengths follow a Pareto
/// distribution (shape `alpha`, smaller = heavier tail), producing the high
/// CoV and extreme sparsity of the SuiteSparse corpus in Figure 2.
pub fn power_law(
    rows: usize,
    cols: usize,
    avg_row_len: f64,
    alpha: f64,
    seed: u64,
) -> CsrMatrix<f32> {
    assert!(alpha > 1.0, "Pareto needs alpha > 1 for a finite mean");
    let mut rng = StdRng::seed_from_u64(seed);
    // Pareto(x_m, alpha) has mean alpha*x_m/(alpha-1).
    let x_m = avg_row_len * (alpha - 1.0) / alpha;
    let lens: Vec<usize> = (0..rows)
        .map(|_| {
            let u: f64 = rng.random_range(f64::EPSILON..1.0);
            let x = x_m / u.powf(1.0 / alpha);
            x.round().clamp(0.0, cols as f64) as usize
        })
        .collect();
    from_row_lengths(rows, cols, &lens, &mut rng)
}

/// The sparse-attention connectivity of the paper's Transformer experiment
/// (Figure 11): causal (lower-triangular) mask with a dense band of width
/// `band` along the diagonal, plus random off-diagonal connections sampled
/// with probability inversely proportional to the distance from the
/// diagonal, calibrated so the off-diagonal region has sparsity
/// `off_diag_sparsity` (0.95 in the paper).
pub fn attention_mask(
    seq: usize,
    band: usize,
    off_diag_sparsity: f64,
    seed: u64,
) -> CsrMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_offsets = Vec::with_capacity(seq + 1);
    let mut col_indices: Vec<u32> = Vec::new();
    row_offsets.push(0u32);
    let keep = 1.0 - off_diag_sparsity;

    for i in 0..seq {
        // Off-diagonal candidates: j in [0, i - band), distance d = i - j > band.
        let n_off = i.saturating_sub(band);
        if n_off > 0 {
            // Normalizing constant: sum over d in (band, i] of 1/d.
            let h: f64 = (band + 1..=i).map(|d| 1.0 / d as f64).sum();
            let c = keep * n_off as f64 / h.max(1e-12);
            for j in 0..n_off {
                let d = (i - j) as f64;
                let p = (c / d).min(1.0);
                if rng.random_range(0.0..1.0) < p {
                    col_indices.push(j as u32);
                }
            }
        }
        // Dense causal band: j in [i - band + 1 .. i], clamped at 0, plus the
        // diagonal itself.
        let start = i.saturating_sub(band.saturating_sub(1));
        for j in start..=i {
            col_indices.push(j as u32);
        }
        row_offsets.push(col_indices.len() as u32);
    }
    let nnz = col_indices.len();
    let values = vec![1.0f32; nnz];
    // Invariant: the causal band emits sorted, in-bounds indices.
    #[allow(clippy::expect_used)]
    let csr = CsrMatrix::from_parts(seq, seq, row_offsets, col_indices, values)
        .expect("attention mask is valid CSR");
    csr
}

/// splitmix64: the minimal bit-stable generator for the activation path.
///
/// `StdRng` is the vendored stub's chacha-ish stream and is already pinned,
/// but the activation generator is part of the *reproducibility contract* of
/// the joint-sparsity benches (committed baselines replay its exact bit
/// patterns), so it uses its own frozen splitmix64 stream — the same
/// constants as `serve`'s traffic generator — rather than inheriting
/// whatever `StdRng` happens to be.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 bits of mantissa — bit-exact across
    /// platforms (pure integer ops plus one exact int→float conversion).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Fraction of element-level zeros that is spent on aligned dead 8-row
/// blocks (the skippable structure) vs unstructured ReLU noise. At target
/// zero fraction `z`, the fine 8×32 dead-tile fraction lands near
/// `BLOCK_ZERO_SHARE * z`.
pub const BLOCK_ZERO_SHARE: f64 = 0.9;

/// Dead→live exit probability of the per-column-group burst chain: mean
/// dead-run length is `1 / BURST_EXIT` k-groups (ReLU activations kill
/// *consecutive* feature blocks, not isolated ones).
const BURST_EXIT: f64 = 0.25;

/// ReLU-style dense activations at a target zero fraction, bit-reproducible.
///
/// Models the post-ReLU activation operand of a sparse inference GEMM
/// (`k` features × `n` batch columns), calibrated like the `dataset.rs`
/// generators — by a target density, swept by the benches:
///
/// - **Aligned dead feature blocks**: 8-row-aligned groups of features go
///   entirely dead per 32-column group, in bursts (a two-state Markov chain
///   over k-groups with stationary dead probability
///   `BLOCK_ZERO_SHARE * zero_frac` and mean run length 4). These are the
///   tiles the fine 8×32 pattern LUT discovers and the joint kernels skip.
/// - **Per-column ReLU noise**: live groups carry unstructured elementwise
///   zeros at a per-column-modulated rate (each column's rate drawn in
///   [0.25, 1.75)× the mean — batch examples differ in how hard ReLU
///   clips them), calibrated so the *total* zero fraction hits `zero_frac`.
///
/// All zeros are exactly `+0.0` (the only bit pattern [`crate::PatternLut`]
/// treats as dead); nonzeros are positive, ReLU-style. The stream is
/// splitmix64 with a fixed draw order, so equal `(k, n, zero_frac, seed)`
/// produce bit-identical matrices on every platform and build.
pub fn activations(k: usize, n: usize, zero_frac: f64, seed: u64) -> crate::Matrix<f32> {
    assert!(
        (0.0..1.0).contains(&zero_frac),
        "zero_frac must be in [0, 1)"
    );
    let mut rng = SplitMix64::new(seed ^ 0xAC7_1FA7E);
    let g = (zero_frac * BLOCK_ZERO_SHARE).min(0.99);
    // Total zeros = g + (1-g)*e  =>  element rate e in live groups.
    let e = ((zero_frac - g) / (1.0 - g)).clamp(0.0, 1.0);

    // Per-column ReLU clip-rate modulation, mean 1.
    let col_rate: Vec<f64> = (0..n)
        .map(|_| (e * (0.25 + 1.5 * rng.next_f64())).min(1.0))
        .collect();

    // Bursty dead-block pattern over (k-group, column-group) cells: per
    // column group, a Markov chain down the k-groups. Entry probability is
    // solved from the stationary distribution: pi_dead = enter/(enter+exit).
    let kgroups = k.div_ceil(8).max(1);
    let ngroups = n.div_ceil(32).max(1);
    let enter = if g >= 1.0 - 1e-12 {
        1.0
    } else {
        (g * BURST_EXIT / (1.0 - g)).min(1.0)
    };
    let mut dead = vec![false; kgroups * ngroups];
    for ng in 0..ngroups {
        let mut state = rng.next_f64() < g;
        for kg in 0..kgroups {
            dead[kg * ngroups + ng] = state;
            let p = if state { 1.0 - BURST_EXIT } else { enter };
            state = rng.next_f64() < p;
        }
    }

    let mut m = crate::Matrix::<f32>::zeros(k, n);
    for r in 0..k {
        let kg = r / 8;
        for c in 0..n {
            if dead[kg * ngroups + c / 32] {
                continue; // stays exactly +0.0
            }
            if rng.next_f64() < col_rate[c] {
                continue; // ReLU-clipped element
            }
            // Positive post-ReLU magnitude, bounded away from zero.
            m.set(r, c, (0.02 + 1.98 * rng.next_f64()) as f32);
        }
    }
    m
}

/// A deterministic banded matrix (useful for exact-value tests).
pub fn banded(rows: usize, cols: usize, bandwidth: usize) -> CsrMatrix<f32> {
    let mut row_offsets = vec![0u32];
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..rows {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth + 1).min(cols);
        for j in lo..hi {
            col_indices.push(j as u32);
            values.push((i + j) as f32 + 1.0);
        }
        row_offsets.push(col_indices.len() as u32);
    }
    // Invariant: the band construction emits sorted, in-bounds indices.
    #[allow(clippy::unwrap_used)]
    let csr = CsrMatrix::from_parts(rows, cols, row_offsets, col_indices, values).unwrap();
    csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::matrix_stats;

    #[test]
    fn uniform_hits_target_sparsity() {
        let m = uniform(512, 512, 0.8, 7);
        let s = matrix_stats(&m);
        assert!((s.sparsity - 0.8).abs() < 0.02, "sparsity {}", s.sparsity);
        // Binomial rows at p=0.2, n=512: CoV ~ sqrt(npq)/np ~ 0.09.
        assert!(s.row_cov < 0.2, "cov {}", s.row_cov);
    }

    #[test]
    fn uniform_is_deterministic() {
        assert_eq!(uniform(64, 64, 0.7, 3), uniform(64, 64, 0.7, 3));
        assert_ne!(uniform(64, 64, 0.7, 3), uniform(64, 64, 0.7, 4));
    }

    #[test]
    fn balanced_rows_have_zero_cov() {
        let m = balanced(128, 256, 64, 1);
        let s = matrix_stats(&m);
        assert_eq!(s.row_cov, 0.0);
        assert_eq!(s.avg_row_length, 64.0);
        assert_eq!(m.nnz(), 128 * 64);
    }

    #[test]
    fn with_cov_hits_both_targets() {
        // Mean row length is 512 of 2048, so the CoV ceiling is sqrt(3)≈1.73.
        let mut prev = -1.0;
        for &cov in &[0.0, 0.3, 0.6, 1.0, 1.5] {
            let m = with_cov(2048, 2048, 0.75, cov, 11);
            let s = matrix_stats(&m);
            assert!(
                (s.sparsity - 0.75).abs() < 0.05,
                "cov={cov}: sparsity {}",
                s.sparsity
            );
            // Tight at moderate CoV; the clamped tail loosens the extreme end.
            let tol = if cov <= 1.0 { 0.2 } else { 0.35 };
            assert!(
                (s.row_cov - cov).abs() < tol,
                "target cov {cov}, got {}",
                s.row_cov
            );
            assert!(
                s.row_cov > prev,
                "achieved CoV must increase with the target"
            );
            prev = s.row_cov;
        }
    }

    #[test]
    fn with_cov_saturates_at_feasible_ceiling() {
        // Requesting an impossible CoV degrades gracefully to near the cap.
        let m = with_cov(2048, 512, 0.75, 5.0, 11);
        let s = matrix_stats(&m);
        let cap = ((512.0 - 128.0f64) / 128.0).sqrt();
        assert!(s.row_cov <= cap + 0.1, "cov {} above cap {cap}", s.row_cov);
        assert!(
            s.row_cov > cap * 0.6,
            "cov {} too far below cap {cap}",
            s.row_cov
        );
    }

    #[test]
    fn power_law_has_high_cov() {
        let m = power_law(4096, 4096, 8.0, 1.3, 5);
        let s = matrix_stats(&m);
        assert!(
            s.row_cov > 1.0,
            "scientific matrices should be imbalanced, cov {}",
            s.row_cov
        );
        assert!(s.sparsity > 0.99, "sparsity {}", s.sparsity);
    }

    #[test]
    fn attention_mask_structure() {
        let seq = 1024;
        let band = 64;
        let m = attention_mask(seq, band, 0.95, 9);
        // Causal: no entries above the diagonal.
        for (r, c, _) in m.iter() {
            assert!(c <= r, "found ({r},{c}) above diagonal");
        }
        // The band is fully dense.
        let (cols, _) = m.row(seq - 1);
        for j in (seq - band)..seq {
            assert!(cols.contains(&(j as u32)), "band column {j} missing");
        }
        // Off-diagonal sparsity near 95%.
        let band_nnz: usize = (0..seq).map(|i| i.min(band - 1) + 1).sum();
        let off_candidates: usize = (0..seq).map(|i| i.saturating_sub(band)).sum();
        let off_nnz = m.nnz() - band_nnz;
        let off_density = off_nnz as f64 / off_candidates as f64;
        assert!(
            (off_density - 0.05).abs() < 0.02,
            "off-diag density {off_density}"
        );
    }

    #[test]
    fn attention_mask_prefers_near_diagonal() {
        let m = attention_mask(2048, 32, 0.95, 2);
        // Count off-band entries in near vs far halves of the distance range.
        let mut near = 0usize;
        let mut far = 0usize;
        for (r, c, _) in m.iter() {
            let d = r - c;
            if d <= 32 {
                continue;
            }
            if d < 512 {
                near += 1;
            } else if d >= 1024 {
                far += 1;
            }
        }
        assert!(near > far, "near {near} should exceed far {far}");
    }

    #[test]
    fn banded_is_exactly_banded() {
        let m = banded(8, 8, 1);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row_len(4), 3);
        let d = m.to_dense();
        assert_eq!(d.get(4, 3), 8.0);
        assert_eq!(d.get(4, 6), 0.0);
    }

    #[test]
    fn activations_hit_target_zero_fraction() {
        // The burst chain is heavily autocorrelated, so single draws are
        // noisy: average the realized fraction over a few seeds.
        for &z in &[0.3, 0.5, 0.7, 0.9] {
            let frac: f64 = (17u64..20)
                .map(|seed| {
                    let m = activations(512, 512, z, seed);
                    let zeros = m.as_slice().iter().filter(|v| **v == 0.0).count();
                    zeros as f64 / (512.0 * 512.0)
                })
                .sum::<f64>()
                / 3.0;
            assert!((frac - z).abs() < 0.05, "target {z}, observed {frac}");
        }
    }

    #[test]
    fn activations_zeros_are_positive_zero() {
        let m = activations(128, 96, 0.7, 5);
        for v in m.as_slice() {
            if *v == 0.0 {
                assert_eq!(v.to_bits(), 0, "zeros must be +0.0 for LUT deadness");
            } else {
                assert!(*v > 0.0, "nonzeros are post-ReLU positive");
            }
        }
    }

    #[test]
    fn activations_block_structure_is_discoverable() {
        // The fine 8x32 LUT must find roughly BLOCK_ZERO_SHARE * z of its
        // tiles dead — that is the structure the joint kernels skip.
        let z = 0.7;
        let m = activations(512, 256, z, 23);
        let lut = crate::PatternLut::build(&m, crate::PatternGranularity::Fine);
        let want = BLOCK_ZERO_SHARE * z;
        assert!(
            (lut.dead_fraction() - want).abs() < 0.08,
            "fine dead fraction {} vs target {want}",
            lut.dead_fraction()
        );
        // Bursty runs mean the coarse 64x32 LUT still finds real structure.
        let coarse = crate::PatternLut::build(&m, crate::PatternGranularity::Coarse);
        assert!(
            coarse.dead_fraction() > 0.05,
            "coarse dead fraction {} — burst runs should survive 64-row tiles",
            coarse.dead_fraction()
        );
    }

    #[test]
    fn activations_are_bit_reproducible() {
        let a = activations(96, 80, 0.6, 99);
        let b = activations(96, 80, 0.6, 99);
        let same = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "equal seeds must produce bit-identical activations");
        let c = activations(96, 80, 0.6, 100);
        assert_ne!(a.as_slice(), c.as_slice(), "different seed, different bits");
    }

    #[test]
    fn sample_columns_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = Vec::new();
        for _ in 0..50 {
            let cols = sample_columns(100, 30, &mut rng, &mut scratch);
            assert_eq!(cols.len(), 30);
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "must be strictly increasing");
            }
        }
    }
}
