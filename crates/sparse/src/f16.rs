//! Software IEEE 754 binary16 ("half precision").
//!
//! The paper's mixed-precision kernels store data as FP16 and compute in
//! FP32 ("we convert FP16 data to FP32 and issue FP32 fused multiply-add
//! instructions, as is standard"). No `half` crate is used; conversions are
//! implemented bit-exactly here, with round-to-nearest-even, so the numerics
//! of the mixed-precision path are faithful.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IEEE 754 binary16 value. 1 sign bit, 5 exponent bits, 10 mantissa bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Half(pub u16);

impl Half {
    pub const ZERO: Half = Half(0);
    pub const ONE: Half = Half(0x3C00);
    pub const INFINITY: Half = Half(0x7C00);
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// Largest finite value, 65504.
    pub const MAX: Half = Half(0x7BFF);

    /// Convert from f32 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Half {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve NaN-ness with a quiet mantissa bit.
            return if mant == 0 {
                Half(sign | 0x7C00)
            } else {
                Half(sign | 0x7E00)
            };
        }

        // Unbiased exponent, rebiasing from 127 to 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows half range: round to infinity.
            return Half(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal half. 13 mantissa bits are dropped with RNE.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_mant = (mant >> 13) as u16;
            let rest = mant & 0x1FFF;
            let mut h = sign | half_exp | half_mant;
            // Round to nearest even.
            if rest > 0x1000 || (rest == 0x1000 && (half_mant & 1) == 1) {
                h = h.wrapping_add(1); // may carry into the exponent: correct behavior
            }
            return Half(h);
        }
        if unbiased >= -24 {
            // Subnormal half: the result is round(|v| / 2^-24) =
            // round(full_mant * 2^(unbiased + 1 - 23 + 23)) = full_mant >> shift
            // with shift = -unbiased - 1 in 14..=23.
            let shift = (-unbiased - 1) as u32;
            let full_mant = mant | 0x0080_0000; // implicit leading 1
            let shifted = full_mant >> shift;
            let rest = full_mant & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut h = sign | (shifted as u16);
            if rest > halfway || (rest == halfway && (shifted & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return Half(h);
        }
        // Underflows to signed zero.
        Half(sign)
    }

    /// Convert to f32 (exact: every half value is representable in f32).
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1F;
        let mant = bits & 0x03FF;

        let out = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal half: value = mant * 2^-24. Normalize by shifting
                // until bit 10 is set (s shifts): value = m_norm * 2^(-14-s-10),
                // so the f32 biased exponent is 113 - s.
                let mut s = 0u32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    s += 1;
                }
                m &= 0x03FF;
                let f32_exp = (113 - s) << 23;
                sign | f32_exp | (m << 13)
            }
        } else if exp == 0x1F {
            // Inf / NaN.
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            let f32_exp = (exp + 127 - 15) << 23;
            sign | f32_exp | (mant << 13)
        };
        f32::from_bits(out)
    }

    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Self {
        Half::from_f32(v)
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> Self {
        h.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048i32 {
            let f = i as f32;
            assert_eq!(Half::from_f32(f).to_f32(), f, "integer {i}");
        }
    }

    #[test]
    fn one_is_one() {
        assert_eq!(Half::from_f32(1.0), Half::ONE);
        assert_eq!(Half::ONE.to_f32(), 1.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(Half::from_f32(1e6), Half::INFINITY);
        assert_eq!(Half::from_f32(-1e6), Half::NEG_INFINITY);
        assert_eq!(Half::from_f32(65504.0), Half::MAX, "max finite half");
        assert!(
            Half::from_f32(65520.0).is_infinite(),
            "just past max rounds to inf"
        );
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(Half::from_f32(tiny).0, 1);
        assert_eq!(Half(1).to_f32(), tiny);
        // Largest subnormal: (1023/1024) * 2^-14.
        let lsub = (1023.0 / 1024.0) * 2.0f32.powi(-14);
        assert_eq!(Half::from_f32(lsub).to_f32(), lsub);
        // Below half of the smallest subnormal: flush to zero.
        assert_eq!(Half::from_f32(2.0f32.powi(-26)), Half::ZERO);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: rounds to even (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(Half::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(Half::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(Half::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // The largest value below 2.0 rounds up across the binade boundary.
        let v = 2.0 - 2.0f32.powi(-12);
        assert_eq!(Half::from_f32(v).to_f32(), 2.0);
    }

    #[test]
    fn signed_zero() {
        assert_eq!(Half::from_f32(-0.0).0, 0x8000);
        assert_eq!(Half::from_f32(-0.0).to_f32(), -0.0);
        assert!(Half::from_f32(-0.0).to_f32().is_sign_negative());
    }

    #[test]
    fn roundtrip_preserves_half_values() {
        // Every finite half value must survive to_f32 -> from_f32 unchanged.
        for bits in 0..=0xFFFFu16 {
            let h = Half(bits);
            if h.is_nan() {
                continue;
            }
            let back = Half::from_f32(h.to_f32());
            assert_eq!(back.0, h.0, "bits {bits:#06x}");
        }
    }
}
