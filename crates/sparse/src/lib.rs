//! # sparse — tensors and corpora for the Sputnik reproduction
//!
//! Sparse (CSR) and dense matrices, a software IEEE binary16 type for the
//! mixed-precision kernels, the matrix statistics studied in Section II of
//! *Sparse GPU Kernels for Deep Learning* (Gale et al., SC 2020), seeded
//! random generators for every experimental workload, the row-swizzle
//! orderings of Section V-C, and synthetic stand-ins for the paper's matrix
//! corpora.
//!
//! ```
//! use sparse::{gen, stats, CsrMatrix};
//!
//! let w = gen::uniform(128, 256, 0.8, 42);       // 80% sparse weights
//! let s = stats::matrix_stats(&w);
//! assert!((s.sparsity - 0.8).abs() < 0.05);
//!
//! let dense = w.to_dense();                       // lossless roundtrip
//! assert_eq!(CsrMatrix::from_dense(&dense), w);
//! ```

pub mod block;
pub mod coo;
pub mod csr;
pub mod dataset;
pub mod dense;
pub mod element;
pub mod ell;
pub mod f16;
pub mod gen;
pub mod io;
pub mod mtx;
pub mod pattern;
pub mod stats;
pub mod swizzle;

pub use block::{block_magnitude_retention, block_prune, BsrMatrix};
pub use coo::{CooMatrix, DuplicatePolicy};
pub use csr::{CsrError, CsrMatrix};
pub use dense::{Layout, Matrix};
pub use element::{IndexWidth, Scalar};
pub use ell::EllMatrix;
pub use f16::Half;
pub use pattern::{PatternGranularity, PatternLut};
pub use stats::{matrix_stats, MatrixStats};
pub use swizzle::RowSwizzle;
