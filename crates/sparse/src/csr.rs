//! Compressed sparse row (CSR) matrices.
//!
//! The paper's kernels "operate directly on the standard compressed sparse
//! row format and do not enforce any structure on the topology of nonzero
//! values". This module provides that format, conversions, and the
//! transpose-caching trick discussed in the paper's Section IX.

use crate::dense::Matrix;
use crate::element::{IndexWidth, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when validating CSR structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_offsets` must have exactly `rows + 1` entries.
    BadOffsetLen { expected: usize, got: usize },
    /// `row_offsets` must be non-decreasing.
    NonMonotoneOffsets { row: usize },
    /// The final offset must equal the number of stored values.
    BadNnz { expected: usize, got: usize },
    /// `col_indices` and `values` must have equal length.
    LengthMismatch { indices: usize, values: usize },
    /// A column index is out of bounds.
    ColumnOutOfBounds { row: usize, col: u32, cols: usize },
    /// Column indices within a row must be strictly increasing.
    UnsortedRow { row: usize },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadOffsetLen { expected, got } => {
                write!(f, "row_offsets length {got}, expected {expected}")
            }
            CsrError::NonMonotoneOffsets { row } => {
                write!(f, "row_offsets decrease at row {row}")
            }
            CsrError::BadNnz { expected, got } => {
                write!(f, "final offset {got} does not match nnz {expected}")
            }
            CsrError::LengthMismatch { indices, values } => {
                write!(f, "{indices} indices vs {values} values")
            }
            CsrError::ColumnOutOfBounds { row, col, cols } => {
                write!(f, "column {col} out of bounds ({cols}) in row {row}")
            }
            CsrError::UnsortedRow { row } => write!(f, "unsorted column indices in row {row}"),
        }
    }
}

impl std::error::Error for CsrError {}

/// A sparse matrix in CSR format with `Scalar` values and 32-bit metadata.
///
/// The mixed-precision kernels model 16-bit column indices; the width used
/// on "device" is a kernel-configuration concern (`IndexWidth`), while host
/// storage is always u32.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build a validated CSR matrix.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_offsets: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, CsrError> {
        if row_offsets.len() != rows + 1 {
            return Err(CsrError::BadOffsetLen {
                expected: rows + 1,
                got: row_offsets.len(),
            });
        }
        if col_indices.len() != values.len() {
            return Err(CsrError::LengthMismatch {
                indices: col_indices.len(),
                values: values.len(),
            });
        }
        for r in 0..rows {
            if row_offsets[r] > row_offsets[r + 1] {
                return Err(CsrError::NonMonotoneOffsets { row: r });
            }
        }
        if row_offsets[rows] as usize != values.len() {
            return Err(CsrError::BadNnz {
                expected: values.len(),
                got: row_offsets[rows] as usize,
            });
        }
        for r in 0..rows {
            let (s, e) = (row_offsets[r] as usize, row_offsets[r + 1] as usize);
            let mut prev: Option<u32> = None;
            for &c in &col_indices[s..e] {
                if c as usize >= cols {
                    return Err(CsrError::ColumnOutOfBounds {
                        row: r,
                        col: c,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(CsrError::UnsortedRow { row: r });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// An empty (all-zero) sparse matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_offsets: vec![0; rows + 1],
            col_indices: vec![],
            values: vec![],
        }
    }

    /// Extract the nonzero pattern and values from a dense matrix.
    pub fn from_dense(dense: &Matrix<T>) -> Self {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.get(r, c);
                if v.to_f32() != 0.0 {
                    col_indices.push(c as u32);
                    values.push(v);
                }
            }
            row_offsets.push(col_indices.len() as u32);
        }
        Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Scatter back to a dense row-major matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(r, c as usize, v);
            }
        }
        out
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    pub fn values(&self) -> &[T] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Number of nonzeros in row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        (self.row_offsets[r + 1] - self.row_offsets[r]) as usize
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let s = self.row_offsets[r] as usize;
        let e = self.row_offsets[r + 1] as usize;
        (&self.col_indices[s..e], &self.values[s..e])
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Replace the stored values, keeping the topology. Panics if the length
    /// differs from `nnz`. This is how training-style updates work: topology
    /// changes rarely, values change every step.
    pub fn with_values(&self, values: Vec<T>) -> Self {
        assert_eq!(values.len(), self.nnz(), "value count must match nnz");
        Self {
            rows: self.rows,
            cols: self.cols,
            row_offsets: self.row_offsets.clone(),
            col_indices: self.col_indices.clone(),
            values,
        }
    }

    /// A stable 64-bit fingerprint of the matrix *topology*: dimensions,
    /// row offsets, and column indices (values excluded — simulated cost
    /// traces depend only on structure). FNV-1a over the raw words, so the
    /// result is identical across runs, platforms, and Rust versions, which
    /// makes it usable as a persistent cache-key component.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        // FNV-1a lifted to whole words (one xor-multiply per word): this
        // runs on every launch-cache lookup, so it must stay O(nnz) with a
        // small constant.
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        mix(self.nnz() as u64);
        for &o in &self.row_offsets {
            mix(o as u64);
        }
        for &c in &self.col_indices {
            mix(c as u64);
        }
        h
    }

    /// Do two matrices share the same topology (offsets and indices)?
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_offsets == other.row_offsets
            && self.col_indices == other.col_indices
    }

    /// Transpose to a new CSR matrix (equivalently: interpret as CSC).
    ///
    /// The paper (Section IX) notes that for DNN training the transpose
    /// topology can be cached when the sparsity pattern is updated and the
    /// values permuted with an argsort; [`Self::transpose_permutation`]
    /// provides that permutation.
    pub fn transpose(&self) -> CsrMatrix<T> {
        let perm = self.transpose_permutation();
        let mut row_offsets = vec![0u32; self.cols + 1];
        for &c in &self.col_indices {
            row_offsets[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            row_offsets[c + 1] += row_offsets[c];
        }
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![T::zero(); self.nnz()];
        // perm[t] = source position in the original value array.
        for (t, &src) in perm.iter().enumerate() {
            values[t] = self.values[src as usize];
        }
        // Column indices of the transpose are the source row indices.
        let mut cursor = row_offsets.clone();
        for r in 0..self.rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                let dst = cursor[c as usize] as usize;
                col_indices[dst] = r as u32;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// The permutation `perm` such that `transposed.values[t] =
    /// values[perm[t]]` — the cached "argsort of the matrix values" from
    /// Section IX. Recomputing only this (not the topology) is all a
    /// training step needs after a value update.
    pub fn transpose_permutation(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_indices {
            counts[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let mut perm = vec![0u32; self.nnz()];
        let mut cursor = counts;
        let mut pos = 0usize;
        for r in 0..self.rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                perm[cursor[c as usize] as usize] = pos as u32;
                cursor[c as usize] += 1;
                pos += 1;
            }
        }
        perm
    }

    /// Convert element precision.
    pub fn convert<U: Scalar>(&self) -> CsrMatrix<U> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_offsets: self.row_offsets.clone(),
            col_indices: self.col_indices.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f32(v.to_f32()))
                .collect(),
        }
    }

    /// Device memory footprint: values + column indices + row offsets.
    pub fn bytes(&self, index_width: IndexWidth) -> u64 {
        self.values.len() as u64 * T::BYTES as u64
            + self.col_indices.len() as u64 * index_width.bytes() as u64
            + self.row_offsets.len() as u64 * 4
    }

    /// Longest row, in nonzeros.
    pub fn max_row_len(&self) -> usize {
        (0..self.rows).map(|r| self.row_len(r)).max().unwrap_or(0)
    }

    /// The explicit-padding alternative to ROMA (Section V-B2): pad every
    /// row with zero-valued entries until its length is a multiple of
    /// `multiple`, so vector memory instructions are alignment-safe without
    /// runtime masking. Padding entries use the smallest unused column
    /// indices in each row. Returns `None` when a row has no free columns
    /// left to pad with — the generality loss the paper's ROMA avoids.
    pub fn padded_to_multiple(&self, multiple: usize) -> Option<CsrMatrix<T>> {
        assert!(
            multiple.is_power_of_two(),
            "pad target must be a power of two"
        );
        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0u32);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let pad = (multiple - cols.len() % multiple) % multiple;
            if pad > 0 {
                // Merge the sorted real columns with the smallest free ones.
                let mut free = Vec::with_capacity(pad);
                let mut next = 0u32;
                let mut it = cols.iter().peekable();
                while free.len() < pad {
                    if next as usize >= self.cols {
                        return None; // row too full to pad
                    }
                    match it.peek() {
                        Some(&&c) if c == next => {
                            it.next();
                        }
                        _ => free.push(next),
                    }
                    next += 1;
                }
                let mut merged: Vec<(u32, T)> = cols
                    .iter()
                    .zip(vals)
                    .map(|(&c, &v)| (c, v))
                    .chain(free.into_iter().map(|c| (c, T::zero())))
                    .collect();
                merged.sort_by_key(|&(c, _)| c);
                for (c, v) in merged {
                    col_indices.push(c);
                    values.push(v);
                }
            } else {
                col_indices.extend_from_slice(cols);
                values.extend_from_slice(vals);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        // Invariant: padding only inserts sorted in-bounds zero entries.
        #[allow(clippy::expect_used)]
        let csr = CsrMatrix::from_parts(self.rows, self.cols, row_offsets, col_indices, values)
            .expect("padding preserves CSR validity");
        Some(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_dense() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(CsrMatrix::from_dense(&d), m);
    }

    #[test]
    fn validation_rejects_bad_offsets() {
        let e = CsrMatrix::<f32>::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(
            e.unwrap_err(),
            CsrError::BadOffsetLen {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn validation_rejects_unsorted_rows() {
        let e = CsrMatrix::<f32>::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert_eq!(e.unwrap_err(), CsrError::UnsortedRow { row: 0 });
    }

    #[test]
    fn validation_rejects_out_of_bounds() {
        let e = CsrMatrix::<f32>::from_parts(1, 3, vec![0, 1], vec![3], vec![1.0]);
        assert!(matches!(e.unwrap_err(), CsrError::ColumnOutOfBounds { .. }));
    }

    #[test]
    fn validation_rejects_decreasing_offsets() {
        let e = CsrMatrix::<f32>::from_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        // Final offset (1) also mismatches nnz, but monotonicity is checked first.
        assert_eq!(e.unwrap_err(), CsrError::NonMonotoneOffsets { row: 1 });
    }

    #[test]
    fn sparsity_and_lengths() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert!((m.sparsity() - (1.0 - 4.0 / 9.0)).abs() < 1e-12);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row_len(1), 0);
        assert_eq!(m.max_row_len(), 2);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        // Double transpose is identity.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_permutation_permutes_values() {
        let m = sample();
        let t = m.transpose();
        let perm = m.transpose_permutation();
        let permuted: Vec<f32> = perm.iter().map(|&p| m.values()[p as usize]).collect();
        assert_eq!(permuted, t.values());
    }

    #[test]
    fn with_values_keeps_pattern() {
        let m = sample();
        let m2 = m.with_values(vec![9.0, 8.0, 7.0, 6.0]);
        assert!(m.same_pattern(&m2));
        assert_eq!(m2.values(), &[9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn bytes_accounting() {
        let m = sample();
        // 4 values * 4B + 4 indices * 4B + 4 offsets * 4B = 48.
        assert_eq!(m.bytes(IndexWidth::U32), 48);
        // 16-bit indices: 4 values * 4B + 4 * 2B + 16B = 40.
        assert_eq!(m.bytes(IndexWidth::U16), 40);
    }

    #[test]
    fn padding_aligns_every_row() {
        let m = crate::gen::uniform(32, 64, 0.7, 801);
        let p = m.padded_to_multiple(4).expect("plenty of free columns");
        for r in 0..32 {
            assert_eq!(p.row_len(r) % 4, 0, "row {r}");
        }
        // Padding adds only zeros: dense views agree.
        assert_eq!(p.to_dense(), m.to_dense());
        assert!(p.nnz() >= m.nnz());
    }

    #[test]
    fn padding_fails_on_full_rows() {
        // A fully dense 1x3 row cannot be padded to a multiple of 4.
        let m =
            CsrMatrix::<f32>::from_parts(1, 3, vec![0, 3], vec![0, 1, 2], vec![1.0; 3]).unwrap();
        assert!(m.padded_to_multiple(4).is_none());
    }

    #[test]
    fn fingerprint_tracks_topology_not_values() {
        let m = crate::gen::uniform(32, 64, 0.7, 801);
        let same_pattern = m.with_values(vec![7.0; m.nnz()]);
        assert_eq!(m.fingerprint(), same_pattern.fingerprint());
        let other = crate::gen::uniform(32, 64, 0.7, 802);
        assert_ne!(m.fingerprint(), other.fingerprint());
        // Dimensions are covered even when the pattern is empty.
        assert_ne!(
            CsrMatrix::<f32>::empty(4, 8).fingerprint(),
            CsrMatrix::<f32>::empty(8, 4).fingerprint()
        );
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
