//! Matrix statistics studied in Section II of the paper: sparsity, average
//! row length, and the row-length coefficient of variation (CoV).

use crate::csr::CsrMatrix;
use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// The three properties the paper's Figure 2 plots for each matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Fraction of zero entries.
    pub sparsity: f64,
    /// Mean nonzeros per row.
    pub avg_row_length: f64,
    /// Standard deviation of row lengths divided by their mean. "A high CoV
    /// is indicative of load imbalance across the rows of a sparse matrix."
    pub row_cov: f64,
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
}

/// Compute [`MatrixStats`] for a CSR matrix.
pub fn matrix_stats<T: Scalar>(m: &CsrMatrix<T>) -> MatrixStats {
    let lens: Vec<f64> = (0..m.rows()).map(|r| m.row_len(r) as f64).collect();
    MatrixStats {
        sparsity: m.sparsity(),
        avg_row_length: mean(&lens),
        row_cov: cov(&lens),
        rows: m.rows(),
        cols: m.cols(),
        nnz: m.nnz(),
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation: std-dev / mean (0 when the mean is 0).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(xs) / m
}

/// Geometric mean; ignores non-positive entries (0 if none remain).
///
/// The paper summarizes corpus speedups as geometric means; so do we.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let positive: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|x| x.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn cov_of_uniform_rows_is_zero() {
        assert_eq!(cov(&[5.0, 5.0, 5.0]), 0.0);
        assert!(cov(&[1.0, 9.0]) > 0.5);
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn stats_on_known_matrix() {
        use crate::csr::CsrMatrix;
        // Rows of length 2, 0, 4 over 3x6.
        let m = CsrMatrix::<f32>::from_parts(
            3,
            6,
            vec![0, 2, 2, 6],
            vec![0, 1, 0, 1, 2, 3],
            vec![1.0; 6],
        )
        .unwrap();
        let s = matrix_stats(&m);
        assert_eq!(s.nnz, 6);
        assert!((s.avg_row_length - 2.0).abs() < 1e-12);
        assert!((s.sparsity - (1.0 - 6.0 / 18.0)).abs() < 1e-12);
        // lengths [2,0,4]: std = sqrt(8/3), mean 2.
        assert!((s.row_cov - (8.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
    }
}
