//! Zero-block pattern LUTs over a dense operand (the ESMM preprocessing
//! pass).
//!
//! Joint activation×weight sparsity needs a *warp-uniform* way to skip work:
//! per-element zero checks on the dense operand diverge within a warp and
//! cost more than they save. Instead, the dense operand `B` (`k x n`,
//! row-major — the activations of an inference GEMM) is tiled into
//! `tile_k x 32` blocks and each block collapses to one bit: **live** (some
//! element is nonzero) or **dead** (every element is exactly `+0.0`). A
//! subwarp processing one sparse nonzero `(row, col, val)` against a 32-wide
//! output strip probes one bit — the tile covering B-rows
//! `[col/tile_k * tile_k ..)` at its output column tile — and either issues
//! the whole strip load + FMA or skips both. Every lane of the subwarp reads
//! the same bit, so the branch is uniform: zero divergence, one probe
//! amortized over `tile_k` B-rows × 32 columns of skipped work.
//!
//! Two granularities, after ESMM's K28/K24 kernels:
//!
//! * [`PatternGranularity::Fine`] — 8×32 tiles. Finds the most dead blocks
//!   (any 8 aligned dead B-rows kill a tile) at 8× the LUT size and probe
//!   rate of coarse.
//! * [`PatternGranularity::Coarse`] — 64×32 tiles. One probe covers eight
//!   fine tiles; only long runs of dead rows die at this granularity, so it
//!   skips less but costs near zero overhead in the main loop.
//!
//! ## Why skipping a dead tile is bit-invisible
//!
//! The weight-only kernel folds every nonzero into its accumulator tile with
//! `acc[i] = val.mul_add(b[i], acc[i])`. A dead tile contributes terms
//! `val.mul_add(+0.0, acc[i])`. The product `val * +0.0` is `±0.0`, and
//! IEEE-754 addition gives `±0.0 + x == x` bitwise for every `x` except
//! `x == ±0.0` of the *opposite* sign, where the sum is `+0.0`. So the only
//! way a skipped term could change the accumulator is if the accumulator
//! were exactly `-0.0`. It never is: accumulators start at `+0.0` (zeroed
//! scratch), and an fma chain starting from `+0.0` cannot *reach* `-0.0` —
//! producing `-0.0` from `p + acc` requires `p == -0.0` **and**
//! `acc == -0.0`, so the first `-0.0` accumulator would need a `-0.0`
//! accumulator before it. By induction, `acc` is never `-0.0`, so
//! `val.mul_add(+0.0, acc) == acc` bitwise and dead-tile skipping replays
//! the reference chain exactly. (This is why [`PatternLut::build`] treats a
//! tile as dead only when every element's bit pattern is `+0.0` — a `-0.0`
//! element marks its tile live, keeping the argument airtight.)

use crate::dense::{Layout, Matrix};
use crate::element::Scalar;

/// Zero-block tile shape, after ESMM's kernel progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternGranularity {
    /// 8×32 tiles (ESMM K28): maximal skip discovery.
    Fine,
    /// 64×32 tiles (ESMM K24): minimal probe overhead.
    Coarse,
}

impl PatternGranularity {
    /// Dense-operand rows per tile (the `k` direction of `B`).
    pub fn tile_k(self) -> usize {
        match self {
            PatternGranularity::Fine => 8,
            PatternGranularity::Coarse => 64,
        }
    }

    /// Output columns per tile (the warp-uniform strip width).
    pub fn tile_n(self) -> usize {
        32
    }

    /// Short name for kernel tags (`g8` / `g64`).
    pub fn tag(self) -> &'static str {
        match self {
            PatternGranularity::Fine => "g8",
            PatternGranularity::Coarse => "g64",
        }
    }
}

/// A per-tile liveness bitmap over a dense `k x n` operand.
///
/// Bit `kt * ntiles + nt` is 1 when tile `(kt, nt)` contains any element
/// whose bit pattern is not `+0.0`. Trailing ragged tiles (when `k % tile_k`
/// or `n % 32` is nonzero) cover only the in-bounds remainder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternLut {
    rows: usize,
    cols: usize,
    granularity: PatternGranularity,
    ktiles: usize,
    ntiles: usize,
    words: Vec<u64>,
    live_tiles: u64,
}

impl PatternLut {
    /// Scan the dense operand and build the liveness bitmap.
    ///
    /// `b` must be row-major (the layout every Sputnik kernel consumes).
    /// Cost is one pass over the operand; the LUT itself is
    /// `ceil(ktiles * ntiles / 64)` words — 4096×4096 at fine granularity is
    /// 8 KiB.
    pub fn build<T: Scalar>(b: &Matrix<T>, granularity: PatternGranularity) -> Self {
        assert_eq!(
            b.layout(),
            Layout::RowMajor,
            "pattern LUTs tile row-major operands"
        );
        let rows = b.rows();
        let cols = b.cols();
        let tile_k = granularity.tile_k();
        let tile_n = granularity.tile_n();
        let ktiles = rows.div_ceil(tile_k).max(usize::from(rows == 0));
        let ntiles = cols.div_ceil(tile_n).max(usize::from(cols == 0));
        let bits = ktiles * ntiles;
        let mut words = vec![0u64; bits.div_ceil(64).max(1)];
        let data = b.as_slice();
        for r in 0..rows {
            let kt = r / tile_k;
            let row = &data[r * cols..(r + 1) * cols];
            for (nt, chunk) in row.chunks(tile_n).enumerate() {
                // Dead means every element is exactly +0.0; -0.0 (or any
                // nonzero bit pattern) marks the tile live — see the module
                // docs for why the bit-identity argument needs this.
                if chunk.iter().any(|v| v.to_f32().to_bits() != 0) {
                    let bit = kt * ntiles + nt;
                    words[bit / 64] |= 1u64 << (bit % 64);
                }
            }
        }
        let live_tiles = words.iter().map(|w| w.count_ones() as u64).sum();
        Self {
            rows,
            cols,
            granularity,
            ktiles,
            ntiles,
            words,
            live_tiles,
        }
    }

    /// Dense-operand shape this LUT was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }
    pub fn cols(&self) -> usize {
        self.cols
    }
    pub fn granularity(&self) -> PatternGranularity {
        self.granularity
    }
    /// Tiles along the `k` (dense-operand row) direction.
    pub fn ktiles(&self) -> usize {
        self.ktiles
    }
    /// Tiles along the `n` (output column) direction.
    pub fn ntiles(&self) -> usize {
        self.ntiles
    }
    /// Total tiles in the bitmap.
    pub fn tiles_total(&self) -> u64 {
        (self.ktiles * self.ntiles) as u64
    }
    /// Tiles containing at least one nonzero.
    pub fn tiles_live(&self) -> u64 {
        self.live_tiles
    }
    /// Tiles that are entirely `+0.0` — the skippable fraction's numerator.
    pub fn tiles_dead(&self) -> u64 {
        self.tiles_total() - self.live_tiles
    }
    /// Fraction of tiles that are dead (0.0 for a fully dense operand).
    pub fn dead_fraction(&self) -> f64 {
        if self.tiles_total() == 0 {
            return 0.0;
        }
        self.tiles_dead() as f64 / self.tiles_total() as f64
    }

    /// The bitmap words (for buffer-footprint declarations).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Is tile `(kt, nt)` live?
    #[inline]
    pub fn is_live(&self, kt: usize, nt: usize) -> bool {
        debug_assert!(kt < self.ktiles && nt < self.ntiles);
        let bit = kt * self.ntiles + nt;
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// The tile row covering dense-operand row `col` (a sparse nonzero's
    /// column index).
    #[inline]
    pub fn ktile_of(&self, col: usize) -> usize {
        col / self.granularity.tile_k()
    }

    /// The tile column covering output column `n_off`.
    #[inline]
    pub fn ntile_of(&self, n_off: usize) -> usize {
        n_off / self.granularity.tile_n()
    }

    /// Probe liveness for a sparse nonzero with column `col` against the
    /// output tile containing column `n_off`.
    #[inline]
    pub fn live_for(&self, col: usize, n_off: usize) -> bool {
        self.is_live(self.ktile_of(col), self.ntile_of(n_off))
    }

    /// Byte address of the bitmap word holding tile `(kt, nt)` — the address
    /// a kernel's LUT probe actually loads.
    #[inline]
    pub fn word_addr(&self, kt: usize, nt: usize) -> u64 {
        ((kt * self.ntiles + nt) / 64) as u64 * 8
    }

    /// An order-independent content fingerprint (dims, granularity, bits) —
    /// the LaunchCache key component that keeps runs with different
    /// activation patterns from replaying each other's stats.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the words plus the geometry, matching the fingerprint
        // discipline elsewhere: lengths are folded so prefixes cannot alias.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.rows as u64);
        fold(self.cols as u64);
        fold(self.granularity.tile_k() as u64);
        fold(self.words.len() as u64);
        for &w in &self.words {
            fold(w);
        }
        h
    }

    /// Count the warp-uniform probes a joint kernel would issue for sparse
    /// topology `a` against every output tile, and how many hit dead tiles:
    /// `(probes_total, probes_dead)`. One probe covers one
    /// `(row, distinct k-tile, n-tile)` triple — the amortization unit of
    /// the skip model. These are the `joint_tiles_total` /
    /// `joint_tiles_skipped` metrics.
    pub fn probe_stats<T: Scalar>(&self, a: &crate::csr::CsrMatrix<T>) -> (u64, u64) {
        assert_eq!(a.cols(), self.rows, "LUT must tile the SpMM dense operand");
        let mut total = 0u64;
        let mut dead = 0u64;
        let mut kts: Vec<usize> = Vec::new();
        for r in 0..a.rows() {
            let (cols, _) = a.row(r);
            kts.clear();
            for &c in cols {
                let kt = self.ktile_of(c as usize);
                // Column indices are sorted, so distinct k-tiles appear as
                // boundary crossings.
                if kts.last() != Some(&kt) {
                    kts.push(kt);
                }
            }
            for &kt in &kts {
                for nt in 0..self.ntiles {
                    total += 1;
                    dead += u64::from(!self.is_live(kt, nt));
                }
            }
        }
        (total, dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn lut_of(m: &Matrix<f32>, g: PatternGranularity) -> PatternLut {
        PatternLut::build(m, g)
    }

    #[test]
    fn all_zero_operand_is_fully_dead() {
        let b = Matrix::<f32>::zeros(64, 64);
        for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
            let lut = lut_of(&b, g);
            assert_eq!(lut.tiles_live(), 0);
            assert_eq!(lut.dead_fraction(), 1.0);
            assert_eq!(lut.tiles_total(), (64 / g.tile_k() * 2) as u64);
        }
    }

    #[test]
    fn fully_dense_operand_has_no_dead_tiles() {
        let b = Matrix::<f32>::from_fn(64, 64, |r, c| (r + c + 1) as f32);
        for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
            let lut = lut_of(&b, g);
            assert_eq!(lut.tiles_dead(), 0);
            assert_eq!(lut.dead_fraction(), 0.0);
        }
    }

    #[test]
    fn single_nonzero_marks_exactly_one_tile_per_granularity() {
        let mut b = Matrix::<f32>::zeros(128, 64);
        b.set(70, 40, 3.0);
        let fine = lut_of(&b, PatternGranularity::Fine);
        assert_eq!(fine.tiles_live(), 1);
        assert!(fine.is_live(70 / 8, 40 / 32));
        assert!(!fine.is_live(0, 0));
        let coarse = lut_of(&b, PatternGranularity::Coarse);
        assert_eq!(coarse.tiles_live(), 1);
        assert!(coarse.is_live(70 / 64, 40 / 32));
    }

    #[test]
    fn ragged_trailing_tiles_cover_the_remainder() {
        // 13 rows x 37 cols: ragged in both directions at fine granularity.
        let mut b = Matrix::<f32>::zeros(13, 37);
        b.set(12, 36, 1.0); // lives in the ragged corner tile
        let lut = lut_of(&b, PatternGranularity::Fine);
        assert_eq!(lut.ktiles(), 2);
        assert_eq!(lut.ntiles(), 2);
        assert!(lut.is_live(1, 1));
        assert_eq!(lut.tiles_live(), 1);
        // The ragged tile's liveness came only from in-bounds elements.
        assert!(!lut.is_live(0, 0));
        assert!(!lut.is_live(1, 0));
    }

    #[test]
    fn one_row_matrix_tiles_correctly() {
        let mut b = Matrix::<f32>::zeros(1, 100);
        b.set(0, 99, 2.0);
        for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
            let lut = lut_of(&b, g);
            assert_eq!(lut.ktiles(), 1);
            assert_eq!(lut.ntiles(), 4);
            assert!(lut.is_live(0, 3));
            assert_eq!(lut.tiles_live(), 1);
            assert!(lut.live_for(0, 99));
            assert!(!lut.live_for(0, 0));
        }
    }

    #[test]
    fn negative_zero_keeps_a_tile_live() {
        // -0.0 must not count as dead: skipping fma(v, -0.0, acc) could flip
        // an accumulator's zero sign (see module docs).
        let mut b = Matrix::<f32>::zeros(8, 32);
        b.set(3, 7, -0.0);
        let lut = lut_of(&b, PatternGranularity::Fine);
        assert_eq!(lut.tiles_live(), 1);
    }

    #[test]
    fn lut_dense_round_trip_equivalence() {
        // Both directions of the soundness contract, on a random operand:
        // every nonzero element's covering tile is live, and every live tile
        // contains at least one nonzero element.
        let b = {
            let mut m = Matrix::<f32>::random(96, 96, 42);
            // Punch dead 8x32 blocks and dead element runs.
            for r in 0..96 {
                for c in 0..96 {
                    if (r / 8 + c / 32) % 3 == 0 || (r * 96 + c) % 7 == 0 {
                        m.set(r, c, 0.0);
                    }
                }
            }
            m
        };
        for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
            let lut = lut_of(&b, g);
            // nonzero element => live tile.
            for r in 0..96 {
                for c in 0..96 {
                    if b.get(r, c) != 0.0 {
                        assert!(lut.is_live(r / g.tile_k(), c / g.tile_n()));
                    }
                }
            }
            // live tile => some nonzero element within its extent.
            for kt in 0..lut.ktiles() {
                for nt in 0..lut.ntiles() {
                    if !lut.is_live(kt, nt) {
                        continue;
                    }
                    let mut found = false;
                    for r in kt * g.tile_k()..((kt + 1) * g.tile_k()).min(96) {
                        for c in nt * g.tile_n()..((nt + 1) * g.tile_n()).min(96) {
                            found |= b.get(r, c) != 0.0;
                        }
                    }
                    assert!(found, "tile ({kt},{nt}) live without a nonzero");
                }
            }
        }
    }

    #[test]
    fn coarse_is_an_upper_bound_on_fine() {
        // A live fine tile forces its covering coarse tile live.
        let b = gen::activations(256, 128, 0.7, 11);
        let fine = lut_of(&b, PatternGranularity::Fine);
        let coarse = lut_of(&b, PatternGranularity::Coarse);
        for kt in 0..fine.ktiles() {
            for nt in 0..fine.ntiles() {
                if fine.is_live(kt, nt) {
                    assert!(coarse.is_live(kt / 8, nt));
                }
            }
        }
        // Fine finds at least as many dead tiles proportionally.
        assert!(fine.dead_fraction() >= coarse.dead_fraction());
    }

    #[test]
    fn fingerprint_tracks_content_and_geometry() {
        let b1 = gen::activations(64, 64, 0.5, 1);
        let b2 = gen::activations(64, 64, 0.5, 2);
        let f1 = lut_of(&b1, PatternGranularity::Fine);
        assert_eq!(
            f1.fingerprint(),
            lut_of(&b1, PatternGranularity::Fine).fingerprint()
        );
        assert_ne!(
            f1.fingerprint(),
            lut_of(&b2, PatternGranularity::Fine).fingerprint()
        );
        assert_ne!(
            f1.fingerprint(),
            lut_of(&b1, PatternGranularity::Coarse).fingerprint()
        );
    }

    #[test]
    fn probe_stats_count_dead_probes() {
        // Dense operand with the top half dead: probes into dead k-tiles
        // from matching sparse columns must be counted.
        let mut b = Matrix::<f32>::from_fn(64, 64, |r, c| (r + c) as f32 + 1.0);
        for r in 0..32 {
            for c in 0..64 {
                b.set(r, c, 0.0);
            }
        }
        let lut = lut_of(&b, PatternGranularity::Fine);
        let a = gen::uniform(16, 64, 0.5, 3);
        let (total, dead) = lut.probe_stats(&a);
        assert!(total > 0);
        assert!(dead > 0, "columns under 32 must probe dead tiles");
        assert!(dead < total, "columns over 32 must probe live tiles");
    }
}
