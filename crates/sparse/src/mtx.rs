//! Matrix Market (.mtx) I/O — the interchange format the SuiteSparse
//! collection (the paper's scientific-computing corpus) is distributed in.
//!
//! Supports the `matrix coordinate real/integer/pattern general|symmetric`
//! subset, which covers the overwhelming majority of SuiteSparse files:
//! a header line, optional `%` comments, a `rows cols nnz` size line, and
//! one `row col [value]` triplet per line (1-indexed).

use crate::coo::{CooMatrix, DuplicatePolicy};
use crate::csr::CsrMatrix;
use std::io::{self, BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    Io(io::Error),
    Parse(String),
    Unsupported(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "io error: {e}"),
            MtxError::Parse(m) => write!(f, "parse error: {m}"),
            MtxError::Unsupported(m) => write!(f, "unsupported matrix market variant: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<io::Error> for MtxError {
    fn from(e: io::Error) -> Self {
        MtxError::Io(e)
    }
}

/// Read a Matrix Market file into CSR. Symmetric matrices are expanded
/// (mirror entries added); pattern matrices get unit values.
pub fn read_mtx<R: BufRead>(r: R) -> Result<CsrMatrix<f32>, MtxError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| MtxError::Parse("empty file".into()))??;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MtxError::Parse(format!("bad header: '{header}'")));
    }
    if tokens[2] != "coordinate" {
        return Err(MtxError::Unsupported(format!(
            "format '{}' (only coordinate)",
            tokens[2]
        )));
    }
    let field = tokens[3].as_str();
    let pattern = match field {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(MtxError::Unsupported(format!("field '{other}'"))),
    };
    // The banner requires all five tokens; a missing symmetry token is a
    // malformed header, not implicitly `general` — guessing here silently
    // mis-reads symmetric matrices written by sloppy producers.
    let symmetry = tokens.get(4).ok_or_else(|| {
        MtxError::Parse(format!(
            "header missing symmetry token (general|symmetric): '{header}'"
        ))
    })?;
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(MtxError::Unsupported(format!("symmetry '{other}'"))),
    };

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| MtxError::Parse("missing size line".into()))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| MtxError::Parse(format!("size: {e}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MtxError::Parse(format!(
            "size line needs 'rows cols nnz', got '{size_line}'"
        )));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(rows, cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: usize = parts
            .next()
            .ok_or_else(|| MtxError::Parse(format!("short entry line: '{t}'")))?
            .parse()
            .map_err(|e| MtxError::Parse(format!("row: {e}")))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| MtxError::Parse(format!("short entry line: '{t}'")))?
            .parse()
            .map_err(|e| MtxError::Parse(format!("col: {e}")))?;
        let v: f32 = if pattern {
            1.0
        } else {
            parts
                .next()
                .ok_or_else(|| MtxError::Parse(format!("missing value: '{t}'")))?
                .parse()
                .map_err(|e| MtxError::Parse(format!("value: {e}")))?
        };
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MtxError::Parse(format!(
                "entry ({r},{c}) out of 1-indexed bounds"
            )));
        }
        coo.push(r - 1, c - 1, v)
            .map_err(|e| MtxError::Parse(e.to_string()))?;
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v)
                .map_err(|e| MtxError::Parse(e.to_string()))?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MtxError::Parse(format!(
            "header claims {nnz} entries, found {seen}"
        )));
    }
    coo.to_csr(DuplicatePolicy::Sum)
        .map_err(|e| MtxError::Parse(e.to_string()))
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_mtx<W: Write>(m: &CsrMatrix<f32>, mut w: W) -> Result<(), MtxError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sputnik-rs")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let m = gen::uniform(24, 32, 0.8, 951);
        let mut buf = Vec::new();
        write_mtx(&m, &mut buf).unwrap();
        let back = read_mtx(io::BufReader::new(&buf[..])).unwrap();
        assert!(m.same_pattern(&back));
        for (a, b) in m.values().iter().zip(back.values()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parses_pattern_and_comments() {
        let text =
            b"%%MatrixMarket matrix coordinate pattern general\n% comment\n\n2 3 2\n1 1\n2 3\n";
        let m = read_mtx(io::BufReader::new(&text[..])).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.values(), &[1.0, 1.0]);
        assert_eq!(m.to_dense().get(1, 2), 1.0);
    }

    #[test]
    fn expands_symmetric() {
        let text =
            b"%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 5.0\n2 1 2.0\n3 2 4.0\n";
        let m = read_mtx(io::BufReader::new(&text[..])).unwrap();
        assert_eq!(m.nnz(), 5, "off-diagonal entries mirrored, diagonal not");
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 0), 2.0);
        assert_eq!(d.get(1, 2), 4.0);
        assert_eq!(d.get(0, 0), 5.0);
    }

    #[test]
    fn rejects_missing_symmetry_token() {
        // A four-token banner is malformed, not implicitly `general`.
        let text = b"%%MatrixMarket matrix coordinate real\n1 1 1\n1 1 2.0\n";
        let e = read_mtx(io::BufReader::new(&text[..]));
        assert!(matches!(e, Err(MtxError::Parse(msg)) if msg.contains("symmetry")));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(read_mtx(io::BufReader::new(&b"not a header\n"[..])).is_err());
        assert!(read_mtx(io::BufReader::new(
            &b"%%MatrixMarket matrix array real general\n2 2\n"[..]
        ))
        .is_err());
        // nnz mismatch.
        assert!(read_mtx(io::BufReader::new(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"[..]
        ))
        .is_err());
        // out-of-bounds (1-indexed).
        assert!(read_mtx(io::BufReader::new(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"[..]
        ))
        .is_err());
    }
}
