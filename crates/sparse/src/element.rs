//! Scalar element abstraction shared by all kernels.
//!
//! Kernels are generic over the stored element type: `f32` for the paper's
//! single-precision kernels and [`Half`] for the mixed-precision kernels
//! (16-bit storage, 32-bit accumulation).

use crate::f16::Half;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A scalar that can be stored in matrices and processed by kernels.
///
/// Arithmetic is always performed in f32 — exactly the paper's
/// mixed-precision scheme — so the trait only needs conversions.
pub trait Scalar: Copy + Clone + Debug + Default + Send + Sync + PartialEq + 'static {
    /// Bytes occupied by one element in device memory.
    const BYTES: u32;
    /// Human-readable precision tag for kernel names ("f32", "f16").
    const TAG: &'static str;

    fn to_f32(self) -> f32;
    fn from_f32(v: f32) -> Self;

    fn zero() -> Self {
        Self::from_f32(0.0)
    }
}

impl Scalar for f32 {
    const BYTES: u32 = 4;
    const TAG: &'static str = "f32";

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
}

impl Scalar for Half {
    const BYTES: u32 = 2;
    const TAG: &'static str = "f16";

    #[inline]
    fn to_f32(self) -> f32 {
        Half::to_f32(self)
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        Half::from_f32(v)
    }
}

/// Sparse-matrix metadata (column index) width.
///
/// The paper's mixed-precision kernels use 16-bit indices ("due to the
/// reduced representational capacity of 16-bit integers, we do not perform
/// our index pre-scaling optimization for mixed-precision kernels"), while
/// cuSPARSE only supports 32-bit indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexWidth {
    U16,
    U32,
}

impl IndexWidth {
    pub const fn bytes(self) -> u32 {
        match self {
            IndexWidth::U16 => 2,
            IndexWidth::U32 => 4,
        }
    }

    /// Whether a matrix with `cols` columns can be indexed at this width.
    pub const fn can_index(self, cols: usize) -> bool {
        match self {
            IndexWidth::U16 => cols <= u16::MAX as usize + 1,
            IndexWidth::U32 => cols <= u32::MAX as usize + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_is_identity() {
        assert_eq!(<f32 as Scalar>::from_f32(1.25), 1.25);
        assert_eq!(1.25f32.to_f32(), 1.25);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
    }

    #[test]
    fn half_roundtrips_through_trait() {
        let h = <Half as Scalar>::from_f32(0.5);
        assert_eq!(Scalar::to_f32(h), 0.5);
        assert_eq!(<Half as Scalar>::BYTES, 2);
    }

    #[test]
    fn index_widths() {
        assert!(IndexWidth::U16.can_index(65536));
        assert!(!IndexWidth::U16.can_index(65537));
        assert!(IndexWidth::U32.can_index(1 << 20));
        assert_eq!(IndexWidth::U16.bytes(), 2);
    }
}
