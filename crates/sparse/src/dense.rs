//! Dense matrices.
//!
//! The paper stores dense operands row-major for its kernels (Section IV-C)
//! and notes that cuSPARSE uses column-major dense operands; both layouts
//! are supported so the baselines' strided-access penalties are real.

use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// Storage order of a dense matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// C order: element (r, c) at `r * cols + c`. Used by our kernels.
    RowMajor,
    /// Fortran order: element (r, c) at `c * rows + r`. Used by cuSPARSE.
    ColMajor,
}

/// A dense matrix of `Scalar` elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            layout: Layout::RowMajor,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// A zero-filled matrix with an explicit layout.
    pub fn zeros_with_layout(rows: usize, cols: usize, layout: Layout) -> Self {
        Self {
            rows,
            cols,
            layout,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, T::from_f32(f(r, c)));
            }
        }
        m
    }

    /// Build from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self {
            rows,
            cols,
            layout: Layout::RowMajor,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        match self.layout {
            Layout::RowMajor => r * self.cols + c,
            Layout::ColMajor => c * self.rows + r,
        }
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[self.index(r, c)]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        let i = self.index(r, c);
        self.data[i] = v;
    }

    /// Flat storage access (layout order).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// A contiguous row slice (row-major matrices only).
    pub fn row(&self, r: usize) -> &[T] {
        assert_eq!(
            self.layout,
            Layout::RowMajor,
            "row() requires row-major layout"
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Convert to the other layout (physically rearranging storage).
    pub fn to_layout(&self, layout: Layout) -> Matrix<T> {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Matrix::zeros_with_layout(self.rows, self.cols, layout);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
        }
        out
    }

    /// Logical transpose (returns a row-major matrix of shape cols x rows).
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Convert elements to f32.
    pub fn to_f32(&self) -> Matrix<f32> {
        let mut out = Matrix::zeros_with_layout(self.rows, self.cols, self.layout);
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = v.to_f32();
        }
        out
    }

    /// Memory footprint in bytes at this element width.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * T::BYTES as u64
    }

    /// Maximum absolute elementwise difference vs `other` (in f32).
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f32;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let d = (self.get(r, c).to_f32() - other.get(r, c).to_f32()).abs();
                if d > worst {
                    worst = d;
                }
            }
        }
        worst
    }
}

impl Matrix<f32> {
    /// Reference dense matmul: `self (m x k) * other (k x n)`. Used to
    /// validate every kernel in the workspace.
    pub fn matmul(&self, other: &Matrix<f32>) -> Matrix<f32> {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += self.get(i, l) * other.get(l, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Fill with deterministic pseudo-random values in [-1, 1).
    pub fn fill_random(&mut self, seed: u64) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for v in self.data.iter_mut() {
            *v = rng.random_range(-1.0..1.0);
        }
    }

    /// A random matrix with the given shape and seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut m = Matrix::zeros(rows, cols);
        m.fill_random(seed);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::Half;

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::<f32>::zeros(3, 4);
        m.set(2, 3, 5.0);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn layouts_agree_logically() {
        let rm = Matrix::<f32>::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let cm = rm.to_layout(Layout::ColMajor);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(rm.get(r, c), cm.get(r, c));
            }
        }
        // But physical order differs.
        assert_ne!(rm.as_slice(), cm.as_slice());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::<f32>::random(7, 4, 42);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::<f32>::random(4, 4, 1);
        let eye = Matrix::<f32>::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::<f32>::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::<f32>::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn half_matrix_bytes() {
        let m = Matrix::<Half>::zeros(10, 10);
        assert_eq!(m.bytes(), 200);
        let f = Matrix::<f32>::zeros(10, 10);
        assert_eq!(f.bytes(), 400);
    }

    #[test]
    fn row_slice() {
        let m = Matrix::<f32>::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Matrix::<f32>::random(5, 5, 99);
        let b = Matrix::<f32>::random(5, 5, 99);
        assert_eq!(a, b);
        let c = Matrix::<f32>::random(5, 5, 100);
        assert_ne!(a, c);
    }
}
