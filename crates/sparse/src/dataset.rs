//! Synthetic corpora standing in for the paper's matrix datasets.
//!
//! The paper benchmarks on 3,012 weight matrices from pruned ResNet-50 and
//! Transformer checkpoints (the "State of Sparsity" study) and contrasts
//! their statistics with 2,833 SuiteSparse matrices. Neither collection is
//! available here, so we generate matrices with the same layer shapes and
//! calibrated row-length statistics (see `DESIGN.md`, substitution table).
//! The kernels only observe (shape, sparsity, row-length distribution), so
//! calibrated synthetic matrices preserve the benchmark's behaviour.
//!
//! One deliberate scaling substitution: the paper's ResNet-50 training batch
//! is 256; simulating N = 3136 x 256 functionally is beyond this host, so the
//! corpus uses a training batch of 32 for ResNet-50 (documented in
//! EXPERIMENTS.md). Transformer batches match the paper (1 and 8).

use crate::csr::CsrMatrix;
use crate::gen;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Model family a weight matrix came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelFamily {
    Transformer,
    ResNet50,
}

/// The four sparsification algorithms of the source study; each leaves a
/// characteristic amount of row-length variation in the pruned matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruningMethod {
    MagnitudePruning,
    VariationalDropout,
    L0Regularization,
    RandomPruning,
}

impl PruningMethod {
    pub const ALL: [PruningMethod; 4] = [
        PruningMethod::MagnitudePruning,
        PruningMethod::VariationalDropout,
        PruningMethod::L0Regularization,
        PruningMethod::RandomPruning,
    ];

    /// Row-length CoV this method typically leaves behind. Calibrated so the
    /// corpus mean CoV lands near the paper's Figure 2 (≈0.2 for DL
    /// matrices, 25x below SuiteSparse's ≈5).
    pub fn row_cov(self) -> f64 {
        match self {
            PruningMethod::MagnitudePruning => 0.17,
            PruningMethod::VariationalDropout => 0.35,
            PruningMethod::L0Regularization => 0.28,
            PruningMethod::RandomPruning => 0.06,
        }
    }
}

/// One benchmark problem: a sparse weight matrix plus the N dimension its
/// SpMM/SDDMM sees per batch element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    pub model: ModelFamily,
    /// Layer name, e.g. `"block3/conv1x1_expand"`.
    pub layer: &'static str,
    /// Output features (M, rows of the sparse weight matrix).
    pub rows: usize,
    /// Input features (K, columns of the sparse weight matrix).
    pub cols: usize,
    /// N per batch element: sequence length (Transformer) or spatial size
    /// H*W (convolutions).
    pub base_n: usize,
    pub sparsity: f64,
    pub method: PruningMethod,
    /// Checkpoint replica index (the study trained several seeds per
    /// configuration).
    pub replica: u32,
}

impl ProblemSpec {
    /// Deterministic seed derived from the spec's identity.
    pub fn seed(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        mix(self.base_n as u64);
        mix((self.sparsity * 1e6) as u64);
        mix(self.method as u64);
        mix(self.replica as u64);
        mix(self.layer.len() as u64);
        h
    }

    /// Materialize the sparse weight matrix.
    pub fn generate(&self) -> CsrMatrix<f32> {
        gen::with_cov(
            self.rows,
            self.cols,
            self.sparsity,
            self.method.row_cov(),
            self.seed(),
        )
    }

    /// The SpMM N dimension at a given batch size. Inference problems pad N
    /// to a multiple of four, as the paper does "to enable vector memory
    /// instructions".
    pub fn n(&self, batch: usize) -> usize {
        let n = self.base_n * batch;
        n.div_ceil(4) * 4
    }

    /// The batch sizes the corpus benchmarks use (inference, training).
    pub fn batch_sizes(&self) -> (usize, usize) {
        match self.model {
            ModelFamily::Transformer => (1, 8),
            // Paper: (1, 256); scaled to 32 for simulation tractability.
            ModelFamily::ResNet50 => (1, 32),
        }
    }

    /// FLOPs of the sparse matmul at batch `batch` (2 * nnz * N).
    pub fn flops(&self, batch: usize) -> u64 {
        let nnz = (self.rows as f64 * self.cols as f64 * (1.0 - self.sparsity)) as u64;
        2 * nnz * self.n(batch) as u64
    }
}

/// Layer inventory: (name, M, K, base_n).
const TRANSFORMER_LAYERS: &[(&str, usize, usize, usize)] = &[
    ("encoder/self_attention/q_proj", 1024, 1024, 64),
    ("encoder/self_attention/k_proj", 1024, 1024, 64),
    ("encoder/self_attention/v_proj", 1024, 1024, 64),
    ("encoder/self_attention/o_proj", 1024, 1024, 64),
    ("encoder/ffn/intermediate", 4096, 1024, 64),
    ("encoder/ffn/output", 1024, 4096, 64),
];

const RESNET50_LAYERS: &[(&str, usize, usize, usize)] = &[
    // Stage 2 (56x56 = 3136 spatial positions).
    ("block2/conv1x1_reduce", 64, 256, 3136),
    ("block2/conv3x3", 64, 576, 3136),
    ("block2/conv1x1_expand", 256, 64, 3136),
    // Stage 3 (28x28 = 784).
    ("block3/conv1x1_reduce", 128, 512, 784),
    ("block3/conv3x3", 128, 1152, 784),
    ("block3/conv1x1_expand", 512, 128, 784),
    // Stage 4 (14x14 = 196).
    ("block4/conv1x1_reduce", 256, 1024, 196),
    ("block4/conv3x3", 256, 2304, 196),
    ("block4/conv1x1_expand", 1024, 256, 196),
    // Stage 5 (7x7 = 49).
    ("block5/conv1x1_reduce", 512, 2048, 49),
    ("block5/conv3x3", 512, 4608, 49),
    ("block5/conv1x1_expand", 2048, 512, 49),
    // Classifier.
    ("fc1000", 1024, 2048, 1),
];

/// Sparsity levels in the source study's sweeps.
const SPARSITIES: &[f64] = &[0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98];

/// The deep-learning corpus: every (layer x sparsity x method x replica)
/// combination, truncated to exactly the paper's 3,012 matrices.
pub fn dl_corpus() -> Vec<ProblemSpec> {
    let mut specs = Vec::new();
    for replica in 0..6u32 {
        for &method in &PruningMethod::ALL {
            for &sparsity in SPARSITIES {
                for &(layer, rows, cols, base_n) in TRANSFORMER_LAYERS {
                    specs.push(ProblemSpec {
                        model: ModelFamily::Transformer,
                        layer,
                        rows,
                        cols,
                        base_n,
                        sparsity,
                        method,
                        replica,
                    });
                }
                for &(layer, rows, cols, base_n) in RESNET50_LAYERS {
                    specs.push(ProblemSpec {
                        model: ModelFamily::ResNet50,
                        layer,
                        rows,
                        cols,
                        base_n,
                        sparsity,
                        method,
                        replica,
                    });
                }
            }
        }
    }
    specs.truncate(3012);
    specs
}

/// A deterministic sample of the corpus for tractable benchmark sweeps.
pub fn dl_corpus_sample(count: usize, seed: u64) -> Vec<ProblemSpec> {
    let mut specs = dl_corpus();
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates shuffle, then truncate.
    let n = specs.len();
    for i in 0..count.min(n) {
        let j = rng.random_range(i..n);
        specs.swap(i, j);
    }
    specs.truncate(count.min(n));
    specs
}

/// Shape parameters of one synthetic "scientific computing" matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScientificSpec {
    pub rows: usize,
    pub cols: usize,
    pub avg_row_len: f64,
    /// Pareto tail index; smaller = heavier tail = higher CoV.
    pub alpha: f64,
    pub seed: u64,
}

impl ScientificSpec {
    pub fn generate(&self) -> CsrMatrix<f32> {
        gen::power_law(
            self.rows,
            self.cols,
            self.avg_row_len,
            self.alpha,
            self.seed,
        )
    }
}

/// The SuiteSparse stand-in corpus: heavy-tailed, 99%+ sparse matrices with
/// sizes drawn log-uniformly. Matches the Figure 2 histogram statistics
/// (13.4x sparser, 2.3x shorter rows, 25x higher CoV than the DL corpus).
/// Dimensions are capped at 16,384 for generation tractability — the paper's
/// comparison is of *statistics*, which are size-independent here.
pub fn scientific_corpus(count: usize, seed: u64) -> Vec<ScientificSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let log_size = rng.random_range(11.0f64..15.0); // 2^11 .. 2^15
            let n = (2.0f64.powf(log_size)) as usize;
            // SuiteSparse averages ~10^2 nonzeros per row with a long tail;
            // calibrated so the corpus means land on Figure 2's ratios
            // (2.3x shorter rows, 25x higher CoV than the DL corpus).
            let avg = rng.random_range(20.0f64..250.0).min(n as f64 / 8.0);
            let alpha = rng.random_range(1.06f64..1.45);
            ScientificSpec {
                rows: n,
                cols: n,
                avg_row_len: avg,
                alpha,
                seed: seed ^ (i as u64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{matrix_stats, mean};

    #[test]
    fn corpus_has_paper_size() {
        assert_eq!(dl_corpus().len(), 3012);
    }

    #[test]
    fn corpus_sample_is_deterministic_subset() {
        let a = dl_corpus_sample(50, 1);
        let b = dl_corpus_sample(50, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let full = dl_corpus();
        assert!(a.iter().all(|s| full.contains(s)));
    }

    #[test]
    fn specs_generate_matching_matrices() {
        let spec = &dl_corpus()[10];
        let m = spec.generate();
        assert_eq!(m.rows(), spec.rows);
        assert_eq!(m.cols(), spec.cols);
        let s = matrix_stats(&m);
        assert!((s.sparsity - spec.sparsity).abs() < 0.05);
        // Same spec regenerates identically.
        assert_eq!(spec.generate(), m);
    }

    #[test]
    fn inference_n_is_padded_to_four() {
        let spec = ProblemSpec {
            model: ModelFamily::ResNet50,
            layer: "t",
            rows: 64,
            cols: 64,
            base_n: 49,
            sparsity: 0.9,
            method: PruningMethod::MagnitudePruning,
            replica: 0,
        };
        assert_eq!(spec.n(1), 52);
        assert_eq!(spec.n(32), ((49 * 32 / 4) * 4));
    }

    #[test]
    fn corpus_statistics_separate_from_scientific() {
        // Small sample of each corpus; DL must be less sparse, longer-rowed,
        // and far more balanced than scientific — the Figure 2 result.
        let dl: Vec<_> = dl_corpus_sample(12, 3)
            .iter()
            .map(|s| matrix_stats(&s.generate()))
            .collect();
        let sci: Vec<_> = scientific_corpus(6, 3)
            .iter()
            .map(|s| matrix_stats(&s.generate()))
            .collect();
        let dl_sparsity = mean(&dl.iter().map(|s| s.sparsity).collect::<Vec<_>>());
        let sci_sparsity = mean(&sci.iter().map(|s| s.sparsity).collect::<Vec<_>>());
        let dl_cov = mean(&dl.iter().map(|s| s.row_cov).collect::<Vec<_>>());
        let sci_cov = mean(&sci.iter().map(|s| s.row_cov).collect::<Vec<_>>());
        assert!(
            dl_sparsity < sci_sparsity,
            "DL {dl_sparsity} vs sci {sci_sparsity}"
        );
        assert!(
            dl_cov * 3.0 < sci_cov,
            "DL cov {dl_cov} vs sci cov {sci_cov}"
        );
    }
}
