//! Block-sparse matrices (BSR format).
//!
//! The paper's introduction discusses enforcing structure on the nonzero
//! topology — "nonzero values are grouped into blocks \[12\]-\[14\]. While this
//! approach is able to recover much of the performance achieved by dense
//! computation, the constraint on the location of nonzeros can significantly
//! degrade model quality relative to unstructured sparsity." This module
//! provides the block format, block-granular magnitude pruning, and the
//! quality proxy used by the structured-vs-unstructured extension study
//! (`ext_block_sparse` in the bench crate): how much weight magnitude block
//! pruning retains relative to unstructured pruning at equal parameter
//! count.

use crate::csr::CsrMatrix;
use crate::dense::Matrix;
use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// A block compressed sparse row matrix: square `block_size` x `block_size`
/// dense blocks at block-granular CSR coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BsrMatrix<T> {
    rows: usize,
    cols: usize,
    block_size: usize,
    /// Block-row offsets (length `rows / block_size + 1`).
    block_row_offsets: Vec<u32>,
    /// Block-column indices, sorted within each block row.
    block_col_indices: Vec<u32>,
    /// Block payloads, `block_size^2` each, row-major within the block.
    blocks: Vec<T>,
}

impl<T: Scalar> BsrMatrix<T> {
    /// Extract every block containing at least one nonzero from a dense
    /// matrix. Dimensions must be multiples of `block_size`.
    pub fn from_dense(dense: &Matrix<T>, block_size: usize) -> Self {
        assert!(block_size > 0);
        assert_eq!(
            dense.rows() % block_size,
            0,
            "rows must be a multiple of the block size"
        );
        assert_eq!(
            dense.cols() % block_size,
            0,
            "cols must be a multiple of the block size"
        );
        let brows = dense.rows() / block_size;
        let bcols = dense.cols() / block_size;
        let mut block_row_offsets = vec![0u32];
        let mut block_col_indices = Vec::new();
        let mut blocks = Vec::new();
        for br in 0..brows {
            for bc in 0..bcols {
                let mut any = false;
                'scan: for r in 0..block_size {
                    for c in 0..block_size {
                        if dense.get(br * block_size + r, bc * block_size + c).to_f32() != 0.0 {
                            any = true;
                            break 'scan;
                        }
                    }
                }
                if any {
                    block_col_indices.push(bc as u32);
                    for r in 0..block_size {
                        for c in 0..block_size {
                            blocks.push(dense.get(br * block_size + r, bc * block_size + c));
                        }
                    }
                }
            }
            block_row_offsets.push(block_col_indices.len() as u32);
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            block_size,
            block_row_offsets,
            block_col_indices,
            blocks,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    pub fn block_rows(&self) -> usize {
        self.rows / self.block_size
    }

    /// Number of stored blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.block_col_indices.len()
    }

    /// Stored elements (including explicit zeros inside blocks).
    pub fn stored_elements(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of *blocks* that are zero.
    pub fn block_sparsity(&self) -> f64 {
        let total = (self.rows / self.block_size) * (self.cols / self.block_size);
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz_blocks() as f64 / total as f64
    }

    /// Blocks in block-row `br`: `(block_col, payload)` pairs.
    pub fn block_row(&self, br: usize) -> impl Iterator<Item = (usize, &[T])> + Clone + '_ {
        let s = self.block_row_offsets[br] as usize;
        let e = self.block_row_offsets[br + 1] as usize;
        let bb = self.block_size * self.block_size;
        (s..e).map(move |i| {
            (
                self.block_col_indices[i] as usize,
                &self.blocks[i * bb..(i + 1) * bb],
            )
        })
    }

    /// Blocks per block-row (for load-balance analysis).
    pub fn block_row_len(&self, br: usize) -> usize {
        (self.block_row_offsets[br + 1] - self.block_row_offsets[br]) as usize
    }

    /// Densify.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let b = self.block_size;
        for br in 0..self.block_rows() {
            for (bc, payload) in self.block_row(br) {
                for r in 0..b {
                    for c in 0..b {
                        out.set(br * b + r, bc * b + c, payload[r * b + c]);
                    }
                }
            }
        }
        out
    }

    /// Device memory footprint: payloads + block metadata.
    pub fn bytes(&self) -> u64 {
        self.blocks.len() as u64 * T::BYTES as u64
            + self.block_col_indices.len() as u64 * 4
            + self.block_row_offsets.len() as u64 * 4
    }
}

/// Block-granular magnitude pruning: keep the blocks with the largest L1
/// norms such that the *element-level* sparsity reaches `sparsity` (every
/// kept block stores all `block_size^2` elements, zeros included — the
/// structured constraint).
pub fn block_prune(dense: &Matrix<f32>, block_size: usize, sparsity: f64) -> BsrMatrix<f32> {
    assert!((0.0..=1.0).contains(&sparsity));
    assert_eq!(dense.rows() % block_size, 0);
    assert_eq!(dense.cols() % block_size, 0);
    let brows = dense.rows() / block_size;
    let bcols = dense.cols() / block_size;
    let total_blocks = brows * bcols;
    let keep_blocks = ((total_blocks as f64) * (1.0 - sparsity)).round() as usize;

    // Rank blocks by L1 norm.
    let mut norms: Vec<(f32, usize)> = (0..total_blocks)
        .map(|i| {
            let (br, bc) = (i / bcols, i % bcols);
            let mut norm = 0.0f32;
            for r in 0..block_size {
                for c in 0..block_size {
                    norm += dense.get(br * block_size + r, bc * block_size + c).abs();
                }
            }
            (norm, i)
        })
        .collect();
    norms.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut kept = vec![false; total_blocks];
    for &(_, i) in norms.iter().take(keep_blocks) {
        kept[i] = true;
    }

    let mut masked = Matrix::<f32>::zeros(dense.rows(), dense.cols());
    for (i, &k) in kept.iter().enumerate() {
        if !k {
            continue;
        }
        let (br, bc) = (i / bcols, i % bcols);
        for r in 0..block_size {
            for c in 0..block_size {
                let (rr, cc) = (br * block_size + r, bc * block_size + c);
                masked.set(rr, cc, dense.get(rr, cc));
            }
        }
    }
    BsrMatrix::from_dense_with_kept(&masked, block_size, &kept, bcols)
}

impl BsrMatrix<f32> {
    /// Internal: build from a masked dense matrix keeping exactly the chosen
    /// blocks (including all-zero kept blocks, which `from_dense` would drop).
    fn from_dense_with_kept(
        dense: &Matrix<f32>,
        block_size: usize,
        kept: &[bool],
        bcols: usize,
    ) -> Self {
        let brows = dense.rows() / block_size;
        let mut block_row_offsets = vec![0u32];
        let mut block_col_indices = Vec::new();
        let mut blocks = Vec::new();
        for br in 0..brows {
            for bc in 0..bcols {
                if !kept[br * bcols + bc] {
                    continue;
                }
                block_col_indices.push(bc as u32);
                for r in 0..block_size {
                    for c in 0..block_size {
                        blocks.push(dense.get(br * block_size + r, bc * block_size + c));
                    }
                }
            }
            block_row_offsets.push(block_col_indices.len() as u32);
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            block_size,
            block_row_offsets,
            block_col_indices,
            blocks,
        }
    }
}

/// Quality proxy for the structured-vs-unstructured tradeoff: the fraction
/// of total weight magnitude that block pruning retains, divided by what
/// unstructured magnitude pruning retains at the same parameter budget.
/// 1.0 means structure costs nothing; lower values quantify the paper's
/// "constraint on the location of nonzeros can significantly degrade model
/// quality".
pub fn block_magnitude_retention(dense: &Matrix<f32>, block_size: usize, sparsity: f64) -> f64 {
    let blocked = block_prune(dense, block_size, sparsity);
    let kept_block: f64 = blocked
        .to_dense()
        .as_slice()
        .iter()
        .map(|v| v.abs() as f64)
        .sum();

    // Unstructured: top-k |w| at the same kept-parameter count.
    let kept_params = blocked.stored_elements();
    let mut mags: Vec<f32> = dense.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.total_cmp(a));
    let kept_unstructured: f64 = mags.iter().take(kept_params).map(|&v| v as f64).sum();
    if kept_unstructured == 0.0 {
        return 1.0;
    }
    kept_block / kept_unstructured
}

/// Convert a BSR matrix to CSR (dropping explicit zeros), e.g. to run the
/// unstructured kernels on a block topology.
pub fn bsr_to_csr(m: &BsrMatrix<f32>) -> CsrMatrix<f32> {
    CsrMatrix::from_dense(&m.to_dense())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(n: usize, b: usize) -> Matrix<f32> {
        Matrix::from_fn(n, n, |r, c| {
            if ((r / b) + (c / b)).is_multiple_of(2) {
                (r * n + c) as f32 + 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_dense() {
        let d = checkerboard(16, 4);
        let m = BsrMatrix::from_dense(&d, 4);
        assert_eq!(m.to_dense(), d);
        assert_eq!(m.nnz_blocks(), 8); // half of 16 blocks
        assert!((m.block_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn block_prune_keeps_heaviest_blocks() {
        // Magnitudes grow with the linear index, so the bottom-right blocks
        // must survive.
        let d = Matrix::<f32>::from_fn(8, 8, |r, c| (r * 8 + c) as f32);
        let m = block_prune(&d, 4, 0.75); // keep 1 of 4 blocks
        assert_eq!(m.nnz_blocks(), 1);
        let (bc, _) = m
            .block_row(1)
            .next()
            .expect("bottom block row keeps a block");
        assert_eq!(bc, 1, "bottom-right block has the largest norm");
    }

    #[test]
    fn block_prune_hits_target_sparsity() {
        let d = Matrix::<f32>::random(64, 64, 401);
        for &s in &[0.5, 0.75, 0.9] {
            let m = block_prune(&d, 8, s);
            let stored_frac = m.stored_elements() as f64 / (64.0 * 64.0);
            assert!(
                (stored_frac - (1.0 - s)).abs() < 0.05,
                "sparsity {s}: stored {stored_frac}"
            );
        }
    }

    #[test]
    fn retention_degrades_with_block_size() {
        // Bigger blocks constrain the topology more -> lower retention: the
        // quality-vs-structure tradeoff from the paper's introduction.
        let d = Matrix::<f32>::random(128, 128, 402);
        let r1 = block_magnitude_retention(&d, 1, 0.8);
        let r4 = block_magnitude_retention(&d, 4, 0.8);
        let r16 = block_magnitude_retention(&d, 16, 0.8);
        assert!(r1 > 0.999, "1x1 blocks are unstructured pruning, got {r1}");
        assert!(
            r4 < r1 && r16 < r4,
            "retention must degrade: {r1} > {r4} > {r16}"
        );
        assert!(r16 > 0.3, "retention should stay meaningful, got {r16}");
    }

    #[test]
    fn bsr_to_csr_preserves_values() {
        let d = checkerboard(8, 2);
        let m = BsrMatrix::from_dense(&d, 2);
        let csr = bsr_to_csr(&m);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn bytes_accounts_for_padding_zeros() {
        // A single nonzero per block still stores the full block.
        let mut d = Matrix::<f32>::zeros(8, 8);
        d.set(0, 0, 1.0);
        d.set(4, 4, 2.0);
        let m = BsrMatrix::from_dense(&d, 4);
        assert_eq!(m.stored_elements(), 32); // 2 blocks x 16
        assert_eq!(m.bytes(), 32 * 4 + 2 * 4 + 3 * 4);
    }
}
