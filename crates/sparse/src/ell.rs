//! ELLPACK (ELL) format.
//!
//! The GPU-friendly fixed-width format behind the ELLR-T SpMM of Vázquez et
//! al. (reference \[47\] of the paper): every row is padded to the longest
//! row's length and the padded arrays are stored column-major, so
//! thread-per-row kernels read perfectly coalesced columns. The price is
//! padding proportional to the row-length *maximum* — negligible on the
//! low-CoV matrices of deep learning (Figure 2), catastrophic on the heavy-
//! tailed matrices of scientific computing. That asymmetry is exactly why
//! the format family was viable for the paper's problem domain yet CSR won
//! for generality.

use crate::csr::CsrMatrix;
use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// A fixed-width ELL matrix. Storage is column-major over the padded
/// `rows x width` arrays: entry slot `(r, j)` lives at `j * rows + r`, so
/// consecutive rows (= consecutive GPU threads) are adjacent in memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EllMatrix<T> {
    rows: usize,
    cols: usize,
    /// Entries per row (the longest row's nonzero count).
    width: usize,
    /// Per-row true lengths (the "R" in ELLR-T: rows stop early).
    row_lengths: Vec<u32>,
    /// `rows * width` column indices; padding slots hold 0.
    col_indices: Vec<u32>,
    /// `rows * width` values; padding slots hold zero.
    values: Vec<T>,
}

impl<T: Scalar> EllMatrix<T> {
    /// Convert from CSR. The width is the maximum row length.
    pub fn from_csr(csr: &CsrMatrix<T>) -> Self {
        let rows = csr.rows();
        let width = csr.max_row_len();
        let mut col_indices = vec![0u32; rows * width];
        let mut values = vec![T::zero(); rows * width];
        let mut row_lengths = Vec::with_capacity(rows);
        for r in 0..rows {
            let (cols, vals) = csr.row(r);
            row_lengths.push(cols.len() as u32);
            for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                col_indices[j * rows + r] = c;
                values[j * rows + r] = v;
            }
        }
        Self {
            rows,
            cols: csr.cols(),
            width,
            row_lengths,
            col_indices,
            values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn row_length(&self, r: usize) -> usize {
        self.row_lengths[r] as usize
    }

    /// Entry slot `(r, j)` (may be padding).
    #[inline]
    pub fn slot(&self, r: usize, j: usize) -> (u32, T) {
        let i = j * self.rows + r;
        (self.col_indices[i], self.values[i])
    }

    /// True stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_lengths.iter().map(|&l| l as usize).sum()
    }

    /// Padding slots / true nonzeros — the format's waste factor. Roughly
    /// `max_row_len / avg_row_len - 1`, which Figure 2's CoV statistic
    /// predicts: near zero for DL matrices, large for scientific ones.
    pub fn padding_overhead(&self) -> f64 {
        let nnz = self.nnz();
        if nnz == 0 {
            return 0.0;
        }
        (self.rows * self.width) as f64 / nnz as f64 - 1.0
    }

    /// Device bytes (padded values + padded indices + row lengths).
    pub fn bytes(&self) -> u64 {
        (self.rows * self.width) as u64 * (T::BYTES as u64 + 4) + self.rows as u64 * 4
    }

    /// Convert back to CSR (dropping padding).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut row_offsets = vec![0u32];
        let mut col_indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for j in 0..self.row_length(r) {
                let (c, v) = self.slot(r, j);
                col_indices.push(c);
                values.push(v);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        // Invariant: ELL slots are sorted and in bounds by construction.
        #[allow(clippy::expect_used)]
        let csr = CsrMatrix::from_parts(self.rows, self.cols, row_offsets, col_indices, values)
            .expect("ELL conversion preserves CSR validity");
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn csr_roundtrip() {
        let m = gen::uniform(32, 48, 0.8, 901);
        let ell = EllMatrix::from_csr(&m);
        assert_eq!(ell.to_csr(), m);
        assert_eq!(ell.nnz(), m.nnz());
    }

    #[test]
    fn column_major_layout() {
        // Row r's j-th entry sits at j*rows + r: adjacent rows adjacent.
        let m = gen::balanced(8, 16, 4, 902);
        let ell = EllMatrix::from_csr(&m);
        for r in 0..8 {
            for j in 0..4 {
                let (c, v) = ell.slot(r, j);
                let (cols, vals) = m.row(r);
                assert_eq!(c, cols[j]);
                assert_eq!(v, vals[j]);
            }
        }
    }

    #[test]
    fn balanced_matrices_have_no_padding() {
        let m = gen::balanced(64, 128, 32, 903);
        let ell = EllMatrix::from_csr(&m);
        assert_eq!(ell.padding_overhead(), 0.0);
        assert_eq!(ell.width(), 32);
    }

    #[test]
    fn heavy_tails_explode_the_padding() {
        // The Figure 2 asymmetry: DL-like (low CoV) pads a little,
        // scientific-like (power-law) pads enormously.
        let dl = gen::with_cov(1024, 1024, 0.9, 0.2, 904);
        let sci = gen::power_law(1024, 1024, 102.4, 1.2, 905);
        let dl_overhead = EllMatrix::from_csr(&dl).padding_overhead();
        let sci_overhead = EllMatrix::from_csr(&sci).padding_overhead();
        assert!(dl_overhead < 1.0, "DL-like padding {dl_overhead:.2}");
        assert!(sci_overhead > 3.0, "scientific padding {sci_overhead:.2}");
        assert!(sci_overhead > 4.0 * dl_overhead);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::<f32>::empty(4, 4);
        let ell = EllMatrix::from_csr(&m);
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.nnz(), 0);
        assert_eq!(ell.to_csr(), m);
    }
}
