//! Row-swizzle orderings (Section V-C of the paper).
//!
//! The swizzle is "a layer of indirection that re-orders when rows are
//! processed": an argsort of row indices by decreasing row length. Bundles
//! of `bundle_size` consecutive sorted rows group similarly sized rows for
//! subwarp processing (row bundling), and processing bundles in decreasing
//! order of heaviness approximates guided self-scheduling on the online
//! Volta block scheduler (row binning).

use crate::csr::CsrMatrix;
use crate::element::Scalar;
use serde::{Deserialize, Serialize};

/// A precomputed row-processing order.
///
/// "Since the topology of sparse matrices in DNNs is typically updated
/// infrequently, the cost of the argsort ... can be amortized over many
/// training steps" — mirroring that, the swizzle is computed once per
/// topology and passed to kernels by reference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowSwizzle {
    order: Vec<u32>,
}

impl RowSwizzle {
    /// The identity ordering (what a kernel without load balancing uses).
    pub fn identity(rows: usize) -> Self {
        Self {
            order: (0..rows as u32).collect(),
        }
    }

    /// Argsort of rows by decreasing nonzero count. Ties keep the original
    /// row order (stable), which preserves locality between adjacent rows.
    pub fn by_length_desc<T: Scalar>(m: &CsrMatrix<T>) -> Self {
        let mut order: Vec<u32> = (0..m.rows() as u32).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(m.row_len(r as usize)));
        Self { order }
    }

    /// The row processed by the `i`-th scheduled unit of work.
    #[inline]
    pub fn row(&self, i: usize) -> usize {
        self.order[i] as usize
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.order
    }

    /// Extra device memory the swizzle costs: one index per row ("the memory
    /// required to store the sorted indices for the matrix is negligible").
    pub fn bytes(&self) -> u64 {
        self.order.len() as u64 * 4
    }

    /// Validate that this is a permutation of `0..rows`.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.order.len()];
        for &r in &self.order {
            let r = r as usize;
            if r >= seen.len() || seen[r] {
                return false;
            }
            seen[r] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn identity_maps_to_self() {
        let s = RowSwizzle::identity(5);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
        assert!(s.is_permutation());
    }

    #[test]
    fn sorted_order_is_descending_by_length() {
        let m = gen::with_cov(256, 512, 0.8, 1.0, 3);
        let s = RowSwizzle::by_length_desc(&m);
        assert!(s.is_permutation());
        for w in s.as_slice().windows(2) {
            assert!(
                m.row_len(w[0] as usize) >= m.row_len(w[1] as usize),
                "lengths must be non-increasing"
            );
        }
    }

    #[test]
    fn sort_is_stable_for_ties() {
        let m = gen::balanced(16, 32, 4, 0);
        let s = RowSwizzle::by_length_desc(&m);
        assert_eq!(s.as_slice(), RowSwizzle::identity(16).as_slice());
    }

    #[test]
    fn bytes_is_four_per_row() {
        assert_eq!(RowSwizzle::identity(100).bytes(), 400);
    }
}
