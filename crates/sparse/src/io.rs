//! SMTX-style text serialization for sparse matrix topologies.
//!
//! The Sputnik release distributes its deep-learning matrix dataset in a
//! simple text format: a header line `rows, cols, nnz`, a line of row
//! offsets, and a line of column indices (values are regenerated — only the
//! topology matters for benchmarking). This module reads and writes that
//! format so corpora can be persisted and inspected.

use crate::csr::{CsrError, CsrMatrix};
use std::io::{self, BufRead, Write};

/// Errors from SMTX parsing.
#[derive(Debug)]
pub enum SmtxError {
    Io(io::Error),
    Parse(String),
    Invalid(CsrError),
}

impl std::fmt::Display for SmtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmtxError::Io(e) => write!(f, "io error: {e}"),
            SmtxError::Parse(msg) => write!(f, "parse error: {msg}"),
            SmtxError::Invalid(e) => write!(f, "invalid CSR: {e}"),
        }
    }
}

impl std::error::Error for SmtxError {}

impl From<io::Error> for SmtxError {
    fn from(e: io::Error) -> Self {
        SmtxError::Io(e)
    }
}

/// Serialize a matrix topology to SMTX text. Writer errors propagate as
/// [`SmtxError::Io`] — a full disk or closed pipe must not be swallowed.
pub fn write_smtx<W: Write>(m: &CsrMatrix<f32>, mut w: W) -> Result<(), SmtxError> {
    writeln!(w, "{}, {}, {}", m.rows(), m.cols(), m.nnz())?;
    let offsets: Vec<String> = m.row_offsets().iter().map(|v| v.to_string()).collect();
    writeln!(w, "{}", offsets.join(" "))?;
    let indices: Vec<String> = m.col_indices().iter().map(|v| v.to_string()).collect();
    writeln!(w, "{}", indices.join(" "))?;
    Ok(())
}

/// Parse SMTX text into a matrix. Values are set to 1.0 (the format stores
/// topology only).
pub fn read_smtx<R: BufRead>(r: R) -> Result<CsrMatrix<f32>, SmtxError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| SmtxError::Parse("missing header".into()))??;
    let parts: Vec<&str> = header.split(',').map(|s| s.trim()).collect();
    if parts.len() != 3 {
        return Err(SmtxError::Parse(format!(
            "header must be 'rows, cols, nnz', got '{header}'"
        )));
    }
    let rows: usize = parts[0]
        .parse()
        .map_err(|e| SmtxError::Parse(format!("rows: {e}")))?;
    let cols: usize = parts[1]
        .parse()
        .map_err(|e| SmtxError::Parse(format!("cols: {e}")))?;
    let nnz: usize = parts[2]
        .parse()
        .map_err(|e| SmtxError::Parse(format!("nnz: {e}")))?;

    let offsets_line = lines
        .next()
        .ok_or_else(|| SmtxError::Parse("missing row offsets".into()))??;
    let row_offsets: Vec<u32> = offsets_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|e| SmtxError::Parse(format!("offset: {e}")))
        })
        .collect::<Result<_, _>>()?;

    // The format always has three lines; a missing indices line is a
    // truncated file even when nnz == 0, not an empty index list.
    let indices_line = lines
        .next()
        .ok_or_else(|| SmtxError::Parse("truncated file: missing column indices line".into()))??;
    let col_indices: Vec<u32> = indices_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|e| SmtxError::Parse(format!("index: {e}")))
        })
        .collect::<Result<_, _>>()?;

    if col_indices.len() != nnz {
        return Err(SmtxError::Parse(format!(
            "header claims {nnz} nonzeros, found {}",
            col_indices.len()
        )));
    }
    let values = vec![1.0f32; nnz];
    CsrMatrix::from_parts(rows, cols, row_offsets, col_indices, values).map_err(SmtxError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let m = gen::uniform(32, 64, 0.8, 5);
        let mut buf = Vec::new();
        write_smtx(&m, &mut buf).unwrap();
        let back = read_smtx(io::BufReader::new(&buf[..])).unwrap();
        assert!(m.same_pattern(&back));
    }

    #[test]
    fn rejects_garbage_header() {
        let text = b"not a header\n0 1\n0\n";
        assert!(read_smtx(io::BufReader::new(&text[..])).is_err());
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let text = b"1, 4, 3\n0 2\n0 1\n";
        let e = read_smtx(io::BufReader::new(&text[..]));
        assert!(matches!(e, Err(SmtxError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_file_even_with_zero_nnz() {
        // Header + offsets but no indices line: truncation, not "no indices".
        let text = b"2, 4, 0\n0 0 0\n";
        let e = read_smtx(io::BufReader::new(&text[..]));
        assert!(matches!(e, Err(SmtxError::Parse(msg)) if msg.contains("truncated")));
    }

    #[test]
    fn writer_errors_propagate() {
        struct FullDisk;
        impl Write for FullDisk {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let m = gen::uniform(8, 8, 0.5, 6);
        let e = write_smtx(&m, FullDisk);
        assert!(matches!(e, Err(SmtxError::Io(_))));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = CsrMatrix::<f32>::empty(4, 4);
        let mut buf = Vec::new();
        write_smtx(&m, &mut buf).unwrap();
        let back = read_smtx(io::BufReader::new(&buf[..])).unwrap();
        assert!(m.same_pattern(&back));
        assert_eq!(back.nnz(), 0);
    }
}
