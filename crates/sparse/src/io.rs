//! SMTX-style text serialization for sparse matrix topologies.
//!
//! The Sputnik release distributes its deep-learning matrix dataset in a
//! simple text format: a header line `rows, cols, nnz`, a line of row
//! offsets, and a line of column indices (values are regenerated — only the
//! topology matters for benchmarking). This module reads and writes that
//! format so corpora can be persisted and inspected.

use crate::csr::{CsrError, CsrMatrix};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Errors from SMTX parsing.
#[derive(Debug)]
pub enum SmtxError {
    Io(io::Error),
    Parse(String),
    Invalid(CsrError),
}

impl std::fmt::Display for SmtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmtxError::Io(e) => write!(f, "io error: {e}"),
            SmtxError::Parse(msg) => write!(f, "parse error: {msg}"),
            SmtxError::Invalid(e) => write!(f, "invalid CSR: {e}"),
        }
    }
}

impl std::error::Error for SmtxError {}

impl From<io::Error> for SmtxError {
    fn from(e: io::Error) -> Self {
        SmtxError::Io(e)
    }
}

/// Serialize a matrix topology to SMTX text.
pub fn write_smtx<W: Write>(m: &CsrMatrix<f32>, mut w: W) -> Result<(), SmtxError> {
    let mut out = String::new();
    writeln!(out, "{}, {}, {}", m.rows(), m.cols(), m.nnz()).unwrap();
    let offsets: Vec<String> = m.row_offsets().iter().map(|v| v.to_string()).collect();
    writeln!(out, "{}", offsets.join(" ")).unwrap();
    let indices: Vec<String> = m.col_indices().iter().map(|v| v.to_string()).collect();
    writeln!(out, "{}", indices.join(" ")).unwrap();
    w.write_all(out.as_bytes())?;
    Ok(())
}

/// Parse SMTX text into a matrix. Values are set to 1.0 (the format stores
/// topology only).
pub fn read_smtx<R: BufRead>(r: R) -> Result<CsrMatrix<f32>, SmtxError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| SmtxError::Parse("missing header".into()))??;
    let parts: Vec<&str> = header.split(',').map(|s| s.trim()).collect();
    if parts.len() != 3 {
        return Err(SmtxError::Parse(format!("header must be 'rows, cols, nnz', got '{header}'")));
    }
    let rows: usize = parts[0].parse().map_err(|e| SmtxError::Parse(format!("rows: {e}")))?;
    let cols: usize = parts[1].parse().map_err(|e| SmtxError::Parse(format!("cols: {e}")))?;
    let nnz: usize = parts[2].parse().map_err(|e| SmtxError::Parse(format!("nnz: {e}")))?;

    let offsets_line = lines
        .next()
        .ok_or_else(|| SmtxError::Parse("missing row offsets".into()))??;
    let row_offsets: Vec<u32> = offsets_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| SmtxError::Parse(format!("offset: {e}"))))
        .collect::<Result<_, _>>()?;

    let indices_line = if nnz > 0 {
        lines
            .next()
            .ok_or_else(|| SmtxError::Parse("missing column indices".into()))??
    } else {
        lines.next().transpose()?.unwrap_or_default()
    };
    let col_indices: Vec<u32> = indices_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| SmtxError::Parse(format!("index: {e}"))))
        .collect::<Result<_, _>>()?;

    if col_indices.len() != nnz {
        return Err(SmtxError::Parse(format!(
            "header claims {nnz} nonzeros, found {}",
            col_indices.len()
        )));
    }
    let values = vec![1.0f32; nnz];
    CsrMatrix::from_parts(rows, cols, row_offsets, col_indices, values).map_err(SmtxError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let m = gen::uniform(32, 64, 0.8, 5);
        let mut buf = Vec::new();
        write_smtx(&m, &mut buf).unwrap();
        let back = read_smtx(io::BufReader::new(&buf[..])).unwrap();
        assert!(m.same_pattern(&back));
    }

    #[test]
    fn rejects_garbage_header() {
        let text = b"not a header\n0 1\n0\n";
        assert!(read_smtx(io::BufReader::new(&text[..])).is_err());
    }

    #[test]
    fn rejects_nnz_mismatch() {
        let text = b"1, 4, 3\n0 2\n0 1\n";
        let e = read_smtx(io::BufReader::new(&text[..]));
        assert!(matches!(e, Err(SmtxError::Parse(_))));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = CsrMatrix::<f32>::empty(4, 4);
        let mut buf = Vec::new();
        write_smtx(&m, &mut buf).unwrap();
        let back = read_smtx(io::BufReader::new(&buf[..])).unwrap();
        assert!(m.same_pattern(&back));
        assert_eq!(back.nnz(), 0);
    }
}
