//! Figure 7: SpMM throughput with varying levels of load imbalance
//! (M=8192, K=2048, N=128, 75% sparse, FP32, V100), with and without row
//! swizzle load balancing, as a percentage of the throughput achieved on a
//! perfectly balanced matrix.
//!
//! Paper anchors: at the right edge of the CoV sweep, the standard row
//! ordering degrades to 47.5% of balanced throughput while row swizzling
//! retains 96.5%; the average CoV of DNN matrices (~0.3) is marked.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::{gen, stats};
use sputnik::SpmmConfig;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    target_cov: f64,
    achieved_cov: f64,
    swizzle_pct: f64,
    standard_pct: f64,
}

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = (8192usize, 2048usize, 128usize);
    let sparsity = 0.75;

    // The balanced reference: every row has exactly the same nonzero count.
    let nnz_per_row = (k as f64 * (1.0 - sparsity)) as usize;
    let balanced = gen::balanced(m, k, nnz_per_row, 0x7fb);
    let cfg = SpmmConfig::heuristic::<f32>(n);
    let base = sputnik::spmm_profile::<f32>(&gpu, &balanced, k, n, cfg);
    // Normalize per useful FLOP so that small nnz drift in the generator
    // does not masquerade as a throughput change.
    let base_eff = base.flops as f64 / base.time_us;

    let covs: Vec<f64> = if has_flag("--quick") {
        vec![0.0, 0.3, 0.8, 1.5]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7]
    };

    let mut table = Table::new(
        "Figure 7 — throughput vs row-length CoV (8192/2048/128, 75% sparse)",
        &[
            "target CoV",
            "achieved CoV",
            "row swizzle",
            "standard order",
        ],
    );
    let mut points = Vec::new();
    for &cov in &covs {
        let a = gen::with_cov(m, k, sparsity, cov, 0x7fb1 + (cov * 100.0) as u64);
        let achieved = stats::matrix_stats(&a).row_cov;
        let with = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg);
        let without = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            k,
            n,
            SpmmConfig {
                row_swizzle: false,
                ..cfg
            },
        );
        let swizzle_pct = 100.0 * (with.flops as f64 / with.time_us) / base_eff;
        let standard_pct = 100.0 * (without.flops as f64 / without.time_us) / base_eff;
        table.row(&[
            format!("{cov:.1}"),
            format!("{achieved:.2}"),
            format!("{swizzle_pct:.1}%"),
            format!("{standard_pct:.1}%"),
        ]);
        points.push(Point {
            target_cov: cov,
            achieved_cov: achieved,
            swizzle_pct,
            standard_pct,
        });
    }
    table.print();
    println!("(100% = throughput on a perfectly balanced matrix; DNN average CoV ~0.3)");
    if let Some(last) = points.last() {
        println!(
            "At the highest imbalance: swizzle retains {:.1}% (paper: 96.5%), standard {:.1}% (paper: 47.5%)",
            last.swizzle_pct, last.standard_pct
        );
    }
    write_json("fig07_load_balance", &points);
}
