//! Figure 11: the sparse Transformer's attention connectivity — a dense
//! band along the diagonal plus random off-diagonal connections sampled with
//! probability inversely proportional to distance from the diagonal, under a
//! causal (lower-triangular) constraint. Rendered as a coarse ASCII density
//! map plus the mask's summary statistics.

use serde::Serialize;
use sparse::gen;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct MaskSummary {
    seq: usize,
    band: usize,
    off_diag_sparsity: f64,
    nnz: usize,
    overall_sparsity: f64,
    avg_row_len: f64,
    max_row_len: usize,
}

fn main() {
    let (seq, band) = if has_flag("--full") {
        (12288, 256)
    } else {
        (2048, 64)
    };
    let off = 0.95;
    let mask = gen::attention_mask(seq, band, off, 0x5eed);

    // Coarse density map: 48x48 cells.
    let cells = 48usize;
    let cell = seq.div_ceil(cells);
    let mut density = vec![vec![0u32; cells]; cells];
    for (r, c, _) in mask.iter() {
        density[r / cell][c / cell] += 1;
    }
    println!("== Figure 11 — sparse attention connectivity ({seq} tokens, band {band}, {off:.0}% off-diagonal sparsity) ==");
    let shades = [' ', '.', ':', '+', '#', '@'];
    for row in &density {
        let line: String = row
            .iter()
            .map(|&d| {
                let frac = d as f64 / (cell * cell) as f64;
                let idx = if frac == 0.0 {
                    0
                } else {
                    (1.0 + (frac * 40.0).min(4.0)) as usize
                };
                shades[idx.min(5)]
            })
            .collect();
        println!("|{line}|");
    }

    let stats = sparse::matrix_stats(&mask);
    let summary = MaskSummary {
        seq,
        band,
        off_diag_sparsity: off,
        nnz: mask.nnz(),
        overall_sparsity: stats.sparsity,
        avg_row_len: stats.avg_row_length,
        max_row_len: mask.max_row_len(),
    };
    let mut t = Table::new("mask statistics", &["metric", "value"]);
    t.row(&["tokens".into(), summary.seq.to_string()]);
    t.row(&["nonzeros".into(), summary.nnz.to_string()]);
    t.row(&[
        "overall sparsity".into(),
        format!("{:.4}", summary.overall_sparsity),
    ]);
    t.row(&[
        "avg row length".into(),
        format!("{:.1}", summary.avg_row_len),
    ]);
    t.row(&["max row length".into(), summary.max_row_len.to_string()]);
    t.print();
    write_json("fig11_attention_mask", &summary);
}
