//! Extension: load-balancing approaches head to head.
//!
//! Section V-C argues that existing load-balancing schemes "tightly couple
//! load balancing to the parallelization scheme ... they typically introduce
//! computational irregularity that can damage performance on more regular
//! problems", and proposes the row swizzle as a decoupled alternative. This
//! study races four approaches across the imbalance dial:
//!
//! * **row-splitting, natural order** — no load balancing at all,
//! * **row-splitting + row swizzle** — the paper's approach,
//! * **nonzero-splitting** — perfect balance, coupled & irregular,
//! * **ASpT** — reordered tiling (where its shape constraints allow).

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::{gen, stats};
use sputnik::SpmmConfig;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    achieved_cov: f64,
    natural_us: f64,
    swizzle_us: f64,
    nnz_split_us: f64,
    aspt_us: Option<f64>,
}

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = (8192usize, 2048usize, 128usize);
    let covs: Vec<f64> = if has_flag("--quick") {
        vec![0.0, 0.8, 1.7]
    } else {
        vec![0.0, 0.2, 0.4, 0.8, 1.2, 1.7]
    };

    let mut table = Table::new(
        "Extension — load balancing approaches (SpMM 8192x2048x128, 75% sparse, us)",
        &[
            "CoV",
            "natural order",
            "row swizzle",
            "nnz splitting",
            "ASpT",
        ],
    );
    let mut points = Vec::new();
    let cfg = SpmmConfig::heuristic::<f32>(n);
    for &cov in &covs {
        let a = gen::with_cov(m, k, 0.75, cov, 0x1b + (cov * 10.0) as u64);
        let achieved = stats::matrix_stats(&a).row_cov;
        let natural = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            k,
            n,
            SpmmConfig {
                row_swizzle: false,
                ..cfg
            },
        );
        let swizzle = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg);
        let nnz_split = baselines::nnz_split_spmm_profile::<f32>(&gpu, &a, n);
        let aspt = baselines::aspt_spmm_profile::<f32>(&gpu, &a, n).ok();
        table.row(&[
            format!("{achieved:.2}"),
            format!("{:.1}", natural.time_us),
            format!("{:.1}", swizzle.time_us),
            format!("{:.1}", nnz_split.time_us),
            aspt.as_ref()
                .map_or("-".into(), |s| format!("{:.1}", s.time_us)),
        ]);
        points.push(Point {
            achieved_cov: achieved,
            natural_us: natural.time_us,
            swizzle_us: swizzle.time_us,
            nnz_split_us: nnz_split.time_us,
            aspt_us: aspt.map(|s| s.time_us),
        });
    }
    table.print();

    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return;
    };
    println!(
        "balanced matrices (CoV 0): swizzle {:.1} us vs nnz-splitting {:.1} us — the \
         irregular scheme pays {:.0}% overhead where there is nothing to balance",
        first.swizzle_us,
        first.nnz_split_us,
        100.0 * (first.nnz_split_us / first.swizzle_us - 1.0)
    );
    println!(
        "worst imbalance (CoV {:.1}): natural order {:.1} us, swizzle {:.1} us, nnz-splitting {:.1} us",
        last.achieved_cov, last.natural_us, last.swizzle_us, last.nnz_split_us
    );
    println!("The swizzle gets balanced-case speed AND imbalance tolerance — Section V-C's pitch.");
    write_json("ext_load_balancing", &points);
}
