//! Table II: ablation study for the SpMM and SDDMM kernels.
//!
//! Each proposed optimization is disabled in turn and performance is
//! reported as a percentage of the complete kernel's, averaged over corpus
//! problems split by model family and batch size — the same cells the paper
//! reports. With `--rnn`, also reports the scalar-vs-vector geo-mean on the
//! RNN suite (Section VII-B: 2.45x).
//!
//! Paper anchors (SpMM): -LoadBalancing 78.5-96.1%, -VectorInst 64.8-100.1%,
//! -ResidueUnroll 87.8-94.1%, -IndexPreScale 98.2-100.6%. (SDDMM):
//! -LoadBalancing 96.8-101.1%, -VectorInst 98.3-170.6% (scalar *wins* on
//! occupancy-bound small problems).

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::dataset::{self, ModelFamily};
use sputnik::{SddmmConfig, SpmmConfig};
use sputnik_bench::{geo_mean, has_flag, write_json, Table};

#[derive(Serialize, Default, Clone)]
struct Cell {
    /// Ablated-time / full-time ratios (per problem); a mean > 1 would mean
    /// the ablation *helped*.
    ratios: Vec<f64>,
}

impl Cell {
    /// "Performance measured as a percent of the performance of our complete
    /// kernels": full_time / ablated_time.
    fn percent(&self) -> f64 {
        100.0 / geo_mean(&self.ratios)
    }
}

fn main() {
    let gpu = Gpu::v100();
    let count = if has_flag("--quick") { 20 } else { 80 };
    let specs = dataset::dl_corpus_sample(count, 17);

    // Cells indexed by (family, batch-kind) -> ablation -> ratios.
    let spmm_ablations = [
        "-Load Balancing",
        "-Vector Inst.",
        "-Residue Unroll",
        "-Index Pre-Scale",
    ];
    let sddmm_ablations = ["-Load Balancing", "-Vector Inst."];
    let col_keys = [
        (ModelFamily::Transformer, false),
        (ModelFamily::Transformer, true),
        (ModelFamily::ResNet50, false),
        (ModelFamily::ResNet50, true),
    ];
    let mut spmm_cells = vec![vec![Cell::default(); col_keys.len()]; spmm_ablations.len()];
    let mut sddmm_cells = vec![vec![Cell::default(); col_keys.len()]; sddmm_ablations.len()];

    for spec in &specs {
        let a = spec.generate();
        let (inference, training) = spec.batch_sizes();
        for (batch, is_training) in [(inference, false), (training, true)] {
            let col = col_keys
                .iter()
                .position(|&(fam, tr)| fam == spec.model && tr == is_training)
                .unwrap_or_else(|| panic!("no column for {:?}/training={is_training}", spec.model));
            let n = spec.n(batch);
            let full_cfg = SpmmConfig::heuristic::<f32>(n);
            let full = sputnik::spmm_profile::<f32>(&gpu, &a, spec.cols, n, full_cfg).time_us;

            let variants = [
                SpmmConfig {
                    row_swizzle: false,
                    ..full_cfg
                },
                // Scalar kernel: no vector loads, which also removes ROMA and
                // narrows the tile so a subwarp still fits a warp.
                SpmmConfig {
                    vector_width: 1,
                    roma: false,
                    block_items_x: full_cfg.block_items_x.min(32),
                    ..full_cfg
                },
                SpmmConfig {
                    residue_unroll: false,
                    ..full_cfg
                },
                SpmmConfig {
                    index_prescale: false,
                    ..full_cfg
                },
            ];
            for (i, cfg) in variants.iter().enumerate() {
                let t = sputnik::spmm_profile::<f32>(&gpu, &a, spec.cols, n, *cfg).time_us;
                spmm_cells[i][col].ratios.push(t / full);
            }

            let mut sddmm_full_cfg = SddmmConfig::heuristic::<f32>(n);
            sddmm_full_cfg.row_swizzle = true;
            let sddmm_full = sputnik::sddmm_profile::<f32>(&gpu, &a, n, sddmm_full_cfg).time_us;
            // "-Load Balancing" disables the swizzle relative to a swizzled
            // complete kernel; "-Vector Inst." is the scalar kernel, which
            // processes fewer outputs per thread (narrower tiles), giving it
            // *better* occupancy on the small weight matrices of these
            // models — the effect the paper highlights.
            let sddmm_variants = [
                SddmmConfig {
                    row_swizzle: false,
                    ..sddmm_full_cfg
                },
                SddmmConfig {
                    vector_width: 1,
                    block_items_x: 16,
                    ..sddmm_full_cfg
                },
            ];
            for (i, cfg) in sddmm_variants.iter().enumerate() {
                let t = sputnik::sddmm_profile::<f32>(&gpu, &a, n, *cfg).time_us;
                sddmm_cells[i][col].ratios.push(t / sddmm_full);
            }
        }
    }

    let headers = [
        "ablation",
        "Transformer bs=1",
        "Transformer bs=8",
        "ResNet-50 bs=1",
        "ResNet-50 bs=32",
    ];
    let mut t_spmm = Table::new(
        "Table II (SpMM) — % of complete kernel's performance",
        &headers,
    );
    for (i, name) in spmm_ablations.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for cell in spmm_cells[i].iter().take(col_keys.len()) {
            row.push(format!("{:.1}%", cell.percent()));
        }
        t_spmm.row(&row);
    }
    t_spmm.print();
    println!("paper: -LB 96.1/88.9/91.7/78.5  -Vec 100.1/80.9/87.9/64.8  -Res 92.0/94.1/87.8/92.6  -Pre 100.6/100.6/98.2/100.3\n");

    let mut t_sddmm = Table::new(
        "Table II (SDDMM) — % of complete kernel's performance",
        &headers,
    );
    for (i, name) in sddmm_ablations.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for cell in sddmm_cells[i].iter().take(col_keys.len()) {
            row.push(format!("{:.1}%", cell.percent()));
        }
        t_sddmm.row(&row);
    }
    t_sddmm.print();
    println!("paper: -LB 101.1/97.1/100.9/96.8  -Vec 98.3/132.0/120.2/170.6\n");

    if has_flag("--rnn") || !has_flag("--quick") {
        let problems = dnn::rnn::problem_suite(&[1024, 2048, 4096]);
        let ratios: Vec<f64> = problems
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let a = p.weights(0xab1a + i as u64);
                let cfg = SpmmConfig::heuristic::<f32>(p.n());
                let full = sputnik::spmm_profile::<f32>(&gpu, &a, p.k(), p.n(), cfg).time_us;
                let scalar = sputnik::spmm_profile::<f32>(
                    &gpu,
                    &a,
                    p.k(),
                    p.n(),
                    SpmmConfig {
                        vector_width: 1,
                        roma: false,
                        block_items_x: 32,
                        ..cfg
                    },
                )
                .time_us;
                scalar / full
            })
            .collect();
        println!(
            "RNN suite: vector kernels {:.2}x geo-mean over scalar (paper: 2.45x)",
            geo_mean(&ratios)
        );
    }

    // Fields are written to JSON; the vendored serde stub doesn't read them.
    #[allow(dead_code)]
    #[derive(Serialize)]
    struct Out {
        spmm: Vec<(String, Vec<f64>)>,
        sddmm: Vec<(String, Vec<f64>)>,
    }
    let out = Out {
        spmm: spmm_ablations
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.to_string(),
                    (0..4).map(|c| spmm_cells[i][c].percent()).collect(),
                )
            })
            .collect(),
        sddmm: sddmm_ablations
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.to_string(),
                    (0..4).map(|c| sddmm_cells[i][c].percent()).collect(),
                )
            })
            .collect(),
    };
    write_json("table02_ablation", &out);
}
