//! Run every registered kernel under the sanitizer and fail if any kernel
//! reports a violation.
//!
//! This is the repo's analogue of running the whole kernel suite under
//! `compute-sanitizer`: racecheck, memcheck, aligncheck, and the coalescing /
//! bank-conflict lints all execute against real launches of every Sputnik
//! kernel and every baseline. The kernel/launch inventory lives in
//! [`sputnik_bench::registry`] — the same list `static_audit` proves
//! verdicts over, so the two CI gates cannot cover different kernel sets.
//!
//! Since the static auditor landed, the suite runs in
//! dynamic-only-where-needed mode and checks the audit three ways:
//!
//! 1. **Audited pass** (`Gpu::sanitize_cached` over a cold cache, which
//!    audits each launch and disarms statically proven checks): the pass
//!    whose violations gate CI.
//! 2. **Reference pass** (`Gpu::sanitize_full`, every dynamic check
//!    armed): every kernel's (violations, warnings) must agree with the
//!    audited pass — a disagreement means the auditor disarmed a check
//!    that would have fired, i.e. an unsound `static_facts` declaration.
//! 3. **Warm replay pass** (same cache, now hot): every launch must be
//!    served from the cache, and the pass must beat the reference pass's
//!    wall time — the "dynamic checking only where needed" saving this
//!    whole layer exists for, asserted on every CI run.
//!
//! Lint warnings are reported but do not fail the run; violations and
//! disagreements do (`exit(1)`), which is what the CI gate keys on.

// Wall-timing bin: reading the host clock is the whole point here, and is
// exactly what `clippy.toml` bans inside simulated-clock code.
#![allow(clippy::disallowed_methods)]

use gpu_sim::{Gpu, LaunchCache, LaunchSummary, SanitizerReport};
use sputnik_bench::registry;
use std::time::Instant;

fn note(report: &SanitizerReport, failures: &mut u64) {
    if report.violation_count > 0 {
        *failures += report.violation_count;
        println!("FAIL {report}");
    } else if report.warning_count > 0 {
        println!(
            "  ok {:40} {} blocks, {} warnings",
            report.kernel, report.blocks, report.warning_count
        );
    } else {
        println!("  ok {:40} {} blocks", report.kernel, report.blocks);
    }
}

fn main() {
    let gpu = Gpu::v100();
    let mut summary = LaunchSummary::default();
    let mut failures = 0u64;
    let cache = LaunchCache::new();

    // Pass 1: audited, cold cache. The registry is deterministic, so the
    // pair index is a sound operand fingerprint.
    println!("-- audited sanitize (statically proven checks disarmed) --");
    let mut audited: Vec<(u64, u64)> = Vec::new();
    let mut fp = 0u64;
    registry::for_each_kernel(&mut |kernel| {
        fp += 1;
        match gpu.sanitize_cached(&cache, fp, kernel) {
            Ok((stats, report, _)) => {
                summary.add_sanitized(&stats, &report);
                audited.push((report.violation_count, report.warning_count));
                note(&report, &mut failures);
            }
            Err(e) => {
                failures += 1;
                audited.push((u64::MAX, u64::MAX));
                println!("FAIL {}: launch error: {e}", kernel.name());
            }
        }
    });

    // Pass 2: the full-dynamic reference. Findings must agree with the
    // audited pass, kernel by kernel; this is the soundness check on every
    // `static_facts` declaration in the tree.
    println!("-- full-dynamic reference (cross-check) --");
    let mut idx = 0usize;
    let t = Instant::now();
    registry::for_each_kernel(&mut |kernel| {
        let (a_viol, a_warn) = audited[idx];
        idx += 1;
        match gpu.sanitize_full(kernel) {
            Ok((_, report)) => {
                if (report.violation_count, report.warning_count) != (a_viol, a_warn) {
                    failures += 1;
                    println!(
                        "FAIL {}: audited pass found ({a_viol} violations, {a_warn} \
                         warnings) but the full-dynamic reference found ({}, {}) — \
                         the static audit disarmed a check unsoundly",
                        report.kernel, report.violation_count, report.warning_count
                    );
                }
            }
            Err(e) => {
                failures += 1;
                println!("FAIL {}: reference launch error: {e}", kernel.name());
            }
        }
    });
    let full_ms = t.elapsed().as_secs_f64() * 1e3;

    // Pass 3: warm replay. Every launch must hit the cache, and skipping
    // the dynamic pass must actually be cheaper than running it.
    let t = Instant::now();
    let mut hits = 0u64;
    let mut fp = 0u64;
    registry::for_each_kernel(&mut |kernel| {
        fp += 1;
        match gpu.sanitize_cached(&cache, fp, kernel) {
            Ok((_, _, hit)) => hits += u64::from(hit),
            Err(e) => {
                failures += 1;
                println!("FAIL {}: warm replay error: {e}", kernel.name());
            }
        }
    });
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let launches = fp;
    if hits != launches {
        failures += 1;
        println!("FAIL warm replay: only {hits}/{launches} launches served from the cache");
    }
    if warm_ms >= full_ms {
        failures += 1;
        println!(
            "FAIL warm replay: {warm_ms:.1} ms did not beat the full-dynamic \
             reference ({full_ms:.1} ms) — the sanitize cache stopped saving wall time"
        );
    } else {
        println!(
            "warm replay: {warm_ms:.1} ms vs full-dynamic {full_ms:.1} ms \
             ({:.0}% saved), {hits}/{launches} cache hits",
            (1.0 - warm_ms / full_ms) * 100.0
        );
    }

    println!(
        "\n{} sanitized launches, {} violations, {} warnings",
        summary.launches, summary.violations, summary.warnings
    );
    if failures > 0 {
        println!("sanitize_all: FAILED ({failures} failures)");
        std::process::exit(1);
    }
    println!("sanitize_all: clean");
}
