//! Run every simulated kernel under the sanitizer (`Gpu::sanitize`) across a
//! grid of shapes and fail if any kernel reports a violation.
//!
//! This is the repo's analogue of running the whole kernel suite under
//! `compute-sanitizer`: racecheck, memcheck, aligncheck, and the coalescing /
//! bank-conflict lints all execute against real launches of every Sputnik
//! kernel and every baseline. Lint warnings are reported but do not fail the
//! run; violations do (`exit(1)`), which is what the CI gate keys on.

use baselines::aspt::AsptSpmmKernel;
use baselines::cusparse::{
    ConstrainedGemmKernel, CusparseSpmmHalfFallbackKernel, CusparseSpmmKernel,
};
use baselines::{
    AsptDirection, AsptPlan, BlockSpmmKernel, EllSpmmKernel, GemmKernel, MergeSpmmKernel,
    NnzSplitSpmmKernel, TransposeKernel,
};
use gpu_sim::{Gpu, Kernel, LaunchSummary, SanitizerReport};
use sparse::ell::EllMatrix;
use sparse::{block, gen, Layout, Matrix, RowSwizzle};
use sputnik::{
    FallbackSpmmKernel, PermuteKernel, SddmmConfig, SddmmKernel, SparseSoftmaxKernel, SpmmConfig,
};
use std::sync::atomic::AtomicU32;

fn note(report: &SanitizerReport, failures: &mut u64) {
    if report.violation_count > 0 {
        *failures += report.violation_count;
        println!("FAIL {report}");
    } else if report.warning_count > 0 {
        println!(
            "  ok {:40} {} blocks, {} warnings",
            report.kernel, report.blocks, report.warning_count
        );
    } else {
        println!("  ok {:40} {} blocks", report.kernel, report.blocks);
    }
}

fn check(gpu: &Gpu, kernel: &dyn Kernel, summary: &mut LaunchSummary, failures: &mut u64) {
    match gpu.sanitize(kernel) {
        Ok((stats, report)) => {
            summary.add_sanitized(&stats, &report);
            note(&report, failures);
        }
        Err(e) => {
            *failures += 1;
            println!("FAIL {}: launch error: {e}", kernel.name());
        }
    }
}

fn main() {
    let gpu = Gpu::v100();
    let mut summary = LaunchSummary::default();
    let mut failures = 0u64;

    // (m, k, n, sparsity): one square power-of-two shape, one ragged shape
    // exercising partial tiles, and one high-sparsity shape with empty rows.
    let shapes: &[(usize, usize, usize, f64)] =
        &[(64, 96, 32, 0.7), (128, 128, 128, 0.9), (100, 76, 40, 0.8)];

    for (i, &(m, k, n, sparsity)) in shapes.iter().enumerate() {
        let seed = 0x5A17 + i as u64 * 101;
        println!("-- shape {m}x{k}x{n} sparsity {sparsity} --");
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed + 1);

        // Sputnik SpMM through the dispatch-level sanitize entry point, under
        // the default config, the heuristic config, and with row swizzling.
        for cfg in [
            SpmmConfig::default(),
            SpmmConfig::heuristic::<f32>(n),
            SpmmConfig {
                row_swizzle: true,
                ..SpmmConfig::heuristic::<f32>(n)
            },
        ] {
            match sputnik::sanitize(&gpu, &a, &b, cfg) {
                Ok((_, stats, report)) => {
                    summary.add_sanitized(&stats, &report);
                    note(&report, &mut failures);
                }
                Err(e) => {
                    failures += 1;
                    println!("FAIL sputnik::sanitize: {e}");
                }
            }
        }

        // Scalar fallback SpMM.
        {
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // SDDMM: lhs (m x k) . rhs^T (n x k), sampled by an m x n mask.
        {
            let mask = gen::uniform(m, n, sparsity, seed + 2);
            let lhs = Matrix::<f32>::random(m, k, seed + 3);
            let rhs = Matrix::<f32>::random(n, k, seed + 4);
            let swizzle = RowSwizzle::by_length_desc(&mask);
            let mut values = vec![0.0f32; mask.nnz()];
            match SddmmKernel::try_new(
                &lhs,
                &rhs,
                &mask,
                &mut values,
                &swizzle,
                SddmmConfig::heuristic::<f32>(k),
            ) {
                Ok(kernel) => check(&gpu, &kernel, &mut summary, &mut failures),
                Err(e) => {
                    failures += 1;
                    println!("FAIL sddmm construction: {e}");
                }
            }
        }

        // Sparse softmax over the sparse matrix's values.
        {
            let mut values = vec![0.0f32; a.nnz()];
            let kernel = SparseSoftmaxKernel::new(&a, &mut values);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // Value permute (the cached-transpose gather).
        {
            let src = a.values().to_vec();
            let perm: Vec<u32> = (0..a.nnz() as u32).rev().collect();
            let mut dst = vec![0.0f32; a.nnz()];
            let kernel = PermuteKernel::new(&src, &perm, &mut dst);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // Dense GEMM and the staging transpose.
        {
            let da = Matrix::<f32>::random(m, k, seed + 5);
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = GemmKernel::new(&da, &b, &mut out);
            check(&gpu, &kernel, &mut summary, &mut failures);

            let mut t = Matrix::<f32>::zeros(k, m);
            let kernel = TransposeKernel::new(&da, &mut t);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // ELLR-T SpMM.
        {
            let ell = EllMatrix::from_csr(&a);
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = EllSpmmKernel::new(&ell, &b, &mut out);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // Merge-based SpMM requires N % 32 == 0.
        if n % 32 == 0 {
            let mut out = Matrix::<f32>::zeros(m, n);
            match MergeSpmmKernel::new(&a, &b, &mut out) {
                Ok(kernel) => check(&gpu, &kernel, &mut summary, &mut failures),
                Err(e) => {
                    failures += 1;
                    println!("FAIL merge_spmm construction: {e}");
                }
            }
        }

        // Nonzero-splitting SpMM (atomic output: racecheck is suppressed,
        // every other check still runs).
        {
            let out: Vec<AtomicU32> = (0..m * n).map(|_| AtomicU32::new(0)).collect();
            let kernel = NnzSplitSpmmKernel::new(&a, &b, &out);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // cuSPARSE-style SpMM wants column-major B and C.
        {
            let b_cm = b.to_layout(Layout::ColMajor);
            let mut out = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
            let kernel = CusparseSpmmKernel::new(&a, &b_cm, &mut out);
            check(&gpu, &kernel, &mut summary, &mut failures);

            let kernel = CusparseSpmmHalfFallbackKernel::new(&a, n);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }

        // cusparseConstrainedGeMM-style SDDMM (pre-transposed RHS).
        {
            let mask = gen::uniform(m, n, sparsity, seed + 6);
            let lhs = Matrix::<f32>::random(m, k, seed + 7);
            let rhs_t = Matrix::<f32>::random(k, n, seed + 8);
            let mut values = vec![0.0f32; mask.nnz()];
            let kernel = ConstrainedGemmKernel::new(&lhs, &rhs_t, &mask, &mut values);
            check(&gpu, &kernel, &mut summary, &mut failures);
        }
    }

    // Shape-constrained baselines get dedicated launches.
    println!("-- shape-constrained baselines --");
    {
        // ASpT: rows % 256 == 0, n in {32, 128}.
        let a = gen::uniform(256, 128, 0.8, 0xA597);
        let b = Matrix::<f32>::random(128, 32, 0xA598);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        let mut out = Matrix::<f32>::zeros(256, 32);
        match AsptSpmmKernel::new(&a, &plan, &b, &mut out) {
            Ok(kernel) => check(&gpu, &kernel, &mut summary, &mut failures),
            Err(e) => {
                failures += 1;
                println!("FAIL aspt construction: {e}");
            }
        }
    }
    {
        // Block-sparse SpMM on a block-pruned weight matrix.
        let dense = Matrix::<f32>::random(64, 64, 0xB10C);
        let bsr = block::block_prune(&dense, 8, 0.5);
        let b = Matrix::<f32>::random(64, 32, 0xB10D);
        let mut out = Matrix::<f32>::zeros(64, 32);
        let kernel = BlockSpmmKernel::new(&bsr, &b, &mut out);
        check(&gpu, &kernel, &mut summary, &mut failures);
    }

    println!(
        "\n{} sanitized launches, {} violations, {} warnings",
        summary.launches, summary.violations, summary.warnings
    );
    if failures > 0 {
        println!("sanitize_all: FAILED ({failures} violations)");
        std::process::exit(1);
    }
    println!("sanitize_all: clean");
}
