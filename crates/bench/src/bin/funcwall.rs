//! Wall-clock benchmark of the simulator's *functional* execution engine.
//!
//! `simwall` times the launch fast path (dedup + cache) on profile-only
//! sweeps; this bin times the compute side — kernels actually producing
//! numerical outputs — which dominates cold launches, sanitize passes, and
//! every DNN forward pass. It runs a deterministic kernel grid covering the
//! Sputnik kernels (SpMM, SDDMM, softmax, transpose) and the baselines
//! (cuBLAS GEMM, cuSPARSE, ELL, merge, nnz-split, block-sparse) in three
//! instrumented passes:
//!
//! 1. `cold` — repeated functional launches, fresh every time: wall-clock
//!    GFLOP/s of the functional engine plus heap allocations per launch
//!    (measured by a counting global allocator).
//! 2. `replay` — a warmed [`LaunchCache`] serving the same problems: the
//!    zero-alloc hot path (outputs recomputed, statistics replayed).
//! 3. scratch-arena counters: checkouts served and pool misses, showing the
//!    staging buffers recycle instead of round-tripping the heap.
//!
//! Results land in `BENCH_funcwall.json` (repo root). `--check
//! <baseline.json>` gates CI on the machine-independent metrics: allocations
//! per cold launch (must not grow) and pool misses per checkout (the arena
//! must keep absorbing staging traffic).

// Wall-timing bin: reading the host clock is the whole point here, and is
// exactly what `clippy.toml` bans inside simulated-clock code.
#![allow(clippy::disallowed_methods)]

use gpu_sim::{Gpu, LaunchCache};
use sparse::{gen, BsrMatrix, EllMatrix, Matrix};
use sputnik::{SddmmConfig, SpmmConfig};
use sputnik_bench::{gate, has_flag, Table};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter wrapped around the system allocator. Counts
/// every `alloc`/`realloc` call; frees are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One deterministic problem: a sparse matrix plus the dense operands the
/// kernel grid needs. Shapes are multiples of 32 so every format baseline
/// (BSR block size, ASPT-style tiling) accepts them.
struct Problem {
    a: sparse::CsrMatrix<f32>,
    a_ell: EllMatrix<f32>,
    a_bsr: BsrMatrix<f32>,
    b: Matrix<f32>,
    b_col: Matrix<f32>,
    lhs: Matrix<f32>,
    rhs: Matrix<f32>,
}

fn build_problems() -> Vec<Problem> {
    let shapes: &[(usize, usize, usize, f64, u64)] = &[
        (512, 512, 64, 0.80, 11),
        (256, 1024, 128, 0.90, 12),
        (1024, 256, 64, 0.70, 13),
    ];
    shapes
        .iter()
        .map(|&(m, k, n, sparsity, seed)| {
            let a = gen::uniform(m, k, sparsity, seed);
            let a_ell = EllMatrix::from_csr(&a);
            let a_bsr = BsrMatrix::from_dense(&a.to_dense(), 32);
            let b = Matrix::<f32>::random(k, n, seed ^ 1);
            Problem {
                a_ell,
                a_bsr,
                b_col: b.to_layout(sparse::Layout::ColMajor),
                b,
                lhs: Matrix::<f32>::random(m, 32, seed ^ 2),
                rhs: Matrix::<f32>::random(k, 32, seed ^ 3),
                a,
            }
        })
        .collect()
}

/// One full functional sweep: every kernel in the grid launched cold,
/// producing real outputs. Returns (simulated scalar FLOPs, launches).
fn sweep(gpu: &Gpu, problems: &[Problem]) -> (u64, u64) {
    let mut flops = 0u64;
    let mut launches = 0u64;
    let mut add = |s: gpu_sim::LaunchStats| {
        flops += s.flops;
        launches += 1;
    };
    for p in problems {
        let n = p.b.cols();
        let cfg = SpmmConfig::heuristic::<f32>(n);
        add(sputnik::spmm(gpu, &p.a, &p.b, cfg).1);
        let sddmm_cfg = SddmmConfig::heuristic::<f32>(p.rhs.cols());
        add(sputnik::sddmm(gpu, &p.lhs, &p.rhs, &p.a, sddmm_cfg).1);
        add(sputnik::sparse_softmax(gpu, &p.a).1);
        add(baselines::cusparse_spmm(gpu, &p.a, &p.b_col).1);
        let merged = baselines::merge_spmm(gpu, &p.a, &p.b)
            .unwrap_or_else(|e| panic!("merge_spmm rejected a grid problem: {e}"));
        add(merged.1);
        add(baselines::nnz_split_spmm(gpu, &p.a, &p.b).1);
        add(baselines::ell_spmm(gpu, &p.a_ell, &p.b).1);
        add(baselines::block_spmm(gpu, &p.a_bsr, &p.b).1);
        add(baselines::gemm(gpu, &p.lhs, &p.rhs.transpose()).1);
        add(baselines::transpose(gpu, &p.b).1);
    }
    (flops, launches)
}

/// The warm replay pass: profiles served from a pre-filled launch cache,
/// which still executes every block functionally (`replay_functional`) but
/// skips cost recording. This is the path the zero-alloc test pins down.
fn replay_sweep(gpu: &Gpu, cache: &LaunchCache, problems: &[Problem]) -> u64 {
    let mut launches = 0u64;
    for p in problems {
        let n = p.b.cols();
        let cfg = SpmmConfig::heuristic::<f32>(n);
        sputnik::spmm_profile_cached::<f32>(gpu, cache, &p.a, p.a.cols(), n, cfg);
        let sddmm_cfg = SddmmConfig::heuristic::<f32>(p.rhs.cols());
        sputnik::sddmm_profile_cached::<f32>(gpu, cache, &p.a, p.rhs.cols(), sddmm_cfg);
        launches += 2;
    }
    launches
}

/// `--breakdown`: time each kernel family separately (diagnostic only;
/// not part of the JSON output or the CI gate).
fn breakdown(gpu: &Gpu, problems: &[Problem], reps: u32) {
    let time = |name: &str, f: &mut dyn FnMut(&Problem), prof: &mut dyn FnMut(&Problem)| {
        let t = Instant::now();
        for _ in 0..reps {
            for p in problems {
                f(p);
            }
        }
        let func_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        for _ in 0..reps {
            for p in problems {
                prof(p);
            }
        }
        let prof_ms = t.elapsed().as_secs_f64() * 1e3;
        println!("  {name:<22} functional {func_ms:8.1} ms   profile-only {prof_ms:8.1} ms");
    };
    time(
        "spmm",
        &mut |p| {
            let cfg = SpmmConfig::heuristic::<f32>(p.b.cols());
            sputnik::spmm(gpu, &p.a, &p.b, cfg);
        },
        &mut |p| {
            let n = p.b.cols();
            let cfg = SpmmConfig::heuristic::<f32>(n);
            sputnik::spmm_profile::<f32>(gpu, &p.a, p.a.cols(), n, cfg);
        },
    );
    time(
        "sddmm",
        &mut |p| {
            let cfg = SddmmConfig::heuristic::<f32>(p.rhs.cols());
            sputnik::sddmm(gpu, &p.lhs, &p.rhs, &p.a, cfg);
        },
        &mut |p| {
            let cfg = SddmmConfig::heuristic::<f32>(p.rhs.cols());
            sputnik::sddmm_profile::<f32>(gpu, &p.a, p.rhs.cols(), cfg);
        },
    );
    time(
        "softmax",
        &mut |p| {
            sputnik::sparse_softmax(gpu, &p.a);
        },
        &mut |p| {
            sputnik::sparse_softmax_profile::<f32>(gpu, &p.a);
        },
    );
    time(
        "cusparse",
        &mut |p| {
            baselines::cusparse_spmm(gpu, &p.a, &p.b_col);
        },
        &mut |p| {
            baselines::cusparse_spmm_profile::<f32>(gpu, &p.a, p.b.cols());
        },
    );
    time(
        "merge_spmm",
        &mut |p| {
            baselines::merge_spmm(gpu, &p.a, &p.b).unwrap_or_else(|e| panic!("merge: {e}"));
        },
        &mut |p| {
            baselines::merge_spmm_profile::<f32>(gpu, &p.a, p.b.cols())
                .unwrap_or_else(|e| panic!("merge: {e}"));
        },
    );
    time(
        "nnz_split",
        &mut |p| {
            baselines::nnz_split_spmm(gpu, &p.a, &p.b);
        },
        &mut |p| {
            baselines::nnz_split_spmm_profile::<f32>(gpu, &p.a, p.b.cols());
        },
    );
    time(
        "ell_spmm",
        &mut |p| {
            baselines::ell_spmm(gpu, &p.a_ell, &p.b);
        },
        &mut |p| {
            baselines::ell_spmm_profile(gpu, &p.a_ell, p.b.cols());
        },
    );
    time(
        "block_spmm",
        &mut |p| {
            baselines::block_spmm(gpu, &p.a_bsr, &p.b);
        },
        &mut |p| {
            baselines::block_spmm_profile(gpu, &p.a_bsr, p.b.cols());
        },
    );
    time(
        "gemm",
        &mut |p| {
            baselines::gemm(gpu, &p.lhs, &p.rhs.transpose());
        },
        &mut |p| {
            baselines::gemm_profile(gpu, p.lhs.rows(), p.lhs.cols(), p.rhs.rows());
        },
    );
    time(
        "transpose",
        &mut |p| {
            baselines::transpose(gpu, &p.b);
        },
        &mut |p| {
            baselines::transpose_profile(gpu, p.b.rows(), p.b.cols());
        },
    );
}

fn main() {
    let reps: u32 = if has_flag("--full") {
        8
    } else if has_flag("--quick") {
        2
    } else {
        4
    };
    let problems = build_problems();
    let gpu = Gpu::v100();

    // Warm up once: rayon worker pool, scratch arenas, allocator high-water.
    sweep(&gpu, &problems);

    if has_flag("--breakdown") {
        println!("per-kernel breakdown ({reps} reps):");
        breakdown(&gpu, &problems, reps);
    }

    // Pass 1: cold functional launches.
    let a0 = allocs();
    let t = Instant::now();
    let mut flops = 0u64;
    let mut launches = 0u64;
    for _ in 0..reps {
        let (f, l) = sweep(&gpu, &problems);
        flops += f;
        launches += l;
    }
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let cold_allocs = allocs() - a0;
    let gflops = flops as f64 / 1e9 / (cold_ms / 1e3);
    let allocs_per_launch = cold_allocs as f64 / launches.max(1) as f64;

    // Pass 2: warm cache replay (functional re-execution, stats memoized).
    let cache = LaunchCache::new();
    replay_sweep(&gpu, &cache, &problems); // fill
    replay_sweep(&gpu, &cache, &problems); // settle arenas on every worker
    let a0 = allocs();
    let t = Instant::now();
    let mut replay_launches = 0u64;
    for _ in 0..reps {
        replay_launches += replay_sweep(&gpu, &cache, &problems);
    }
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    let replay_allocs = allocs() - a0;
    let replay_allocs_per_launch = replay_allocs as f64 / replay_launches.max(1) as f64;

    let checkouts = gpu_sim::arena::checkouts();
    let pool_misses = gpu_sim::arena::pool_misses();
    let miss_per_checkout = if checkouts == 0 {
        0.0
    } else {
        pool_misses as f64 / checkouts as f64
    };

    let mut t = Table::new(
        "funcwall — functional engine wall-clock (deterministic kernel grid)",
        &["pass", "wall ms", "launches", "allocs/launch", "GFLOP/s"],
    );
    t.row(&[
        "cold (functional launches)".into(),
        format!("{cold_ms:.1}"),
        format!("{launches}"),
        format!("{allocs_per_launch:.1}"),
        format!("{gflops:.2}"),
    ]);
    t.row(&[
        "replay (warm cache)".into(),
        format!("{replay_ms:.1}"),
        format!("{replay_launches}"),
        format!("{replay_allocs_per_launch:.3}"),
        "-".into(),
    ]);
    t.print();
    println!(
        "scratch arena: {checkouts} checkouts, {pool_misses} pool misses \
         ({miss_per_checkout:.6} misses/checkout)"
    );

    let grid = if has_flag("--full") {
        "full"
    } else if has_flag("--quick") {
        "quick"
    } else {
        "default"
    };
    // Hand-rolled flat JSON: the vendored serde stub cannot serialize.
    let json = format!(
        "{{\n  \"bench\": \"funcwall\",\n  \"grid\": \"{grid}\",\n  \"reps\": {reps},\n  \"launches\": {launches},\n  \"cold_ms\": {cold_ms:.3},\n  \"functional_gflops\": {gflops:.3},\n  \"allocs_per_launch\": {allocs_per_launch:.3},\n  \"replay_ms\": {replay_ms:.3},\n  \"replay_launches\": {replay_launches},\n  \"replay_allocs_per_launch\": {replay_allocs_per_launch:.4},\n  \"arena_checkouts\": {checkouts},\n  \"arena_pool_misses\": {pool_misses},\n  \"arena_miss_per_checkout\": {miss_per_checkout:.6}\n}}\n",
    );
    let out = "BENCH_funcwall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    // CI gate on the machine-independent metrics.
    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        let result = gate::read_baseline(&baseline_path).and_then(|base| {
            // Cold-path allocations per launch: kernel construction and
            // output buffers are expected; a jump means staging buffers
            // started round-tripping the heap again. 25% headroom for
            // allocator/runtime noise.
            gate::require_not_above(
                "allocs_per_launch",
                gate::metric_f64(&base, "allocs_per_launch", &baseline_path)?,
                allocs_per_launch,
                1.25,
            )?;
            // The warm replay path must stay allocation-free per launch
            // (the committed baseline is 0; any headroom would defeat it).
            gate::require_not_above(
                "replay_allocs_per_launch",
                gate::metric_f64(&base, "replay_allocs_per_launch", &baseline_path)?,
                replay_allocs_per_launch,
                1.0,
            )?;
            // The arena must keep serving checkouts from the pool.
            gate::require_not_above(
                "arena_miss_per_checkout",
                gate::metric_f64(&base, "arena_miss_per_checkout", &baseline_path)?.max(0.000_05),
                miss_per_checkout,
                2.0,
            )?;
            Ok(())
        });
        match result {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}
