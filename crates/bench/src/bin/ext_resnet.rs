//! Extension: end-to-end sparse ResNet-50 inference (batch 1, V100).
//!
//! The paper benchmarks ResNet-50's convolutions individually (they are the
//! corpus of Figure 9); this extension assembles them into the full
//! network, the same way Table IV does for MobileNetV1, and sweeps the
//! pruning sparsity.

use dnn::resnet;
use gpu_sim::Gpu;
use sputnik_bench::{write_json, Table};

fn main() {
    let gpu = Gpu::v100();
    let mut table = Table::new(
        "Extension — sparse ResNet-50 inference (batch 1, V100)",
        &[
            "variant",
            "frames/s",
            "inference (us)",
            "sparse convs (us)",
            "dense layers (us)",
            "weights (MB)",
        ],
    );
    let mut results = Vec::new();

    let dense = resnet::benchmark(&gpu, None);
    table.row(&[
        "dense".into(),
        format!("{:.0}", dense.frames_per_second),
        format!("{:.0}", dense.inference_us),
        "-".into(),
        format!("{:.0}", dense.dense_layer_us),
        format!("{:.1}", dense.weight_bytes as f64 / 1e6),
    ]);
    results.push(dense);

    for &s in &[0.7, 0.8, 0.9, 0.95] {
        let b = resnet::benchmark(&gpu, Some(s));
        table.row(&[
            format!("sparse {:.0}%", s * 100.0),
            format!("{:.0}", b.frames_per_second),
            format!("{:.0}", b.inference_us),
            format!("{:.0}", b.sparse_layer_us),
            format!("{:.0}", b.dense_layer_us),
            format!("{:.1}", b.weight_bytes as f64 / 1e6),
        ]);
        results.push(b);
    }
    table.print();

    let d = &results[0];
    let s90 = &results[3];
    println!(
        "90% sparse: {:.2}x end-to-end speedup, {:.1}x smaller weights",
        d.inference_us / s90.inference_us,
        d.weight_bytes as f64 / s90.weight_bytes as f64
    );
    println!("(Amdahl: the dense stem/shortcuts/classifier bound the end-to-end gain.)");
    write_json("ext_resnet", &results);
}
