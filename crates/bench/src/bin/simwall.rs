//! Wall-clock benchmark of the simulator's launch fast path.
//!
//! Every other bench bin reports *simulated* microseconds; this one times
//! the simulator itself. It runs a Figure-9-style corpus sweep (SpMM +
//! SDDMM heuristic profiles) three times:
//!
//! 1. `slowpath` — block dedup off, no launch cache: the pre-fast-path
//!    engine's per-block cost.
//! 2. `cold` — dedup on, fresh [`LaunchCache`]: the fast path populating
//!    the cache.
//! 3. `warm` — the same cache again: every launch served by memoized
//!    replay, the steady state of the tuner / dispatch ladder / repeated
//!    sweeps.
//!
//! Results land in `BENCH_simwall.json` (repo root) so the perf trajectory
//! is tracked across PRs. `--check <baseline.json>` gates CI: wall-clock
//! times are machine-dependent, so the gate is on the cold/warm ratio —
//! the quantity the fast path actually controls — and fails when the
//! current speedup drops below half the committed baseline's.

// Wall-timing bin: reading the host clock is the whole point here, and is
// exactly what `clippy.toml` bans inside simulated-clock code.
#![allow(clippy::disallowed_methods)]

use gpu_sim::{Gpu, LaunchCache, LaunchSummary};
use sparse::dataset::{self, ProblemSpec};
use sputnik::{SddmmConfig, SpmmConfig};
use sputnik_bench::{gate, has_flag, Table};
use std::time::Instant;

/// One full sweep over the corpus; returns the accumulated summary.
fn sweep(
    gpu: &Gpu,
    cache: Option<&LaunchCache>,
    problems: &[(ProblemSpec, sparse::CsrMatrix<f32>)],
) -> LaunchSummary {
    let mut summary = LaunchSummary::default();
    for (spec, a) in problems {
        let (inference, training) = spec.batch_sizes();
        for batch in [inference, training] {
            let n = spec.n(batch);
            let spmm_cfg = SpmmConfig::heuristic::<f32>(n);
            let sddmm_cfg = SddmmConfig::heuristic::<f32>(n);
            match cache {
                Some(lc) => {
                    let (s, hit) =
                        sputnik::spmm_profile_cached::<f32>(gpu, lc, a, spec.cols, n, spmm_cfg);
                    summary.add_cached(&s, hit);
                    let (s, hit) = sputnik::sddmm_profile_cached::<f32>(gpu, lc, a, n, sddmm_cfg);
                    summary.add_cached(&s, hit);
                }
                None => {
                    summary.add(&sputnik::spmm_profile::<f32>(
                        gpu, a, spec.cols, n, spmm_cfg,
                    ));
                    summary.add(&sputnik::sddmm_profile::<f32>(gpu, a, n, sddmm_cfg));
                }
            }
        }
    }
    summary
}

fn main() {
    let count = if has_flag("--full") {
        48
    } else if has_flag("--quick") {
        6
    } else {
        16
    };
    let specs = dataset::dl_corpus_sample(count, 17);
    let problems: Vec<(ProblemSpec, sparse::CsrMatrix<f32>)> = specs
        .iter()
        .map(|spec| (spec.clone(), spec.generate()))
        .collect();

    // Pass 1: the pre-fast-path engine (no dedup, no cache).
    let slow_gpu = Gpu::v100().with_block_dedup(false);
    let t = Instant::now();
    let slow = sweep(&slow_gpu, None, &problems);
    let slowpath_ms = t.elapsed().as_secs_f64() * 1e3;

    // Pass 2 + 3: fast path, cold then warm.
    let gpu = Gpu::v100();
    let cache = LaunchCache::new();
    let t = Instant::now();
    let cold = sweep(&gpu, Some(&cache), &problems);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut warm = sweep(&gpu, Some(&cache), &problems);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    warm.absorb_cache(&cache);

    // The fast path must not change simulated results: the warm pass replays
    // exactly the cold pass's stats.
    assert_eq!(cold.time_us, warm.time_us, "cache replay changed results");
    assert_eq!(slow.time_us, cold.time_us, "dedup changed results");

    let cold_warm = cold_ms / warm_ms.max(1e-9);
    let slow_cold = slowpath_ms / cold_ms.max(1e-9);

    let mut t = Table::new(
        "simwall — simulator wall-clock (fig09-style sweep)",
        &["pass", "wall ms", "launches", "cache hits"],
    );
    t.row(&[
        "slowpath (no dedup)".into(),
        format!("{slowpath_ms:.1}"),
        format!("{}", slow.launches),
        "-".into(),
    ]);
    t.row(&[
        "cold (dedup + cache fill)".into(),
        format!("{cold_ms:.1}"),
        format!("{}", cold.launches),
        format!("{}/{}", cold.cache_hits, cold.launches),
    ]);
    t.row(&[
        "warm (cache replay)".into(),
        format!("{warm_ms:.1}"),
        format!("{}", warm.launches),
        format!("{}/{}", warm.cache_hits, warm.launches),
    ]);
    t.print();
    println!("cold -> warm speedup: {cold_warm:.1}x   slowpath -> cold: {slow_cold:.2}x");

    let grid = if has_flag("--full") {
        "full"
    } else if has_flag("--quick") {
        "quick"
    } else {
        "default"
    };
    // The vendored serde stub cannot serialize, so the record is written by
    // hand — one flat object, stable key order.
    let json = format!(
        "{{\n  \"bench\": \"simwall\",\n  \"grid\": \"{grid}\",\n  \"problems\": {count},\n  \"launches_per_pass\": {launches},\n  \"slowpath_ms\": {slowpath_ms:.3},\n  \"cold_ms\": {cold_ms:.3},\n  \"warm_ms\": {warm_ms:.3},\n  \"cold_warm_speedup\": {cold_warm:.3},\n  \"slowpath_cold_speedup\": {slow_cold:.3},\n  \"cache_hits_warm\": {hits},\n  \"cache_misses_cold\": {misses},\n  \"cache_evictions\": {evictions}\n}}\n",
        launches = cold.launches,
        hits = warm.cache_hits,
        misses = cold.cache_misses,
        evictions = warm.cache_evictions,
    );
    let out = "BENCH_simwall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    // CI gate: compare against a committed baseline, if asked.
    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        match check_regression(&baseline_path, cold_warm) {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}

/// Fail when the cold→warm speedup regressed to below half the baseline's.
fn check_regression(baseline_path: &str, current_speedup: f64) -> Result<(), String> {
    let text = gate::read_baseline(baseline_path)?;
    let baseline = gate::metric_f64(&text, "cold_warm_speedup", baseline_path)?;
    gate::require_not_below("cold_warm_speedup", baseline, current_speedup, 0.5)
}
