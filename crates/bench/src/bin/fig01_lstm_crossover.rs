//! Figure 1: SpMM runtime vs sparsity for the weight-sparse LSTM problem
//! (input 8192, hidden 2048, batch 128, FP32, V100), showing the sparsity
//! level at which Sputnik's sparse computation overtakes dense cuBLAS and
//! the (far higher) level cuSPARSE needs.
//!
//! Paper anchors: Sputnik beats dense at ~71% sparsity; cuSPARSE requires
//! ~14x fewer nonzeros for the same performance.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::gen;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    sparsity: f64,
    sputnik_us: f64,
    cusparse_us: f64,
    dense_us: f64,
}

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = (8192usize, 2048usize, 128usize);

    let dense_us = baselines::gemm_profile(&gpu, m, k, n).time_us;

    let sparsities: Vec<f64> = if has_flag("--quick") {
        vec![0.5, 0.7, 0.8, 0.9, 0.95, 0.98]
    } else {
        vec![
            0.5, 0.6, 0.65, 0.7, 0.71, 0.75, 0.8, 0.85, 0.9, 0.95, 0.98, 0.99,
        ]
    };

    let mut table = Table::new(
        "Figure 1 — SpMM runtime vs sparsity (LSTM 8192/2048/128, FP32, V100)",
        &[
            "sparsity",
            "sputnik_us",
            "cusparse_us",
            "dense_us",
            "sputnik_vs_dense",
        ],
    );
    let mut points = Vec::new();
    let mut sputnik_crossover: Option<f64> = None;
    let mut cusparse_crossover: Option<f64> = None;

    for &s in &sparsities {
        let a = gen::uniform(m, k, s, 0xf16_001 + (s * 1000.0) as u64);
        let cfg = sputnik::SpmmConfig::heuristic::<f32>(n);
        let ours = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg).time_us;
        let cusp = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, n).time_us;
        if ours < dense_us && sputnik_crossover.is_none() {
            sputnik_crossover = Some(s);
        }
        if cusp < dense_us && cusparse_crossover.is_none() {
            cusparse_crossover = Some(s);
        }
        table.row(&[
            format!("{:.2}", s),
            format!("{:.1}", ours),
            format!("{:.1}", cusp),
            format!("{:.1}", dense_us),
            format!("{:.2}x", dense_us / ours),
        ]);
        points.push(Point {
            sparsity: s,
            sputnik_us: ours,
            cusparse_us: cusp,
            dense_us,
        });
    }

    table.print();
    println!(
        "Sputnik overtakes dense at sparsity {} (paper: ~0.71)",
        sputnik_crossover.map_or("never".into(), |s| format!("{s:.2}"))
    );
    println!(
        "cuSPARSE overtakes dense at sparsity {} (paper: needs ~14x fewer nonzeros)",
        cusparse_crossover.map_or(">0.99 (never in range)".into(), |s| format!("{s:.2}"))
    );
    write_json("fig01_lstm_crossover", &points);
}
