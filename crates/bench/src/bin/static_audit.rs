//! Statically audit every registered kernel/launch pair — the workspace's
//! `compute-sanitizer`-without-running-anything pass.
//!
//! For each pair in [`sputnik_bench::registry`] the bin runs
//! [`Gpu::audit`], which analyzes the launch descriptor (declared
//! footprints, alignment residue classes, shared-memory staging bounds,
//! grid/occupancy limits, barrier structure) against the device model and
//! returns a per-check three-valued verdict: `proven` (the dynamic check
//! can be disarmed), `refuted` (the launch is rejected at dispatch before
//! a single block runs), or `needs_dynamic` (undecidable from metadata —
//! the sanitizer keeps the check armed).
//!
//! The bin then times the payoff, sweeping the same registry four ways:
//!
//! * `audit` — the static pass alone. Pure metadata analysis; orders of
//!   magnitude cheaper than any dynamic sweep.
//! * `full` — `Gpu::sanitize_full`, every dynamic check armed (the
//!   pre-audit `sanitize_all` behavior).
//! * `audited` — `Gpu::sanitize`, proven checks disarmed. The cross-block
//!   racecheck has no static counterpart and stays on, so this bounds the
//!   audit's first-launch saving.
//! * `cached` — `Gpu::sanitize_cached` against a warm [`LaunchCache`]:
//!   fingerprint-identical repeat launches replay the memoized report and
//!   skip the whole dynamic pass. This is the production configuration
//!   (`sanitize_all` runs it) and where the wall time actually collapses,
//!   because the racecheck's shadow map — the dominant dynamic cost — is
//!   skipped too.
//!
//! Results land in `BENCH_staticwall.json` (repo root). `--check
//! <baseline.json>` gates CI on the machine-independent counters — pair
//! count, per-class proven counts (exact: a kernel regressing from
//! `proven` to `needs_dynamic` is a lost static guarantee), zero
//! refutations on shipped kernels, the >= 60% proven floor — plus the
//! in-process wall ratios (audit and cached sweeps must stay far cheaper
//! than the full dynamic sweep; the audited sweep must never be
//! meaningfully slower).

// Wall-timing bin: reading the host clock is the whole point here, and is
// exactly what `clippy.toml` bans inside simulated-clock code.
#![allow(clippy::disallowed_methods)]

use gpu_sim::{CheckClass, Gpu, LaunchCache, Verdict};
use sputnik_bench::{gate, has_flag, registry, Table};
use std::time::Instant;

/// Per-class verdict tallies, indexed `[class][verdict]`.
#[derive(Default)]
struct Tally {
    counts: [[u64; 3]; CheckClass::ALL.len()],
}

/// Exit with a message on a failed launch: in this bin an `Err` means a
/// registered kernel refused to sanitize, which is itself an audit failure.
fn ok<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("static_audit: {what}: {e}");
        std::process::exit(1);
    })
}

fn class_idx(class: CheckClass) -> usize {
    CheckClass::ALL
        .iter()
        .position(|&x| x == class)
        .unwrap_or_else(|| unreachable!("check class missing from CheckClass::ALL"))
}

fn verdict_idx(v: Verdict) -> usize {
    match v {
        Verdict::Proven => 0,
        Verdict::NeedsDynamic => 1,
        Verdict::Refuted => 2,
    }
}

impl Tally {
    fn add(&mut self, class: CheckClass, v: Verdict) {
        let c = class_idx(class);
        self.counts[c][verdict_idx(v)] += 1;
    }

    fn class(&self, class: CheckClass, v: Verdict) -> u64 {
        let c = class_idx(class);
        self.counts[c][verdict_idx(v)]
    }

    fn total(&self, v: Verdict) -> u64 {
        self.counts.iter().map(|row| row[verdict_idx(v)]).sum()
    }
}

fn main() {
    let verbose = has_flag("--verbose");
    let reps: u32 = if has_flag("--full") {
        8
    } else if has_flag("--quick") {
        1
    } else {
        3
    };
    let gpu = Gpu::v100();

    // Pass 1: the audit itself. Pure metadata analysis; also the list the
    // CI gate keys on.
    let mut tally = Tally::default();
    let mut pairs = 0u64;
    let mut refutations: Vec<String> = Vec::new();
    registry::for_each_kernel(&mut |kernel| {
        let audit = gpu.audit(kernel);
        pairs += 1;
        for f in &audit.findings {
            tally.add(f.class, f.verdict);
            if f.verdict == Verdict::Refuted {
                refutations.push(format!(
                    "{} [{}]: {}",
                    audit.kernel,
                    f.class.name(),
                    f.detail
                ));
            }
        }
        if verbose {
            println!("{audit}");
        }
    });

    let mut table = Table::new(
        "static_audit — per-class verdicts over the kernel registry",
        &["check class", "proven", "needs_dynamic", "refuted"],
    );
    for &class in &CheckClass::ALL {
        table.row(&[
            class.name().into(),
            format!("{}", tally.class(class, Verdict::Proven)),
            format!("{}", tally.class(class, Verdict::NeedsDynamic)),
            format!("{}", tally.class(class, Verdict::Refuted)),
        ]);
    }
    table.print();

    let proven = tally.total(Verdict::Proven);
    let needs_dynamic = tally.total(Verdict::NeedsDynamic);
    let refuted = tally.total(Verdict::Refuted);
    let checks_total = pairs * CheckClass::ALL.len() as u64;
    let proven_frac = proven as f64 / checks_total.max(1) as f64;
    println!(
        "{pairs} kernel/launch pairs, {checks_total} checks: \
         {proven} proven ({:.1}%), {needs_dynamic} dynamic, {refuted} refuted",
        proven_frac * 100.0
    );
    for r in &refutations {
        println!("REFUTED {r}");
    }

    // Pass 2: what the audit buys. Same registry swept four ways. Warm up
    // once so worker pools and arenas do not bill the first measured sweep.
    registry::for_each_kernel(&mut |kernel| {
        ok(gpu.sanitize_full(kernel), "warmup launch");
    });
    let t = Instant::now();
    for _ in 0..reps {
        registry::for_each_kernel(&mut |kernel| {
            gpu.audit(kernel);
        });
    }
    let audit_sweep_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let t = Instant::now();
    for _ in 0..reps {
        registry::for_each_kernel(&mut |kernel| {
            ok(gpu.sanitize_full(kernel), "full sanitize");
        });
    }
    let full_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let t = Instant::now();
    for _ in 0..reps {
        registry::for_each_kernel(&mut |kernel| {
            ok(gpu.sanitize(kernel), "audited sanitize");
        });
    }
    let audited_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    // The registry is deterministic, so the pair index is a sound operand
    // fingerprint: same index, same operands.
    let cache = LaunchCache::new();
    let mut fp = 0u64;
    registry::for_each_kernel(&mut |kernel| {
        fp += 1;
        ok(gpu.sanitize_cached(&cache, fp, kernel), "cache fill");
    });
    let t = Instant::now();
    let mut cache_hits = 0u64;
    for _ in 0..reps {
        let mut fp = 0u64;
        registry::for_each_kernel(&mut |kernel| {
            fp += 1;
            let (_, _, hit) = ok(gpu.sanitize_cached(&cache, fp, kernel), "cached sanitize");
            cache_hits += u64::from(hit);
        });
    }
    let cached_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let audit_vs_full = audit_sweep_ms / full_ms.max(1e-9);
    let audited_vs_full = audited_ms / full_ms.max(1e-9);
    let cached_vs_full = cached_ms / full_ms.max(1e-9);
    println!(
        "sweep walls [{reps} reps]: audit {audit_sweep_ms:.2} ms ({:.1}% of full), \
         full {full_ms:.1} ms, audited {audited_ms:.1} ms ({:.1}%), \
         warm-cache {cached_ms:.1} ms ({:.1}%, {cache_hits} hits)",
        audit_vs_full * 100.0,
        audited_vs_full * 100.0,
        cached_vs_full * 100.0
    );

    // Hand-rolled flat JSON: the vendored serde stub cannot serialize.
    let mut json = String::from("{\n  \"bench\": \"staticwall\",\n");
    json.push_str(&format!("  \"pairs_total\": {pairs},\n"));
    json.push_str(&format!("  \"checks_total\": {checks_total},\n"));
    for &class in &CheckClass::ALL {
        for (v, tag) in [
            (Verdict::Proven, "proven"),
            (Verdict::NeedsDynamic, "needs_dynamic"),
            (Verdict::Refuted, "refuted"),
        ] {
            json.push_str(&format!(
                "  \"{}_{}\": {},\n",
                class.name(),
                tag,
                tally.class(class, v)
            ));
        }
    }
    json.push_str(&format!("  \"proven_total\": {proven},\n"));
    json.push_str(&format!("  \"needs_dynamic_total\": {needs_dynamic},\n"));
    json.push_str(&format!("  \"refuted_total\": {refuted},\n"));
    json.push_str(&format!("  \"proven_frac\": {proven_frac:.4},\n"));
    json.push_str(&format!("  \"audit_ms\": {audit_sweep_ms:.3},\n"));
    json.push_str(&format!("  \"sanitize_full_ms\": {full_ms:.3},\n"));
    json.push_str(&format!("  \"sanitize_audited_ms\": {audited_ms:.3},\n"));
    json.push_str(&format!("  \"sanitize_cached_ms\": {cached_ms:.3},\n"));
    json.push_str(&format!("  \"audit_vs_full\": {audit_vs_full:.4},\n"));
    json.push_str(&format!("  \"audited_vs_full\": {audited_vs_full:.4},\n"));
    json.push_str(&format!("  \"cached_vs_full\": {cached_vs_full:.4}\n}}\n"));
    let out = "BENCH_staticwall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    // CI gate.
    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        let result = gate::read_baseline(&baseline_path).and_then(|base| {
            // The registry itself is deterministic: a pair-count change
            // means a kernel was added or dropped — regenerate the
            // baseline deliberately, don't let it drift.
            gate::require_exact(
                "pairs_total",
                gate::metric_u64(&base, "pairs_total", &baseline_path)?,
                pairs,
            )?;
            // Shipped kernels must audit clean: any refutation is a bug
            // in a kernel's declared facts or in the kernel itself.
            gate::require_exact("refuted_total", 0, refuted)?;
            // Per-class proven counts are exact: a kernel silently
            // regressing from `proven` to `needs_dynamic` loses a static
            // guarantee (and re-arms its dynamic check) without failing
            // any test — this is the gate that catches it.
            for &class in &CheckClass::ALL {
                let key = format!("{}_proven", class.name());
                gate::require_exact(
                    &key,
                    gate::metric_u64(&base, &key, &baseline_path)?,
                    tally.class(class, Verdict::Proven),
                )?;
            }
            // The paper-level acceptance floor, independent of baseline.
            gate::require_not_below("proven_frac", 0.60, proven_frac, 1.0)?;
            // Wall gates on in-process ratios (far more stable than either
            // absolute wall on a shared CI runner). The static audit must
            // stay orders of magnitude cheaper than the dynamic sweep it
            // replaces checks of — 0.25 is hugely generous vs the ~0.01
            // observed. The warm-cache sweep (production mode) must keep
            // collapsing the dynamic cost. The audited cold sweep only has
            // the maskable checks to shed — the always-on racecheck bounds
            // its saving — so it is gated as "never meaningfully slower".
            gate::require_not_above("audit_vs_full", 0.25, audit_vs_full, 1.0)?;
            gate::require_not_above("cached_vs_full", 0.60, cached_vs_full, 1.0)?;
            gate::require_not_above("audited_vs_full", 1.0, audited_vs_full, 1.15)?;
            gate::require_exact("cache_hits", u64::from(reps) * pairs, cache_hits)?;
            Ok(())
        });
        match result {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}
