//! Extension study: structured (block) vs unstructured sparsity.
//!
//! The paper's introduction motivates unstructured kernels: enforcing block
//! structure "is able to recover much of the performance achieved by dense
//! computation, \[but\] the constraint on the location of nonzeros can
//! significantly degrade model quality". This study quantifies both sides on
//! the simulator: kernel throughput (block-sparse SpMM in the style of the
//! OpenAI kernels vs Sputnik vs dense) and a training-free quality proxy
//! (the fraction of weight magnitude a block-pruned matrix retains relative
//! to unstructured pruning at the same parameter budget).

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::{block, Matrix};
use sputnik::SpmmConfig;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    block_size: usize,
    sparsity: f64,
    time_us: f64,
    tflops: f64,
    magnitude_retention: f64,
    /// Throughput x retention: a crude "useful throughput per unit quality".
    quality_weighted_tflops: f64,
}

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = if has_flag("--quick") {
        (1024, 1024, 128)
    } else {
        (4096, 2048, 128)
    };
    let weights = Matrix::<f32>::random(m, k, 0xb10c);

    let sparsities: &[f64] = &[0.7, 0.8, 0.9];
    let block_sizes: &[usize] = &[4, 8, 16, 32];

    let dense_us = baselines::gemm_profile(&gpu, m, k, n).time_us;
    println!("dense GEMM reference: {dense_us:.1} us  (M={m}, K={k}, N={n})\n");

    let mut table = Table::new(
        "Extension — structured vs unstructured sparsity",
        &[
            "sparsity",
            "variant",
            "time (us)",
            "TFLOP/s",
            "retention",
            "quality-weighted TF/s",
        ],
    );
    let mut points = Vec::new();

    for &s in sparsities {
        // Unstructured: Sputnik on magnitude-pruned weights.
        let unstructured = dnn::magnitude_prune(&weights, s);
        let stats = sputnik::spmm_profile::<f32>(
            &gpu,
            &unstructured,
            k,
            n,
            SpmmConfig::heuristic::<f32>(n),
        );
        table.row(&[
            format!("{s:.1}"),
            "unstructured (Sputnik)".into(),
            format!("{:.1}", stats.time_us),
            format!("{:.2}", stats.tflops),
            "1.000".into(),
            format!("{:.2}", stats.tflops),
        ]);
        points.push(Point {
            block_size: 1,
            sparsity: s,
            time_us: stats.time_us,
            tflops: stats.tflops,
            magnitude_retention: 1.0,
            quality_weighted_tflops: stats.tflops,
        });

        for &bs in block_sizes {
            let blocked = block::block_prune(&weights, bs, s);
            let bstats = baselines::block_spmm_profile(&gpu, &blocked, n);
            let retention = block::block_magnitude_retention(&weights, bs, s);
            let qw = bstats.tflops * retention;
            table.row(&[
                format!("{s:.1}"),
                format!("{bs}x{bs} blocks"),
                format!("{:.1}", bstats.time_us),
                format!("{:.2}", bstats.tflops),
                format!("{retention:.3}"),
                format!("{qw:.2}"),
            ]);
            points.push(Point {
                block_size: bs,
                sparsity: s,
                time_us: bstats.time_us,
                tflops: bstats.tflops,
                magnitude_retention: retention,
                quality_weighted_tflops: qw,
            });
        }
    }
    table.print();

    // Headline: at 90% sparsity, where do block kernels overtake Sputnik on
    // raw speed, and what does it cost in retention?
    let at90: Vec<&Point> = points
        .iter()
        .filter(|p| (p.sparsity - 0.9).abs() < 1e-9)
        .collect();
    if let Some(unstr) = at90.iter().find(|p| p.block_size == 1) {
        for p in at90.iter().filter(|p| p.block_size > 1) {
            println!(
                "{0}x{0} blocks @90%: {1:.2}x the speed of unstructured, {2:.1}% magnitude retention",
                p.block_size,
                unstr.time_us / p.time_us,
                p.magnitude_retention * 100.0
            );
        }
    }
    println!("\nThe paper's tradeoff, quantified: structure buys speed and sells model quality.");
    write_json("ext_block_sparse", &points);
}
