//! Fleet-scaling benchmark: sharded SpMM swept across simulated device
//! counts, plus fleet serving and a validated multi-device Chrome trace.
//!
//! Three sweeps over 1/2/4/8 V100s connected by NVLink:
//!
//! - **Transformer attention, row-sharded** (data parallel): the paper's
//!   big-compute workload. This is the headline scaling curve and the one
//!   CI gates at >= 70% efficiency on 4 devices.
//! - **Transformer attention, K-split** (tensor parallel): reduction-
//!   dimension chunks folded in rank order plus a simulated ring
//!   all-reduce. Scales worse by construction (the all-reduce moves the
//!   whole output per step) — reported honestly, gated only on identity
//!   and interconnect liveness.
//! - **MobileNet 1x1 conv, row-sharded**: small output tiles, so gather
//!   latency bites early. The sweep documents saturation rather than
//!   pretending linearity.
//!
//! Every sweep point is verified bit-identical to the single-GPU reference
//! kernel, and every shard goes through the static auditor + sanitizer +
//! LaunchCache (replays are functional, so identity holds warm too).
//!
//! On top of the sweeps: a fixed-load serving comparison (the continuous-
//! batching front door on a 1-device vs 2-device fleet — added devices must
//! buy tail latency), and a traced 4-device run validated as well-formed
//! Chrome `trace_event` JSON with per-device tracks and interconnect
//! counter samples.
//!
//! Everything is *simulated* time: deterministic, machine-independent, and
//! therefore tightly gateable in CI.
//!
//! `--check <baseline.json>` gates:
//!
//! - `tf_row_eff_d4` >= 0.70 (absolute floor from the scaling target) and
//!   >= 0.95x the committed baseline.
//! - `identical_all` == 1: every point of every sweep matched the
//!   single-GPU kernel bit for bit.
//! - nonzero `transfers` on every multi-device point: sharding must cross
//!   the interconnect, not silently collapse to one device.
//! - `serve_p99_ratio` <= 1.0: two devices may never serve a worse p99
//!   than one at fixed load.
//! - `trace_ok` == 1 plus nonzero trace counters/tracks: the exported
//!   fleet trace stays structurally valid with per-device timelines.

use dnn::{
    mobilenet_pointwise_problem, scaling_sweep, transformer_attention_problem, FleetProblem,
    ScalingPoint, ShardStrategy,
};
use gpu_sim::{chrome_trace_json, trace, validate_chrome_trace, Fleet, LaunchCache};
use serve::{
    attention_topologies, generate, run_fleet, ArrivalProcess, Request, ServePolicy, TrafficConfig,
};
use sputnik::spmm_row_sharded;
use sputnik_bench::{gate, has_flag, Table};

const DEVICES: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0xF1EE7;

fn sweep(problem: &FleetProblem, strategy: ShardStrategy) -> Vec<ScalingPoint> {
    scaling_sweep(problem, strategy, &DEVICES)
        .unwrap_or_else(|e| panic!("{} {} sweep failed: {e}", problem.name, strategy.label()))
}

fn point(points: &[ScalingPoint], devices: usize) -> &ScalingPoint {
    points
        .iter()
        .find(|p| p.devices == devices)
        .unwrap_or_else(|| panic!("no sweep point for {devices} devices"))
}

fn tabulate(table: &mut Table, problem: &str, strategy: ShardStrategy, points: &[ScalingPoint]) {
    for p in points {
        table.row(&[
            problem.to_string(),
            strategy.label().to_string(),
            format!("{}", p.devices),
            format!("{:.1}", p.makespan_us),
            format!("{:.1}", p.kernel_us),
            format!("{:.3}", p.efficiency),
            format!("{:.2}", p.transfer_bytes as f64 / 1e6),
            format!("{}", p.transfers),
            format!("{}", u64::from(p.bit_identical)),
            format!("{}", p.cache_hits),
        ]);
    }
}

/// Flat JSON lines for one sweep: `<prefix>_{eff,makespan_us,mb,transfers,identical}_d<D>`.
fn emit_points(json: &mut String, prefix: &str, points: &[ScalingPoint]) {
    for p in points {
        json.push_str(&format!(
            "  \"{prefix}_eff_d{d}\": {:.6},\n  \"{prefix}_makespan_us_d{d}\": {:.3},\n  \"{prefix}_transfer_bytes_d{d}\": {},\n  \"{prefix}_transfers_d{d}\": {},\n  \"{prefix}_identical_d{d}\": {},\n",
            p.efficiency,
            p.makespan_us,
            p.transfer_bytes,
            p.transfers,
            u64::from(p.bit_identical),
            d = p.devices,
        ));
    }
}

fn burst_traffic(n: usize) -> Vec<Request> {
    generate(&TrafficConfig {
        seed: SEED,
        // Near-simultaneous arrivals: a pure drain race, so the p99 gap
        // between fleet widths is queueing delay and nothing else.
        process: ArrivalProcess::Poisson { rate_per_s: 1e9 },
        requests: n,
        deadline_us: 1e9,
        sddmm_fraction: 0.3,
        topologies: 2,
    })
}

fn main() {
    // Full mode doubles the sequence length; the gated numbers come from
    // the default size so CI and local runs agree.
    let seq: usize = if has_flag("--full") { 8192 } else { 4096 };
    let d_head: usize = 128;
    let band: usize = 640;
    let tf = transformer_attention_problem(seq, d_head, band, 0.995, SEED);
    let mb = mobilenet_pointwise_problem(1024, 512, 196, 0.85, SEED ^ 0xB0B);

    let mut table = Table::new(
        "fleetwall — sharded SpMM scaling vs device count (simulated, deterministic)",
        &[
            "problem",
            "strategy",
            "devs",
            "makespan us",
            "kernel us",
            "eff",
            "moved MB",
            "transfers",
            "identical",
            "cache hits",
        ],
    );

    let tf_row = sweep(&tf, ShardStrategy::RowShard);
    let tf_ks = sweep(&tf, ShardStrategy::KSplit);
    let mb_row = sweep(&mb, ShardStrategy::RowShard);
    tabulate(&mut table, "transformer", ShardStrategy::RowShard, &tf_row);
    tabulate(&mut table, "transformer", ShardStrategy::KSplit, &tf_ks);
    tabulate(&mut table, "mobilenet", ShardStrategy::RowShard, &mb_row);
    table.print();

    let identical_all = u64::from(
        tf_row
            .iter()
            .chain(&tf_ks)
            .chain(&mb_row)
            .all(|p| p.bit_identical),
    );

    // Serving on the fleet: same saturating burst against 1 and 2 devices.
    let topologies = attention_topologies(256, 64, SEED);
    let policy = ServePolicy {
        queue_capacity: 512,
        max_batch: 8,
        batch_window_us: 25.0,
        p99_budget_us: 1e9,
        ..ServePolicy::default()
    };
    let requests = burst_traffic(480);
    let one = run_fleet(&Fleet::v100(1), &topologies, &policy, &requests)
        .unwrap_or_else(|e| panic!("1-device serve failed: {e}"));
    let two = run_fleet(&Fleet::v100(2), &topologies, &policy, &requests)
        .unwrap_or_else(|e| panic!("2-device serve failed: {e}"));
    let serve_ratio = two.latency.p99() / one.latency.p99();
    println!(
        "serve burst x{}: 1-dev p99 {:.0} us, 2-dev p99 {:.0} us (ratio {:.3}), per-device batches {:?}",
        requests.len(),
        one.latency.p99(),
        two.latency.p99(),
        serve_ratio,
        two.per_device_batches,
    );

    // Traced 4-device run: per-device timeline tracks plus interconnect
    // byte counters, validated as structurally well-formed Chrome JSON.
    trace::enable();
    let cache = LaunchCache::new();
    let mut fleet = Fleet::v100(4);
    spmm_row_sharded(&mut fleet, &cache, &tf.a, &tf.b, tf.cfg)
        .unwrap_or_else(|e| panic!("traced 4-device run failed: {e}"));
    let events = trace::disable();
    let trace_json = chrome_trace_json(&events);
    let check = validate_chrome_trace(&trace_json)
        .unwrap_or_else(|e| panic!("fleet trace failed validation: {e}"));
    let trace_ok = u64::from(check.tracks >= 4 && check.counters > 0);
    println!(
        "trace: {} events across {} tracks ({} launches, {} counter samples) — ok={trace_ok}",
        check.events, check.tracks, check.launches, check.counters
    );

    // Hand-rolled flat JSON: the vendored serde stub cannot serialize.
    let mut json = String::from("{\n  \"bench\": \"fleetwall\",\n");
    json.push_str(&format!(
        "  \"seq\": {seq},\n  \"d_head\": {d_head},\n  \"band\": {band},\n  \"tf_nnz\": {},\n  \"mb_nnz\": {},\n",
        tf.a.nnz(),
        mb.a.nnz()
    ));
    emit_points(&mut json, "tf_row", &tf_row);
    emit_points(&mut json, "tf_ksplit", &tf_ks);
    emit_points(&mut json, "mb_row", &mb_row);
    json.push_str(&format!("  \"identical_all\": {identical_all},\n"));
    json.push_str(&format!(
        "  \"serve_p99_us_1dev\": {:.3},\n  \"serve_p99_us_2dev\": {:.3},\n  \"serve_p99_ratio\": {:.6},\n",
        one.latency.p99(),
        two.latency.p99(),
        serve_ratio
    ));
    json.push_str(&format!(
        "  \"trace_events\": {},\n  \"trace_tracks\": {},\n  \"trace_counters\": {},\n  \"trace_ok\": {trace_ok}\n}}\n",
        check.events, check.tracks, check.counters
    ));
    let out = "BENCH_fleetwall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        let eff4 = point(&tf_row, 4).efficiency;
        let result = gate::read_baseline(&baseline_path).and_then(|base| {
            // The headline target: row sharding the big transformer
            // workload must stay >= 70% efficient on 4 devices — an
            // absolute floor, then a 5%-slack comparison against the
            // committed curve to catch slow drift below it.
            gate::require_not_below("tf_row_eff_d4", 0.70, eff4, 1.0)?;
            gate::require_not_below(
                "tf_row_eff_d4",
                gate::metric_f64(&base, "tf_row_eff_d4", &baseline_path)?,
                eff4,
                0.95,
            )?;
            // Bit identity is binary: every point of every sweep, warm and
            // cold, matches the single-GPU kernel exactly.
            gate::require_exact("identical_all", 1, identical_all)?;
            // Multi-device runs must actually cross the interconnect.
            for (prefix, points) in [
                ("tf_row", &tf_row),
                ("tf_ksplit", &tf_ks),
                ("mb_row", &mb_row),
            ] {
                for p in points.iter().filter(|p| p.devices > 1) {
                    let name = format!("{prefix}_transfers_d{}", p.devices);
                    gate::require_nonzero(&name, p.transfers)?;
                    let name = format!("{prefix}_transfer_bytes_d{}", p.devices);
                    gate::require_nonzero(&name, p.transfer_bytes)?;
                }
            }
            // Two devices never serve a worse tail than one at fixed load.
            gate::require_not_above("serve_p99_ratio", 1.0, serve_ratio, 1.0)?;
            // The exported fleet trace stays valid and populated.
            gate::require_exact("trace_ok", 1, trace_ok)?;
            gate::require_nonzero("trace_events", check.events as u64)?;
            Ok(())
        });
        match result {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}
