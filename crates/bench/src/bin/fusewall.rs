//! Fusion-wall benchmark: the fused sparse-attention pipeline vs the
//! three-launch reference, swept across sequence lengths.
//!
//! For each sequence length (1k/2k/4k, the paper's band-attention shape
//! family: dense band of 128 plus 5% random off-diagonal, d_head 64):
//!
//! - the **unfused** pipeline cost: SDDMM + scaled sparse softmax + SpMM,
//!   three launches with their intermediates streamed through DRAM;
//! - the **fused** pipeline cost through the planner: one launch staging
//!   the scores row and index strips in shared memory, admitted through
//!   the full static-audit → sanitizer → LaunchCache funnel;
//! - a **bit-identity** check: the fused functional output must equal the
//!   three-launch reference exactly (`fusion_equivalence` pins this across
//!   grids; the bench re-verifies it at every swept point);
//! - a **replay** through the same LaunchCache: fused layers repeated
//!   across transformer layers/heads must be served from the cache.
//!
//! A traced replay is exported and validated as Chrome `trace_event` JSON
//! with the per-fusion span events.
//!
//! Everything is simulated time: deterministic and machine-independent.
//!
//! `--check <baseline.json>` gates:
//!
//! - `speedup_seq4096` >= 1.30 (absolute: the fusion must pay for itself
//!   at the paper's long-sequence regime) and >= 0.95x the committed
//!   baseline;
//! - `fused_seq<N>` == 1 at every point: the planner must prove and take
//!   the fused path on band masks;
//! - `bit_identical_all` == 1: fusion is bit-invisible at every point;
//! - `replay_cache_hits` nonzero: replayed fused layers hit the cache;
//! - `trace_ok` == 1: the traced run exports valid Chrome JSON with
//!   fusion span events.

use gpu_sim::{chrome_trace_json, trace, validate_chrome_trace, Gpu, LaunchCache};
use sparse::{gen, Matrix};
use sputnik::{
    attention_configs, sparse_attention_fused, sparse_attention_fused_profile,
    sparse_attention_unfused,
};
use sputnik_bench::{gate, has_flag, Table};

const SEED: u64 = 0xF05E;
const BAND: usize = 128;
const OFF_DIAG_SPARSITY: f64 = 0.95;
const D_HEAD: usize = 64;

struct Point {
    seq: usize,
    nnz: usize,
    staging_bytes: u64,
    fused: bool,
    unfused_us: f64,
    fused_us: f64,
    speedup: f64,
    bit_identical: bool,
    replay_hits: usize,
}

fn bench_point(gpu: &Gpu, cache: &LaunchCache, seq: usize) -> Point {
    let mask = gen::attention_mask(seq, BAND, OFF_DIAG_SPARSITY, SEED + seq as u64);
    let scale = 1.0 / (D_HEAD as f32).sqrt();

    // Unfused reference cost: three launches, heuristic configs (the same
    // configs the planner's fallback would pick).
    let configs = attention_configs(gpu, None, None, &mask, D_HEAD, D_HEAD);
    let unfused_us = sputnik::sddmm_profile::<f32>(gpu, &mask, D_HEAD, configs.sddmm).time_us
        + sputnik::sparse_softmax_scaled_profile::<f32>(gpu, &mask, scale).time_us
        + sputnik::spmm_profile::<f32>(gpu, &mask, mask.cols(), D_HEAD, configs.spmm).time_us;

    // Fused cost through the planner + cache funnel.
    let (time, decision, _) =
        sparse_attention_fused_profile(gpu, &mask, D_HEAD, D_HEAD, scale, Some(cache), None)
            .unwrap_or_else(|e| panic!("seq {seq}: fused profile failed: {e}"));

    // Replay: the same fused layer again — transformer layers and heads
    // share the topology, so this must be a cache hit.
    let (replayed, _, _) =
        sparse_attention_fused_profile(gpu, &mask, D_HEAD, D_HEAD, scale, Some(cache), None)
            .unwrap_or_else(|e| panic!("seq {seq}: fused replay failed: {e}"));

    // Bit identity at this exact point: fused functional vs the
    // three-launch reference.
    let q = Matrix::<f32>::random(seq, D_HEAD, SEED + 1);
    let k = Matrix::<f32>::random(seq, D_HEAD, SEED + 2);
    let v = Matrix::<f32>::random(seq, D_HEAD, SEED + 3);
    let run = sparse_attention_fused(gpu, &q, &k, &v, &mask, scale, None, None);
    let (reference, _) = sparse_attention_unfused(gpu, &q, &k, &v, &mask, scale, &run.configs)
        .unwrap_or_else(|e| panic!("seq {seq}: unfused reference failed: {e}"));
    let bit_identical = run
        .context
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());

    Point {
        seq,
        nnz: mask.nnz(),
        staging_bytes: decision.staging_bytes,
        fused: decision.fused && run.decision.fused,
        unfused_us,
        fused_us: time.fused_us,
        speedup: unfused_us / time.total_us(),
        bit_identical,
        replay_hits: replayed.cache_hits,
    }
}

fn main() {
    let seqs: &[usize] = if has_flag("--full") {
        &[1024, 2048, 4096, 8192]
    } else {
        &[1024, 2048, 4096]
    };
    let gpu = Gpu::v100();
    let cache = LaunchCache::new();

    let mut table = Table::new(
        "fusewall — fused sparse attention vs three-launch pipeline (simulated)",
        &[
            "seq",
            "nnz",
            "staging KB",
            "fused",
            "unfused us",
            "fused us",
            "speedup",
            "identical",
            "replay hits",
        ],
    );
    let points: Vec<Point> = seqs.iter().map(|&s| bench_point(&gpu, &cache, s)).collect();
    for p in &points {
        table.row(&[
            format!("{}", p.seq),
            format!("{}", p.nnz),
            format!("{:.1}", p.staging_bytes as f64 / 1024.0),
            format!("{}", u64::from(p.fused)),
            format!("{:.1}", p.unfused_us),
            format!("{:.1}", p.fused_us),
            format!("{:.2}x", p.speedup),
            format!("{}", u64::from(p.bit_identical)),
            format!("{}", p.replay_hits),
        ]);
    }
    table.print();

    // Traced replay of the largest point: the fused launch must export a
    // fusion span and stay structurally valid Chrome JSON.
    trace::enable();
    let last_seq = *seqs.last().unwrap_or(&4096);
    let mask = gen::attention_mask(last_seq, BAND, OFF_DIAG_SPARSITY, SEED + last_seq as u64);
    let scale = 1.0 / (D_HEAD as f32).sqrt();
    sparse_attention_fused_profile(&gpu, &mask, D_HEAD, D_HEAD, scale, Some(&cache), None)
        .unwrap_or_else(|e| panic!("traced fused run failed: {e}"));
    let events = trace::disable();
    let has_fusion_span = events.iter().any(|e| e.cat == "fusion");
    let trace_json = chrome_trace_json(&events);
    let check = validate_chrome_trace(&trace_json)
        .unwrap_or_else(|e| panic!("fusion trace failed validation: {e}"));
    let trace_ok = u64::from(has_fusion_span && check.launches >= 1);
    println!(
        "trace: {} events ({} launches) fusion_span={has_fusion_span} — ok={trace_ok}",
        check.events, check.launches
    );

    let bit_identical_all = u64::from(points.iter().all(|p| p.bit_identical));
    let all_fused = u64::from(points.iter().all(|p| p.fused));
    let replay_hits: u64 = points.iter().map(|p| p.replay_hits as u64).sum();
    let speedup_4096 = points
        .iter()
        .find(|p| p.seq == 4096)
        .map_or(0.0, |p| p.speedup);

    // Hand-rolled flat JSON: the vendored serde stub cannot serialize.
    let mut json = String::from("{\n  \"bench\": \"fusewall\",\n");
    json.push_str(&format!(
        "  \"band\": {BAND},\n  \"off_diag_sparsity\": {OFF_DIAG_SPARSITY},\n  \"d_head\": {D_HEAD},\n"
    ));
    for p in &points {
        json.push_str(&format!(
            "  \"nnz_seq{s}\": {},\n  \"staging_bytes_seq{s}\": {},\n  \"fused_seq{s}\": {},\n  \"unfused_us_seq{s}\": {:.3},\n  \"fused_us_seq{s}\": {:.3},\n  \"speedup_seq{s}\": {:.6},\n  \"bit_identical_seq{s}\": {},\n  \"replay_hits_seq{s}\": {},\n",
            p.nnz,
            p.staging_bytes,
            u64::from(p.fused),
            p.unfused_us,
            p.fused_us,
            p.speedup,
            u64::from(p.bit_identical),
            p.replay_hits,
            s = p.seq,
        ));
    }
    json.push_str(&format!(
        "  \"bit_identical_all\": {bit_identical_all},\n  \"all_fused\": {all_fused},\n  \"replay_cache_hits\": {replay_hits},\n"
    ));
    json.push_str(&format!(
        "  \"trace_events\": {},\n  \"trace_launches\": {},\n  \"trace_ok\": {trace_ok}\n}}\n",
        check.events, check.launches
    ));
    let out = "BENCH_fusewall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        let result = gate::read_baseline(&baseline_path).and_then(|base| {
            // The headline target: at the paper's long-sequence regime the
            // fused pipeline must beat three launches by >= 1.3x — an
            // absolute floor, then a 5%-slack drift check vs the committed
            // baseline.
            gate::require_not_below("speedup_seq4096", 1.30, speedup_4096, 1.0)?;
            gate::require_not_below(
                "speedup_seq4096",
                gate::metric_f64(&base, "speedup_seq4096", &baseline_path)?,
                speedup_4096,
                0.95,
            )?;
            // The planner must take the fused path at every band-mask point.
            gate::require_exact("all_fused", 1, all_fused)?;
            // Fusion is bit-invisible, at every point, or it does not ship.
            gate::require_exact("bit_identical_all", 1, bit_identical_all)?;
            // Replayed fused layers are served from the LaunchCache.
            gate::require_nonzero("replay_cache_hits", replay_hits)?;
            // The traced run exports fusion spans as valid Chrome JSON.
            gate::require_exact("trace_ok", 1, trace_ok)?;
            Ok(())
        });
        match result {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}
