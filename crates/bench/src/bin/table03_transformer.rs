//! Table III: sparse Transformer results — model quality (bits/dim, carried
//! from the paper), forward throughput in tokens/s, and memory usage, on the
//! V100 and the GTX 1080 (where the dense model runs out of memory).
//!
//! Paper anchors: dense V100 32,477 tok/s at 9.88 GB; sparse V100 67,857
//! tok/s at 0.77 GB (2.09x speedup, 12.8x memory saving); on the 1080 the
//! dense model OOMs while the sparse one runs 32,039 tok/s at 0.88 GB.

use dnn::transformer::{benchmark, bits_per_dimension, AttentionMode, TransformerConfig};
use gpu_sim::Gpu;
use sputnik_bench::{has_flag, write_json, Table};

fn main() {
    let cfg = if has_flag("--quick") {
        TransformerConfig {
            seq: 4096,
            ..TransformerConfig::paper()
        }
    } else {
        TransformerConfig::paper()
    };
    let sparse_mode = AttentionMode::paper_sparse();

    let v100 = Gpu::v100();
    let gtx = Gpu::gtx1080();

    let rows = [
        benchmark(&v100, &cfg, &AttentionMode::Dense),
        benchmark(&v100, &cfg, &sparse_mode),
        benchmark(&gtx, &cfg, &AttentionMode::Dense),
        benchmark(&gtx, &cfg, &sparse_mode),
    ];

    let mut t = Table::new(
        "Table III — sparse Transformer results",
        &["model", "device", "bits/dim*", "tokens/s", "memory (GB)"],
    );
    for r in &rows {
        let bpd = if r.model.contains("Sparse") {
            bits_per_dimension(&sparse_mode)
        } else {
            bits_per_dimension(&AttentionMode::Dense)
        };
        t.row(&[
            r.model.clone(),
            r.device.clone(),
            format!("{bpd:.2}"),
            if r.out_of_memory {
                "out-of-memory".into()
            } else {
                format!("{:.0}", r.tokens_per_second)
            },
            format!("{:.2}", r.memory_gb),
        ]);
    }
    t.print();
    println!("* bits/dim reproduced from the paper's training runs (cannot train here); see EXPERIMENTS.md");

    let dense = &rows[0];
    let sparse = &rows[1];
    if !dense.out_of_memory && !sparse.out_of_memory {
        println!(
            "V100 speedup {:.2}x (paper: 2.09x), memory saving {:.1}x (paper: 12.8x)",
            sparse.tokens_per_second / dense.tokens_per_second,
            dense.memory_gb / sparse.memory_gb,
        );
        println!(
            "attention share of forward pass: dense {:.0}%, sparse {:.0}%",
            100.0 * dense.attention_us / dense.forward_us,
            100.0 * sparse.attention_us / sparse.forward_us,
        );
    }
    write_json("table03_transformer", &rows.to_vec());
}
