//! Extension study: ROMA vs explicit padding vs scalar loads.
//!
//! Section V-B2 presents ROMA as the alternative to "padding the rows of
//! the sparse matrix with zeros such that all rows are a multiple of four in
//! length", which "limits the generality of the kernel". This study measures
//! all three options on the same problems:
//!
//! * **scalar** — no vector loads at all (the safe fallback),
//! * **ROMA** — vector loads on the original matrix, masked prefix,
//! * **padded** — vector loads on an explicitly padded copy
//!   (`CsrMatrix::padded_to_multiple`), paying extra nonzeros and memory.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::{gen, IndexWidth};
use sputnik::SpmmConfig;
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Entry {
    label: String,
    sparsity: f64,
    scalar_us: f64,
    roma_us: f64,
    padded_us: f64,
    padding_overhead_pct: f64,
    extra_bytes: i64,
}

fn main() {
    let gpu = Gpu::v100();
    let shapes: &[(usize, usize, usize)] = if has_flag("--quick") {
        &[(2048, 2048, 128)]
    } else {
        &[
            (2048, 2048, 128),
            (8192, 2048, 128),
            (1024, 4096, 256),
            (4096, 1024, 64),
        ]
    };

    let mut table = Table::new(
        "Extension — ROMA vs explicit padding (SpMM, us)",
        &[
            "problem",
            "sparsity",
            "scalar",
            "ROMA",
            "padded",
            "pad nnz overhead",
            "pad extra bytes",
        ],
    );
    let mut entries = Vec::new();

    for &(m, k, n) in shapes {
        for &s in &[0.7, 0.9, 0.98] {
            let a = gen::uniform(m, k, s, 0x40a + (s * 100.0) as u64);
            let cfg = SpmmConfig::heuristic::<f32>(n);

            let scalar = sputnik::spmm_profile::<f32>(
                &gpu,
                &a,
                k,
                n,
                SpmmConfig {
                    vector_width: 1,
                    roma: false,
                    block_items_x: 32,
                    ..cfg
                },
            );
            let roma = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg);

            let Some(padded) = a.padded_to_multiple(cfg.vector_width as usize) else {
                continue; // rows too dense to pad — skip this point
            };
            let pad_cfg = SpmmConfig {
                roma: false,
                assume_aligned: true,
                ..cfg
            };
            let padded_stats = sputnik::spmm_profile::<f32>(&gpu, &padded, k, n, pad_cfg);

            let overhead = 100.0 * (padded.nnz() as f64 / a.nnz() as f64 - 1.0);
            let extra = padded.bytes(IndexWidth::U32) as i64 - a.bytes(IndexWidth::U32) as i64;
            let label = format!("{m}x{k}x{n}");
            table.row(&[
                label.clone(),
                format!("{s:.2}"),
                format!("{:.1}", scalar.time_us),
                format!("{:.1}", roma.time_us),
                format!("{:.1}", padded_stats.time_us),
                format!("{overhead:.1}%"),
                format!("{extra}"),
            ]);
            entries.push(Entry {
                label,
                sparsity: s,
                scalar_us: scalar.time_us,
                roma_us: roma.time_us,
                padded_us: padded_stats.time_us,
                padding_overhead_pct: overhead,
                extra_bytes: extra,
            });
        }
    }
    table.print();

    let roma_vs_scalar: f64 = entries
        .iter()
        .map(|e| e.scalar_us / e.roma_us)
        .product::<f64>()
        .powf(1.0 / entries.len() as f64);
    let roma_vs_padded: f64 = entries
        .iter()
        .map(|e| e.padded_us / e.roma_us)
        .product::<f64>()
        .powf(1.0 / entries.len() as f64);
    println!("ROMA vs scalar: {roma_vs_scalar:.2}x geo-mean (the vector-load win)");
    println!(
        "ROMA vs padded: {roma_vs_padded:.2}x geo-mean — near 1.0, as the paper argues: \
         \"ROMA does not change the amount of work done by each thread block\""
    );
    println!("...but padding mutates the data structure, costs memory, and fails on dense rows.");
    write_json("ext_roma_study", &entries);
}
