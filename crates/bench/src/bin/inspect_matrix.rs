//! Inspect a sparse matrix the way the paper's Section II does: statistics,
//! format suitability, and kernel configuration recommendations.
//!
//! ```bash
//! # From an SMTX or MatrixMarket (.mtx) file:
//! cargo run -p sputnik-bench --release --bin inspect_matrix -- path/to/matrix.smtx
//! cargo run -p sputnik-bench --release --bin inspect_matrix -- path/to/matrix.mtx
//! # Or a synthetic demo matrix:
//! cargo run -p sputnik-bench --release --bin inspect_matrix
//! ```

use gpu_sim::Gpu;
use sparse::{gen, io, mtx, stats, CsrMatrix, EllMatrix};
use sputnik::{AutoTuner, SpmmConfig};
use std::fs::File;
use std::io::BufReader;

fn main() {
    let arg = std::env::args().nth(1);
    let (name, m): (String, CsrMatrix<f32>) = match arg {
        Some(path) if !path.starts_with("--") => {
            let file = File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));
            let reader = BufReader::new(file);
            let m = if path.ends_with(".mtx") {
                mtx::read_mtx(reader).unwrap_or_else(|e| panic!("parse {path}: {e}"))
            } else {
                io::read_smtx(reader).unwrap_or_else(|e| panic!("parse {path}: {e}"))
            };
            (path, m)
        }
        _ => (
            "demo (2048x2048 @ 85%, CoV 0.3)".into(),
            gen::with_cov(2048, 2048, 0.85, 0.3, 42),
        ),
    };

    println!("matrix: {name}");
    let s = stats::matrix_stats(&m);
    println!("  shape        : {} x {}", s.rows, s.cols);
    println!(
        "  nonzeros     : {} ({:.2}% dense)",
        s.nnz,
        (1.0 - s.sparsity) * 100.0
    );
    println!("  avg row len  : {:.1}", s.avg_row_length);
    println!("  max row len  : {}", m.max_row_len());
    println!("  row CoV      : {:.3}", s.row_cov);

    // Where does it sit relative to the paper's two corpora (Figure 2)?
    let domain = if s.sparsity > 0.985 || s.row_cov > 1.5 {
        "scientific-like (extreme sparsity / heavy tail): vendor kernels may suffice"
    } else {
        "deep-learning-like (moderate sparsity, balanced rows): Sputnik's target domain"
    };
    println!("  domain       : {domain}");

    // Format suitability.
    let ell = EllMatrix::from_csr(&m);
    println!("\nformat analysis:");
    println!("  CSR bytes    : {}", m.bytes(sparse::IndexWidth::U32));
    println!(
        "  ELL bytes    : {} (padding overhead {:.1}%)",
        ell.bytes(),
        ell.padding_overhead() * 100.0
    );
    let u16_ok = sparse::IndexWidth::U16.can_index(m.cols());
    println!(
        "  16-bit index : {}",
        if u16_ok {
            "supported (mixed precision saves index bandwidth)"
        } else {
            "needs 32-bit (too many columns)"
        }
    );

    // Kernel recommendations at a few batch sizes. Tuning decisions persist
    // across runs (results/autotune_cache.json) and the probe launches go
    // through a launch cache, the way production libraries keep autotuning
    // from re-paying its search cost.
    println!("\nSpMM configuration (heuristic vs tuned, simulated V100):");
    let gpu = Gpu::v100();
    let cache_path = std::path::Path::new("results").join("autotune_cache.json");
    let mut tuner = AutoTuner::load_from(&cache_path).unwrap_or_default();
    let launch_cache = gpu_sim::LaunchCache::new();
    println!(
        "  {:>6}  {:>22}  {:>10}  {:>22}  {:>10}  {:>6}",
        "N", "heuristic", "time", "tuned", "time", "gain"
    );
    for n in [8usize, 32, 128, 512] {
        let h = SpmmConfig::heuristic::<f32>(n);
        let th = sputnik::spmm_profile::<f32>(&gpu, &m, m.cols(), n, h).time_us;
        let tuned = tuner.tune_cached(&gpu, &launch_cache, &m, n);
        println!(
            "  {:>6}  {:>22}  {:>8.1}us  {:>22}  {:>8.1}us  {:>5.2}x",
            n,
            h.tag(),
            th,
            tuned.config.tag(),
            tuned.best_us,
            tuned.speedup_over_heuristic()
        );
    }
    match tuner.save_to(&cache_path) {
        Ok(()) => eprintln!(
            "[autotune cache saved to {} — launch cache: {} hits, {} misses]",
            cache_path.display(),
            launch_cache.hits(),
            launch_cache.misses()
        ),
        Err(e) => eprintln!("[autotune cache not saved: {e}]"),
    }

    // Load-balance outlook.
    let with =
        sputnik::spmm_profile::<f32>(&gpu, &m, m.cols(), 128, SpmmConfig::heuristic::<f32>(128));
    let without = sputnik::spmm_profile::<f32>(
        &gpu,
        &m,
        m.cols(),
        128,
        SpmmConfig {
            row_swizzle: false,
            ..SpmmConfig::heuristic::<f32>(128)
        },
    );
    println!(
        "\nrow swizzle at N=128: {:.1}% faster than the natural order (CoV {:.2})",
        100.0 * (without.time_us / with.time_us - 1.0),
        s.row_cov
    );
}
