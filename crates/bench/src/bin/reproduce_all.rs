//! Run every experiment of the paper in sequence (the full reproduction).
//!
//! ```bash
//! cargo run -p sputnik-bench --release --bin reproduce_all            # default scale
//! cargo run -p sputnik-bench --release --bin reproduce_all -- --quick # smoke test
//! ```
//!
//! Each experiment binary can also be run individually; this driver simply
//! executes them in paper order, forwarding `--quick`/`--full`, and writes
//! all JSON records under `results/`.

use std::process::Command;

fn main() {
    let forward: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a == "--quick" || a == "--full")
        .collect();
    let experiments = [
        (
            "fig01_lstm_crossover",
            "Figure 1: LSTM sparse/dense crossover",
        ),
        (
            "fig02_matrix_stats",
            "Figure 2: DL vs scientific matrix statistics",
        ),
        ("fig07_load_balance", "Figure 7: row-swizzle load balancing"),
        (
            "fig09_dataset_benchmark",
            "Figure 9 + Table I: corpus benchmark",
        ),
        (
            "fig10_rnn_comparison",
            "Figure 10: RNN suite vs MergeSpmm/ASpT/cuSPARSE",
        ),
        ("table02_ablation", "Table II: optimization ablations"),
        (
            "fig11_attention_mask",
            "Figure 11: sparse attention connectivity",
        ),
        ("table03_transformer", "Table III: sparse Transformer"),
        (
            "table04_mobilenet",
            "Table IV + Figure 12: sparse MobileNetV1",
        ),
        (
            "ext_block_sparse",
            "Extension: structured vs unstructured sparsity",
        ),
        (
            "ext_heuristic_study",
            "Extension: kernel-selection heuristic quality",
        ),
        ("ext_roma_study", "Extension: ROMA vs explicit padding"),
        ("ext_resnet", "Extension: end-to-end sparse ResNet-50"),
        (
            "ext_devices",
            "Extension: device transport (1080/V100/A100)",
        ),
        (
            "ext_load_balancing",
            "Extension: load-balancing approaches head to head",
        ),
        (
            "ext_training",
            "Extension: training-step cost on compressed weights",
        ),
    ];

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .unwrap_or_else(|| panic!("cannot resolve the benchmark executable directory"));

    let mut failures = Vec::new();
    for (bin, title) in experiments {
        println!("\n############################################################");
        println!("## {title}");
        println!("############################################################");
        let status = Command::new(exe_dir.join(bin))
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            eprintln!("!! {bin} exited with {status}");
            failures.push(bin);
        }
    }

    println!("\n############################################################");
    if failures.is_empty() {
        println!(
            "## All {} experiments completed; JSON in results/",
            experiments.len()
        );
    } else {
        println!("## FAILED: {failures:?}");
        std::process::exit(1);
    }
}
