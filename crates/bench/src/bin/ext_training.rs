//! Extension: training-step cost on the compressed representation.
//!
//! The paper's introduction motivates its kernels by sparse *training*: "all
//! computation during training needs to operate directly on the compressed
//! sparse representation". This study times one full training step of a
//! weight-sparse layer — forward SpMM, SDDMM weight gradient, transposed
//! SpMM input gradient, value update, transpose-cache refresh — against the
//! dense equivalent (three GEMMs + elementwise update), across sparsities.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::gen;
use sputnik::{CachedTranspose, SddmmConfig, SpmmConfig};
use sputnik_bench::{has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct Point {
    sparsity: f64,
    fwd_us: f64,
    dw_us: f64,
    dx_us: f64,
    update_us: f64,
    sparse_total_us: f64,
    dense_total_us: f64,
    speedup: f64,
}

fn main() {
    let gpu = Gpu::v100();
    let (m, k, n) = if has_flag("--quick") {
        (2048, 1024, 128)
    } else {
        (4096, 2048, 256)
    };

    // Dense training step: Y = WX (fwd), dW = dY X^T, dX = W^T dY, update.
    let dense_total_us = baselines::gemm_profile(&gpu, m, k, n).time_us
        + baselines::gemm_profile(&gpu, m, n, k).time_us
        + baselines::gemm_profile(&gpu, k, m, n).time_us
        + dnn::layers::bias_relu_profile(&gpu, m, k).time_us; // elementwise update proxy

    let mut table = Table::new(
        "Extension — training step on the compressed representation (us)",
        &[
            "sparsity",
            "fwd SpMM",
            "dW SDDMM",
            "dX W^T-SpMM",
            "update",
            "sparse total",
            "dense total",
            "speedup",
        ],
    );
    let mut points = Vec::new();
    for &s in &[0.5, 0.7, 0.8, 0.9, 0.95, 0.98] {
        let w = gen::uniform(m, k, s, 0x7a11 + (s * 100.0) as u64);
        let fwd =
            sputnik::spmm_profile::<f32>(&gpu, &w, k, n, SpmmConfig::heuristic::<f32>(n)).time_us;
        let dw =
            sputnik::sddmm_profile::<f32>(&gpu, &w, n, SddmmConfig::heuristic::<f32>(n)).time_us;
        let mut cache = CachedTranspose::new(&w);
        let dx = cache
            .spmm_profile(&gpu, n, SpmmConfig::heuristic::<f32>(n))
            .time_us;
        let update = cache.update_values(&gpu, w.values()).time_us;
        let sparse_total = fwd + dw + dx + update;
        let speedup = dense_total_us / sparse_total;
        table.row(&[
            format!("{s:.2}"),
            format!("{fwd:.0}"),
            format!("{dw:.0}"),
            format!("{dx:.0}"),
            format!("{update:.0}"),
            format!("{sparse_total:.0}"),
            format!("{dense_total_us:.0}"),
            format!("{speedup:.2}x"),
        ]);
        points.push(Point {
            sparsity: s,
            fwd_us: fwd,
            dw_us: dw,
            dx_us: dx,
            update_us: update,
            sparse_total_us: sparse_total,
            dense_total_us,
            speedup,
        });
    }
    table.print();

    let crossover = points.iter().find(|p| p.speedup > 1.0).map(|p| p.sparsity);
    println!(
        "training crossover: sparse step beats dense at sparsity {}",
        crossover.map_or("beyond 0.98".into(), |s| format!("{s:.2}"))
    );
    println!("(Higher than the inference crossover of Figure 1 — the backward pass adds");
    println!(" an SDDMM and a transposed SpMM, both harder than the forward SpMM.)");
    write_json("ext_training", &points);
}
