//! Extension: how the paper's headline results transport across devices.
//!
//! Section IX closes by pointing at newer hardware (the A100 whitepaper is
//! reference \[55\]). The simulator makes the question cheap: rerun the
//! Figure 1 problem and a corpus sample on the GTX 1080 (less bandwidth,
//! smaller L2), the V100 (the paper's platform), and the A100 (more of
//! everything) and watch the crossover and the cuSPARSE gap move.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::{dataset, gen};
use sputnik::SpmmConfig;
use sputnik_bench::{geo_mean, has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct DeviceRow {
    device: String,
    crossover_sparsity: Option<f64>,
    spmm_90_us: f64,
    dense_us: f64,
    geo_speedup_vs_cusparse: f64,
}

fn main() {
    let (m, k, n) = (8192usize, 2048usize, 128usize);
    let corpus = dataset::dl_corpus_sample(if has_flag("--quick") { 8 } else { 24 }, 29);

    let mut table = Table::new(
        "Extension — device transport (Figure 1 problem + corpus geo-mean)",
        &[
            "device",
            "dense (us)",
            "sparse@90% (us)",
            "crossover",
            "geo speedup vs cuSPARSE",
        ],
    );
    let mut rows = Vec::new();

    for gpu in [Gpu::gtx1080(), Gpu::v100(), Gpu::a100()] {
        let dense_us = baselines::gemm_profile(&gpu, m, k, n).time_us;
        let mut crossover = None;
        let mut spmm_90 = 0.0;
        for s in [0.5, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9] {
            let a = gen::uniform(m, k, s, 0xde5 + (s * 100.0) as u64);
            let t = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, SpmmConfig::heuristic::<f32>(n))
                .time_us;
            if t < dense_us && crossover.is_none() {
                crossover = Some(s);
            }
            if (s - 0.9).abs() < 1e-9 {
                spmm_90 = t;
            }
        }
        let speedups: Vec<f64> = corpus
            .iter()
            .map(|spec| {
                let a = spec.generate();
                let nn = spec.n(spec.batch_sizes().1);
                let ours = sputnik::spmm_profile::<f32>(
                    &gpu,
                    &a,
                    spec.cols,
                    nn,
                    SpmmConfig::heuristic::<f32>(nn),
                );
                let cusp = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, nn);
                cusp.time_us / ours.time_us
            })
            .collect();
        let geo = geo_mean(&speedups);
        table.row(&[
            gpu.device().name.clone(),
            format!("{dense_us:.0}"),
            format!("{spmm_90:.0}"),
            crossover.map_or("-".into(), |s| format!("{s:.2}")),
            format!("{geo:.2}x"),
        ]);
        rows.push(DeviceRow {
            device: gpu.device().name.clone(),
            crossover_sparsity: crossover,
            spmm_90_us: spmm_90,
            dense_us,
            geo_speedup_vs_cusparse: geo,
        });
    }
    table.print();
    println!("The crossover and the vendor-library gap are properties of the balance");
    println!("between math, bandwidth, and cache capacity — they move with the device,");
    println!("which is why the paper reports them for a specific part (the V100).");
    write_json("ext_devices", &rows);
}
