//! Table IV + Figure 12: sparse MobileNetV1 — batch-1 ImageNet inference
//! throughput across width multipliers, dense vs 90% sparse, forming the
//! accuracy–runtime tradeoff curves. Accuracy values are carried from the
//! paper (ImageNet training is out of scope here); throughput is measured
//! on the simulator with the oracle kernel selector the paper uses for its
//! sparse models.
//!
//! Paper anchors: dense 1.0/1.2/1.4 at 2518/2046/1729 f/s; sparse 1.3-1.8 at
//! 2874/2706/2537/2366/2226/2095 f/s; "speedups of 21-24% for a given
//! accuracy, or ~1.1% higher accuracy for the same throughput".

use dnn::accuracy;
use dnn::mobilenet::{benchmark, MobileNetV1};
use gpu_sim::Gpu;
use serde::Serialize;
use sputnik_bench::{write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct RowOut {
    model: String,
    width: f64,
    top1: f64,
    frames_per_second: f64,
    inference_us: f64,
    weight_mb: f64,
    oracle_overrides: usize,
}

fn main() {
    let gpu = Gpu::v100();
    let mut rows: Vec<RowOut> = Vec::new();

    for &w in &[1.0, 1.2, 1.4] {
        let bench = benchmark(&gpu, &MobileNetV1::new(w), None, false);
        rows.push(RowOut {
            model: "Dense".into(),
            width: w,
            top1: accuracy::dense_mobilenet_top1(w),
            frames_per_second: bench.frames_per_second,
            inference_us: bench.inference_us,
            weight_mb: bench.weight_bytes as f64 / 1e6,
            oracle_overrides: 0,
        });
    }
    for &w in &[1.3, 1.4, 1.5, 1.6, 1.7, 1.8] {
        let bench = benchmark(&gpu, &MobileNetV1::new(w), Some(0.9), true);
        rows.push(RowOut {
            model: "Sparse".into(),
            width: w,
            top1: accuracy::sparse_mobilenet_top1(w),
            frames_per_second: bench.frames_per_second,
            inference_us: bench.inference_us,
            weight_mb: bench.weight_bytes as f64 / 1e6,
            oracle_overrides: bench.oracle_overrides,
        });
    }

    let mut t = Table::new(
        "Table IV — sparse MobileNetV1 results (batch 1, V100)",
        &[
            "model",
            "width",
            "top-1*",
            "frames/s",
            "weights (MB)",
            "oracle overrides",
        ],
    );
    for r in &rows {
        t.row(&[
            r.model.clone(),
            format!("{:.1}", r.width),
            format!("{:.1}%", r.top1),
            format!("{:.0}", r.frames_per_second),
            format!("{:.1}", r.weight_mb),
            r.oracle_overrides.to_string(),
        ]);
    }
    t.print();
    println!("* accuracy reproduced from the paper's ImageNet runs; see EXPERIMENTS.md");
    println!("paper frames/s: dense 2518/2046/1729; sparse 2874/2706/2537/2366/2226/2095\n");

    // Figure 12's headline: speedup at matched accuracy. Interpolate the
    // dense curve's throughput at each sparse model's accuracy.
    println!("== Figure 12 — speedup at matched accuracy ==");
    for r in rows.iter().filter(|r| r.model == "Sparse") {
        // Find the dense width with the same accuracy, then its throughput.
        let dense_width = {
            // Invert the dense accuracy curve by bisection on [0.8, 2.2].
            let (mut lo, mut hi) = (0.8f64, 2.2f64);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if accuracy::dense_mobilenet_top1(mid) < r.top1 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        let dense_bench = benchmark(&gpu, &MobileNetV1::new(dense_width), None, false);
        let speedup = r.frames_per_second / dense_bench.frames_per_second;
        println!(
            "sparse {:.1} ({:.1}%) vs dense {:.2}: {:+.1}% throughput (paper: +21-24%)",
            r.width,
            r.top1,
            dense_width,
            100.0 * (speedup - 1.0)
        );
    }
    write_json("table04_mobilenet", &rows);
}
