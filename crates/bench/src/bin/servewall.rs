//! Serving-tail benchmark: offered-load sweep over the transformer
//! attention workload through the `serve` front door.
//!
//! Three Poisson load points (under-, near-, and over-saturation) plus one
//! bursty trace run against the default serving policy; every run reports
//! goodput, typed overflow outcomes (shed/rejected), cache hits, and exact
//! latency percentiles. Everything here is *simulated* time, so the numbers
//! are deterministic — same seed, same binary, same JSON — and machine
//! independent, which is what lets CI gate tightly.
//!
//! `--check <baseline.json>` gates:
//!
//! - `p99_us` at the fixed (middle) load point: ≤ 1.05× the committed
//!   baseline. Scheduling or cost-model regressions show up here first.
//! - `lost` == 0: the conservation invariant `served + shed + rejected ==
//!   offered`, pinned from the outside rather than trusted.
//! - `cache_hits` nonzero: windows keyed by topology must actually hit the
//!   LaunchCache — warm serving is the point of the batching scheduler.
//! - chaos variant (1% injected fault rate, same load): `chaos_lost` == 0
//!   and `chaos_degraded` nonzero — faults must surface as degradation-rung
//!   attributions, never as dropped requests. The chaos run sets
//!   `attempts_per_rung = 1` so every injected fault is visible as a rung
//!   transition instead of being absorbed by a same-rung retry.

use gpu_sim::{FaultKind, FaultPlan, Gpu};
use serve::{
    attention_topologies, generate, run, ArrivalProcess, Request, ServePolicy, ServeReport,
    TrafficConfig,
};
use sputnik_bench::{gate, has_flag, Table};

const SEQ: usize = 256;
const HEAD_DIM: usize = 64;
const SEED: u64 = 42;

fn trace(process: ArrivalProcess, requests: usize) -> Vec<Request> {
    generate(&TrafficConfig {
        seed: SEED,
        process,
        requests,
        deadline_us: 5_000.0,
        sddmm_fraction: 0.4,
        topologies: 2,
    })
}

fn serve_point(
    topologies: &[serve::Topology],
    policy: &ServePolicy,
    process: ArrivalProcess,
    requests: usize,
    fault_rate: f64,
) -> ServeReport {
    let gpu = if fault_rate > 0.0 {
        Gpu::v100().with_fault_plan(FaultPlan::with_rate(SEED, fault_rate, FaultKind::EccError))
    } else {
        Gpu::v100()
    };
    let reqs = trace(process, requests);
    run(&gpu, topologies, policy, &reqs)
        .unwrap_or_else(|e| panic!("serving run errored (it must degrade instead): {e}"))
}

fn main() {
    let requests: usize = if has_flag("--full") { 1200 } else { 600 };
    let topologies = attention_topologies(SEQ, HEAD_DIM, SEED);
    let policy = ServePolicy::default();

    // Load sweep: the middle point is the gated "fixed offered load".
    let rates = [20_000.0f64, 60_000.0, 1_000_000.0];
    let mut table = Table::new(
        "servewall — serving tail latency vs offered load (simulated, deterministic)",
        &[
            "trace",
            "offered",
            "served",
            "shed",
            "rej",
            "late",
            "p50 us",
            "p99 us",
            "batches",
            "cache hits",
        ],
    );
    let mut reports = Vec::new();
    for &rate in &rates {
        let r = serve_point(
            &topologies,
            &policy,
            ArrivalProcess::Poisson { rate_per_s: rate },
            requests,
            0.0,
        );
        table.row(&[
            format!("poisson {}k/s", rate / 1e3),
            format!("{}", r.offered),
            format!("{}", r.served),
            format!("{}", r.shed),
            format!("{}", r.rejected),
            format!("{}", r.late),
            format!("{:.0}", r.latency.p50()),
            format!("{:.0}", r.latency.p99()),
            format!("{}", r.batches),
            format!("{}", r.cache_hits),
        ]);
        reports.push(r);
    }
    // One bursty trace (informational): mean rate near the fixed point but
    // instantaneous rate far over saturation.
    let bursty = serve_point(
        &topologies,
        &policy,
        ArrivalProcess::Bursty {
            rate_per_s: 400_000.0,
            on_us: 300.0,
            off_us: 1_700.0,
        },
        requests,
        0.0,
    );
    table.row(&[
        "bursty 400k/s (15% duty)".into(),
        format!("{}", bursty.offered),
        format!("{}", bursty.served),
        format!("{}", bursty.shed),
        format!("{}", bursty.rejected),
        format!("{}", bursty.late),
        format!("{:.0}", bursty.latency.p50()),
        format!("{:.0}", bursty.latency.p99()),
        format!("{}", bursty.batches),
        format!("{}", bursty.cache_hits),
    ]);

    // Tight-SLO point: a large queue (so the bound never masks policy) with
    // a small p99 budget — overload must surface as *backpressure shedding*
    // at the door, the queue-depth path having been covered above.
    let tight = ServePolicy {
        queue_capacity: 256,
        p99_budget_us: 300.0,
        ..policy.clone()
    };
    let slo = serve_point(
        &topologies,
        &tight,
        ArrivalProcess::Poisson {
            rate_per_s: rates[2],
        },
        requests,
        0.0,
    );
    table.row(&[
        "tight SLO 1000k/s (300us budget)".into(),
        format!("{}", slo.offered),
        format!("{}", slo.served),
        format!("{}", slo.shed),
        format!("{}", slo.rejected),
        format!("{}", slo.late),
        format!("{:.0}", slo.latency.p50()),
        format!("{:.0}", slo.latency.p99()),
        format!("{}", slo.batches),
        format!("{}", slo.cache_hits),
    ]);

    // Chaos variant at the fixed load: 1% fault rate, single attempt per
    // rung so every fault lands visibly on a lower rung.
    let chaos_policy = ServePolicy {
        dispatch: sputnik::DispatchPolicy {
            attempts_per_rung: 1,
            ..sputnik::DispatchPolicy::default()
        },
        ..policy.clone()
    };
    let chaos = serve_point(
        &topologies,
        &chaos_policy,
        ArrivalProcess::Poisson {
            rate_per_s: rates[1],
        },
        requests,
        0.01,
    );
    table.row(&[
        "chaos 60k/s + 1% faults".into(),
        format!("{}", chaos.offered),
        format!("{}", chaos.served),
        format!("{}", chaos.shed),
        format!("{}", chaos.rejected),
        format!("{}", chaos.late),
        format!("{:.0}", chaos.latency.p50()),
        format!("{:.0}", chaos.latency.p99()),
        format!("{}", chaos.batches),
        format!("{}", chaos.cache_hits),
    ]);
    table.print();
    println!(
        "chaos: {} faults injected, {} requests degraded, rungs {:?}",
        chaos.faults_injected, chaos.degraded, chaos.rung_counts
    );

    let fixed = &reports[1];
    let lost = fixed.lost().unsigned_abs();
    let chaos_lost = chaos.lost().unsigned_abs();
    // Hand-rolled flat JSON: the vendored serde stub cannot serialize.
    let mut json = String::from("{\n  \"bench\": \"servewall\",\n");
    json.push_str(&format!(
        "  \"seq\": {SEQ},\n  \"head_dim\": {HEAD_DIM},\n  \"requests\": {requests},\n"
    ));
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "  \"rate_l{i}\": {:.0},\n  \"served_l{i}\": {},\n  \"shed_l{i}\": {},\n  \"rejected_l{i}\": {},\n  \"p50_us_l{i}\": {:.3},\n  \"p99_us_l{i}\": {:.3},\n  \"goodput_l{i}\": {},\n",
            rates[i], r.served, r.shed, r.rejected, r.latency.p50(), r.latency.p99(), r.goodput()
        ));
    }
    json.push_str(&format!(
        "  \"bursty_served\": {},\n  \"bursty_shed\": {},\n  \"bursty_rejected\": {},\n  \"bursty_p99_us\": {:.3},\n",
        bursty.served, bursty.shed, bursty.rejected, bursty.latency.p99()
    ));
    json.push_str(&format!(
        "  \"slo_served\": {},\n  \"slo_shed\": {},\n  \"slo_p99_us\": {:.3},\n",
        slo.served,
        slo.shed,
        slo.latency.p99()
    ));
    json.push_str(&format!(
        "  \"offered\": {},\n  \"served\": {},\n  \"lost\": {lost},\n  \"p99_us\": {:.3},\n  \"cache_hits\": {},\n  \"max_queue_depth\": {},\n",
        fixed.offered, fixed.served, fixed.latency.p99(), fixed.cache_hits, fixed.max_queue_depth
    ));
    json.push_str(&format!(
        "  \"chaos_offered\": {},\n  \"chaos_served\": {},\n  \"chaos_lost\": {chaos_lost},\n  \"chaos_faults\": {},\n  \"chaos_degraded\": {},\n  \"chaos_p99_us\": {:.3}\n}}\n",
        chaos.offered, chaos.served, chaos.faults_injected, chaos.degraded, chaos.latency.p99()
    ));
    let out = "BENCH_servewall.json";
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("[results written to {out}]"),
        Err(e) => eprintln!("[failed to write {out}: {e}]"),
    }

    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        let result = gate::read_baseline(&baseline_path).and_then(|base| {
            // Tail latency at the fixed load point. Simulated and
            // deterministic, so 5% headroom is generous — it absorbs
            // intentional cost-model tweaks, not noise.
            gate::require_not_above(
                "p99_us",
                gate::metric_f64(&base, "p99_us", &baseline_path)?,
                fixed.latency.p99(),
                1.05,
            )?;
            // Conservation, pinned from outside the server.
            gate::require_exact("lost", 0, lost)?;
            // Topology-keyed windows must keep hitting the launch cache.
            gate::require_nonzero("cache_hits", fixed.cache_hits)?;
            // The tight-SLO point must keep shedding at the door: a zero
            // here means backpressure stopped firing.
            gate::require_nonzero("slo_shed", slo.shed)?;
            // Chaos: faults degrade requests; they never drop them.
            gate::require_exact("chaos_lost", 0, chaos_lost)?;
            gate::require_nonzero("chaos_faults", chaos.faults_injected)?;
            gate::require_nonzero("chaos_degraded", chaos.degraded)?;
            Ok(())
        });
        match result {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}
