//! Workspace lint for the simulator's structural invariants — the rules
//! `cargo clippy` cannot express because they span files and crates.
//!
//! No `syn` in the vendored dependency set, so this is a lexical pass: each
//! source file is stripped of comments, string literals, and char literals
//! by a small state machine, then scanned line by line. Three rules:
//!
//! * `sim-clock` — the simulated-clock crates (`gpu-sim`, `serve`) and
//!   the fleet-facing modules that schedule against the simulated stream
//!   clock (`core/src/shard.rs`, `dnn/src/fleet.rs`) must not touch
//!   `std::time`. Simulated time comes from the cost model and the event
//!   queue; a wall-clock read there is a nondeterminism bug by
//!   construction. (Bench bins, which measure real wall time on purpose,
//!   live in their own crate and are exempt.)
//! * `raw-ptr-write` — raw-pointer writes are confined to
//!   `gpu-sim/src/util.rs` (the `SyncUnsafeSlice` shared-output
//!   abstraction, whose safety argument is the grid's disjoint-write
//!   contract). Everywhere else, kernels must write through it, so the
//!   sanitizer's shadow map observes every store. Bench bins are exempt
//!   (the counting allocator in `funcwall` implements `GlobalAlloc`).
//! * `kernel-registry` — every type that overrides `Kernel::block_signature`
//!   (i.e. opts into block-dedup'd cost modeling) must be constructed in
//!   the shared kernel registry (`crates/bench/src/registry.rs`), so it is
//!   swept by both `sanitize_all` and `static_audit`. A kernel missing
//!   from the registry ships without any CI sanitizer or audit coverage —
//!   exactly the gap this lint closes. "Constructed" means a
//!   `TypeName::` path token in the registry's *code* (comments and
//!   strings are stripped first): a doc-comment mention or an import
//!   alone does not count as coverage.
//!
//! Exit status 1 with one line per finding; 0 on a clean tree. Run from
//! the repo root (CI does).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Strip comments, string literals, and char literals, preserving
/// newlines so findings keep their line numbers. Raw strings (any `#`
/// depth) and nested block comments are handled; escapes inside strings
/// are skipped without interpretation.
fn strip(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (also br-prefixed).
        if (c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r'))) && !prev_is_ident(&b, i) {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            while b.get(start + hashes) == Some(&'#') {
                hashes += 1;
            }
            if b.get(start + hashes) == Some(&'"') {
                let mut j = start + hashes + 1;
                'raw: while j < b.len() {
                    if b[j] == '"' {
                        let mut k = 0;
                        while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if b[j] == '\n' {
                        out.push('\n');
                    }
                    j += 1;
                }
                out.push_str("\"\"");
                i = j;
                continue;
            }
        }
        // Ordinary string (also b"...").
        if c == '"' {
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    out.push('\n');
                }
                i += 1;
            }
            out.push_str("\"\"");
            continue;
        }
        // Char literal — only when it cannot be a lifetime: 'a' has a
        // closing quote one or two (escape) chars ahead.
        if c == '\'' {
            let close = if b.get(i + 1) == Some(&'\\') {
                // '\n', '\'', '\\', '\u{..}': scan for the closing quote.
                let mut j = i + 2;
                while j < b.len() && b[j] != '\'' && b[j] != '\n' && j < i + 12 {
                    j += 1;
                }
                (b.get(j) == Some(&'\'')).then_some(j)
            } else if b.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None
            };
            if let Some(j) = close {
                out.push_str("' '");
                i = j + 1;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Line spans covered by `#[cfg(test)]`-gated items (test modules): the
/// registry lint must not demand registration for probe kernels that only
/// exist inside unit tests.
fn test_spans(stripped: &str) -> Vec<(usize, usize)> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the gated item's opening brace, then its matching close.
            let mut depth = 0i64;
            let mut opened = false;
            let start = i;
            let mut j = i;
            'span: while j < lines.len() {
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break 'span;
                }
                j += 1;
            }
            spans.push((start, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

struct Findings(Vec<String>);

impl Findings {
    fn push(&mut self, path: &Path, line: usize, rule: &str, msg: &str) {
        self.0
            .push(format!("{}:{}: [{rule}] {msg}", path.display(), line + 1));
    }
}

/// Rule `sim-clock`: no `std::time` in the simulated-clock crates.
fn lint_sim_clock(path: &Path, stripped: &str, findings: &mut Findings) {
    for (n, line) in stripped.lines().enumerate() {
        for needle in ["std::time", "Instant::now", "SystemTime::now"] {
            if line.contains(needle) {
                findings.push(
                    path,
                    n,
                    "sim-clock",
                    &format!(
                        "`{needle}` in a simulated-clock crate: time must come \
                         from the cost model, not the host wall clock"
                    ),
                );
            }
        }
    }
}

/// Rule `raw-ptr-write`: raw-pointer machinery outside util.rs.
fn lint_raw_ptr(path: &Path, stripped: &str, findings: &mut Findings) {
    for (n, line) in stripped.lines().enumerate() {
        for needle in ["*mut ", "ptr::write", "write_volatile"] {
            if line.contains(needle) {
                findings.push(
                    path,
                    n,
                    "raw-ptr-write",
                    &format!(
                        "`{needle}` outside gpu-sim/src/util.rs: kernel stores \
                         must go through SyncUnsafeSlice so the sanitizer's \
                         shadow map observes them"
                    ),
                );
            }
        }
    }
}

/// Rule `kernel-registry`: collect types overriding `block_signature`
/// outside test modules. Returns the implementing type names found in
/// this file.
fn signature_impl_types(stripped: &str) -> Vec<String> {
    let lines: Vec<&str> = stripped.lines().collect();
    let spans = test_spans(stripped);
    let mut types = Vec::new();
    for (n, line) in lines.iter().enumerate() {
        if !line.contains("fn block_signature") || in_spans(&spans, n) {
            continue;
        }
        // Nearest preceding `impl ... for Type` / `trait` header decides
        // whether this is an override or the trait's own default body.
        for m in (0..n).rev() {
            let t = lines[m].trim_start();
            let is_impl = t.starts_with("impl ") || t.starts_with("impl<");
            let is_trait = t.starts_with("trait ") || t.starts_with("pub trait ");
            if is_impl {
                if let Some(pos) = t.find(" for ") {
                    let rest = &t[pos + 5..];
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        types.push(name);
                    }
                }
                break;
            }
            if is_trait {
                break;
            }
        }
    }
    types
}

/// Whether the (stripped) registry source actually *constructs* `ty`: a
/// `Type::` path token — `Type::new(..)`, `Type::try_new(..)` — in code.
/// A plain `contains(ty)` would be fooled by doc comments, error strings,
/// or a `use` import of a type that is never instantiated.
fn is_constructed(ty: &str, stripped_registry: &str) -> bool {
    stripped_registry.contains(&format!("{ty}::"))
}

fn main() {
    let root = Path::new(".");
    if !root.join("crates").is_dir() {
        eprintln!("xlint: run from the repo root (no ./crates directory here)");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    files.sort();

    let registry_path = root.join("crates/bench/src/registry.rs");
    let registry_text = std::fs::read_to_string(&registry_path)
        .unwrap_or_else(|e| panic!("xlint: cannot read {}: {e}", registry_path.display()));
    let registry_stripped = strip(&registry_text);

    let mut findings = Findings(Vec::new());
    let mut unregistered: Vec<(PathBuf, String)> = Vec::new();
    let mut checked = 0u64;

    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        checked += 1;
        let stripped = strip(&source);
        let rel = path.to_string_lossy().replace('\\', "/");

        let in_gpu_sim = rel.contains("crates/gpu-sim/src/");
        let in_serve = rel.contains("crates/serve/src/");
        // Fleet-facing modules schedule against the simulated stream clock
        // and get the same wall-clock ban as the sim crates themselves.
        let in_fleet =
            rel.ends_with("crates/core/src/shard.rs") || rel.ends_with("crates/dnn/src/fleet.rs");
        if in_gpu_sim || in_serve || in_fleet {
            lint_sim_clock(path, &stripped, &mut findings);
        }

        let is_util = rel.ends_with("crates/gpu-sim/src/util.rs");
        let is_bench = rel.contains("crates/bench/");
        if !is_util && !is_bench {
            lint_raw_ptr(path, &stripped, &mut findings);
        }

        if !rel.contains("/tests/") && !is_bench {
            for ty in signature_impl_types(&stripped) {
                if !is_constructed(&ty, &registry_stripped) {
                    unregistered.push((path.clone(), ty));
                }
            }
        }
    }

    for (path, ty) in &unregistered {
        let mut msg = String::new();
        let _ = write!(
            msg,
            "{}: [kernel-registry] `{ty}` overrides Kernel::block_signature \
             but is never constructed in crates/bench/src/registry.rs — it \
             ships without sanitize_all or static_audit coverage",
            path.display()
        );
        findings.0.push(msg);
    }

    if findings.0.is_empty() {
        println!("xlint: {checked} files clean (sim-clock, raw-ptr-write, kernel-registry)");
        return;
    }
    for f in &findings.0 {
        println!("{f}");
    }
    eprintln!("xlint: {} finding(s) in {checked} files", findings.0.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let a = \"std::time\"; // std::time\n/* std::time */ let b = 1;\n";
        let s = strip(src);
        assert!(!s.contains("std::time"), "{s}");
        assert_eq!(s.lines().count(), 2, "newlines preserved: {s}");
    }

    #[test]
    fn strip_handles_raw_strings_and_chars() {
        let src = "let a = r#\"Instant::now\"#; let c = '\\n'; let lt: &'static str = \"\";\n";
        let s = strip(src);
        assert!(!s.contains("Instant::now"), "{s}");
        assert!(s.contains("'static"), "lifetimes survive: {s}");
    }

    #[test]
    fn sim_clock_fires_on_wall_clock_reads() {
        let mut f = Findings(Vec::new());
        lint_sim_clock(
            Path::new("x.rs"),
            "use std::time::Instant;\nlet t = Instant::now();\n",
            &mut f,
        );
        assert_eq!(f.0.len(), 2, "{:?}", f.0);
    }

    #[test]
    fn sim_clock_ignores_commented_and_quoted_mentions() {
        let mut f = Findings(Vec::new());
        lint_sim_clock(
            Path::new("x.rs"),
            &strip("// Instant::now is banned here\nlet k = \"std::time\";\n"),
            &mut f,
        );
        assert!(f.0.is_empty(), "{:?}", f.0);
    }

    #[test]
    fn raw_ptr_fires_on_pointer_writes() {
        let mut f = Findings(Vec::new());
        lint_raw_ptr(
            Path::new("x.rs"),
            "unsafe { ptr::write(p, v) }\nlet q: *mut f32 = p;\n",
            &mut f,
        );
        assert_eq!(f.0.len(), 2, "{:?}", f.0);
    }

    #[test]
    fn signature_types_resolve_through_impl_headers() {
        let src = "impl<T: Scalar> Kernel for MyKernel<'_, T> {\n    fn block_signature(&self, b: Dim3) -> Option<u64> { None }\n}\n";
        assert_eq!(signature_impl_types(&strip(src)), vec!["MyKernel"]);
    }

    #[test]
    fn registry_coverage_requires_a_construction_token() {
        // A doc-comment mention, an error string, or a bare `use` import of
        // the type is not construction; only a `Type::` path token in code
        // counts.
        let registry = strip(
            "use sputnik::{GhostKernel, RealKernel};\n\
             // GhostKernel is documented here but never built.\n\
             let msg = \"GhostKernel\";\n\
             let k = RealKernel::try_new().unwrap();\n",
        );
        assert!(!is_constructed("GhostKernel", &registry));
        assert!(is_constructed("RealKernel", &registry));
    }

    #[test]
    fn signature_types_skip_trait_defaults_and_test_modules() {
        let src = "pub trait Kernel {\n    fn block_signature(&self, _b: Dim3) -> Option<u64> { None }\n}\n\
                   #[cfg(test)]\nmod tests {\n    impl Kernel for Probe {\n        fn block_signature(&self, b: Dim3) -> Option<u64> { None }\n    }\n}\n";
        assert!(signature_impl_types(&strip(src)).is_empty());
    }
}
