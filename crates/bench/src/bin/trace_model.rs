//! Trace a small model matrix and export a Chrome `trace_event` file.
//!
//! Runs a fixed, deterministic mix of workloads with the trace recorder on:
//!
//! 1. sparse MobileNetV1 inference (per-block layer spans),
//! 2. a scaled-down sparse Transformer forward pass (spans + replays),
//! 3. two functional LSTM cell steps,
//! 4. one Figure-10 RNN problem profile,
//! 5. a dispatch ladder forced to degrade by a name-matched fault plan,
//! 6. a warmed launch cache (hit/miss instants, replayed launches).
//!
//! Outputs:
//! - `results/trace_model.trace.json` — Chrome trace, loadable in
//!   chrome://tracing or Perfetto, structurally validated before writing;
//! - `BENCH_trace_model.json` — the profiler-counter snapshot (repo root).
//!
//! `--check <baseline.json>` gates CI: the launch count must match the
//! committed baseline exactly (the workload is deterministic, so any drift
//! is an unreviewed behaviour change) and the cache must still produce hits.

use dnn::lstm::SparseLstmCell;
use dnn::rnn::{CellKind, RnnProblem};
use dnn::transformer::{AttentionMode, TransformerConfig};
use dnn::{mobilenet, rnn, transformer};
use gpu_sim::{metrics, trace, FaultKind, FaultPlan, Gpu, LaunchCache};
use sparse::{gen, Matrix};
use sputnik::{DispatchPolicy, SpmmConfig};
use sputnik_bench::gate;

fn main() {
    metrics::global().reset();
    trace::enable();
    let gpu = Gpu::v100();

    // 1. Sparse MobileNetV1 at width 0.5: every block emits a layer span.
    let model = mobilenet::MobileNetV1::new(0.5);
    let mn = mobilenet::benchmark(&gpu, &model, Some(0.9), false);

    // 2. Scaled-down sparse Transformer: layer spans plus replay events for
    //    the multiplied per-head / per-layer costs.
    let cfg = TransformerConfig {
        layers: 2,
        heads: 4,
        d_model: 256,
        ff: 512,
        seq: 512,
        batch: 1,
    };
    let mode = AttentionMode::Sparse {
        band: 64,
        off_diag_sparsity: 0.95,
        seed: 0x5eed,
    };
    let tr = transformer::benchmark(&gpu, &cfg, &mode);

    // 3. Two functional LSTM steps (lstm_step spans).
    let cell = SparseLstmCell::random(128, 64, 0.9, 7);
    let x = Matrix::<f32>::random(128, 8, 8);
    let h0 = Matrix::<f32>::zeros(64, 8);
    let c0 = Matrix::<f32>::zeros(64, 8);
    let step1 = cell.step(&gpu, &x, &h0, &c0);
    let _step2 = cell.step(&gpu, &x, &step1.h, &step1.c);

    // 4. One Figure-10 RNN problem profile (problem-labelled span).
    let problem = RnnProblem {
        cell: CellKind::Lstm,
        hidden: 512,
        sparsity: 0.9,
        batch: 32,
    };
    rnn::profile_problem(&gpu, &problem, 11);

    // 5. Dispatch ladder under a name-matched fault plan: both Sputnik rungs
    //    fail, the fallback kernel serves — fault and dispatch instants.
    let faulty =
        Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError).matching("sputnik"));
    let a = gen::uniform(64, 64, 0.8, 3);
    let b = Matrix::<f32>::random(64, 32, 4);
    let (_, report) = match sputnik::dispatch::spmm(
        &faulty,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    ) {
        Ok(served) => served,
        Err(e) => {
            eprintln!("trace_model: dispatch ladder failed to bottom out: {e}");
            std::process::exit(1);
        }
    };
    assert_ne!(
        report.served_by,
        sputnik::Rung::Sputnik,
        "the fault plan must force a degraded serve"
    );

    // 6. Launch-cache reuse: repeated profiles replay from the cache
    //    (hit/miss instants + launches_replayed).
    let cache = LaunchCache::new();
    for _ in 0..4 {
        sputnik::spmm_profile_cached::<f32>(&gpu, &cache, &a, 64, 32, SpmmConfig::default());
    }

    // ---- Export and validate.
    let events = trace::disable();
    let json = trace::chrome_trace_json(&events);
    let check = match trace::validate_chrome_trace(&json) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[trace failed schema validation: {e}]");
            std::process::exit(1);
        }
    };
    std::fs::create_dir_all("results").ok();
    let trace_path = "results/trace_model.trace.json";
    match std::fs::write(trace_path, &json) {
        Ok(()) => eprintln!("[trace written to {trace_path}]"),
        Err(e) => eprintln!("[failed to write {trace_path}: {e}]"),
    }

    let profile = trace::ProfileReport::from_events(&events);
    println!("{}", profile.render());
    let layer_sum: f64 = profile.layers.iter().map(|l| l.dur_us).sum();
    assert!(
        (layer_sum - profile.total_us).abs() <= 1e-6 * profile.total_us.max(1.0),
        "per-layer durations ({layer_sum} us) must sum to the model total ({} us)",
        profile.total_us
    );

    println!(
        "mobilenet 0.5x sparse: {:.1} us/frame   transformer fwd: {:.1} us   tokens/s: {:.0}",
        mn.inference_us, tr.forward_us, tr.tokens_per_second
    );
    println!(
        "trace: {} events, {} launches, {} counters, {} instants, {} tracks",
        check.events, check.launches, check.counters, check.instants, check.tracks
    );

    // ---- Counter snapshot (hand-rolled flat JSON: the vendored serde stub
    // cannot serialize).
    let snap = metrics::global().snapshot();
    let bench_json = format!(
        "{{\n  \"bench\": \"trace_model\",\n  \"launches\": {launches},\n  \"launches_replayed\": {replayed},\n  \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"faults_injected\": {faults},\n  \"dispatch_degraded\": {degraded},\n  \"sim_time_us\": {sim:.3},\n  \"trace_events\": {events},\n  \"trace_launches\": {tlaunches},\n  \"trace_tracks\": {tracks},\n  \"profile_layers\": {layers},\n  \"profile_total_us\": {total:.3}\n}}\n",
        launches = snap.get("launches"),
        replayed = snap.get("launches_replayed"),
        hits = snap.get("cache_hits"),
        misses = snap.get("cache_misses"),
        faults = snap.get("faults_injected"),
        degraded = snap.get("dispatch_degraded"),
        sim = snap.sim_time_us(),
        events = check.events,
        tlaunches = check.launches,
        tracks = check.tracks,
        layers = profile.layers.len(),
        total = profile.total_us,
    );
    let bench_path = "BENCH_trace_model.json";
    match std::fs::write(bench_path, &bench_json) {
        Ok(()) => eprintln!("[results written to {bench_path}]"),
        Err(e) => eprintln!("[failed to write {bench_path}: {e}]"),
    }

    // ---- CI gate.
    let baseline_arg = std::env::args().skip_while(|a| a != "--check").nth(1);
    if let Some(baseline_path) = baseline_arg {
        match check_counters(&baseline_path, &snap) {
            Ok(()) => println!("[--check passed vs {baseline_path}]"),
            Err(e) => {
                eprintln!("[--check FAILED: {e}]");
                std::process::exit(1);
            }
        }
    }
}

/// The workload is fixed and the simulator deterministic, so the launch
/// count must match the baseline exactly; the cache must still hit.
fn check_counters(baseline_path: &str, snap: &gpu_sim::MetricsSnapshot) -> Result<(), String> {
    let text = gate::read_baseline(baseline_path)?;
    let base_launches = gate::metric_u64(&text, "launches", baseline_path)?;
    gate::require_exact("launches", base_launches, snap.get("launches"))?;
    gate::require_nonzero("cache_hits", snap.get("cache_hits"))?;
    gate::require_nonzero("launches_replayed", snap.get("launches_replayed"))
}
