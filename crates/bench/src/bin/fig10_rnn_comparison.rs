//! Figure 10: benchmarks on sparse recurrent neural network problems,
//! comparing Sputnik against MergeSpmm, ASpT, and cuSPARSE (SpMM) and
//! against ASpT and cuSPARSE (SDDMM).
//!
//! Paper anchors (SpMM): geo-mean speedups 1.56x over ASpT, 1.59x over
//! MergeSpmm, 3.47x over cuSPARSE. (SDDMM): 2.69x over cuSPARSE, ~92% of
//! ASpT's throughput (while using 3x less memory and no reordering).
//! Also Section VII-B's note: the vector kernels average 2.45x over the
//! scalar variants on this suite.

use dnn::rnn;
use gpu_sim::Gpu;
use serde::Serialize;
use sparse::IndexWidth;
use sputnik::{SddmmConfig, SpmmConfig};
use sputnik_bench::{geo_mean, has_flag, write_json, Table};

#[derive(Serialize)]
struct RnnResult {
    label: String,
    // SpMM times (us)
    sputnik_us: f64,
    merge_us: f64,
    aspt_us: f64,
    cusparse_us: f64,
    scalar_us: f64,
    // SDDMM times (us)
    sddmm_sputnik_us: f64,
    sddmm_aspt_us: f64,
    sddmm_cusparse_us: f64,
    aspt_memory_bytes: u64,
    sputnik_memory_bytes: u64,
}

fn main() {
    let gpu = Gpu::v100();
    let hidden: &[usize] = if has_flag("--quick") {
        &[1024, 2048]
    } else if has_flag("--full") {
        &rnn::PAPER_HIDDEN_SIZES
    } else {
        &[1024, 2048, 4096]
    };
    let problems = rnn::problem_suite(hidden);

    let mut results = Vec::new();
    for (i, p) in problems.iter().enumerate() {
        let a = p.weights(0xf10 + i as u64);
        let (m, k, n) = (p.m(), p.k(), p.n());
        let cfg = SpmmConfig::heuristic::<f32>(n);

        let sputnik_us = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, cfg).time_us;
        let merge_us = baselines::merge_spmm_profile::<f32>(&gpu, &a, n)
            .unwrap_or_else(|e| panic!("RNN batches are divisible by 32: {e}"))
            .time_us;
        let aspt_us = baselines::aspt_spmm_profile::<f32>(&gpu, &a, n)
            .unwrap_or_else(|e| panic!("RNN shapes satisfy ASpT's constraints: {e}"))
            .time_us;
        let cusparse_us = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, n).time_us;
        let scalar_us = sputnik::spmm_profile::<f32>(
            &gpu,
            &a,
            k,
            n,
            SpmmConfig {
                vector_width: 1,
                roma: false,
                block_items_x: 32,
                ..cfg
            },
        )
        .time_us;

        // SDDMM: the weight-gradient problem (mask = weight topology, dot
        // length = batch).
        let sddmm_sputnik_us =
            sputnik::sddmm_profile::<f32>(&gpu, &a, n, SddmmConfig::heuristic::<f32>(n)).time_us;
        let sddmm_aspt_us = baselines::aspt_sddmm_profile::<f32>(&gpu, &a, n)
            .unwrap_or_else(|e| panic!("RNN shapes satisfy ASpT's constraints: {e}"))
            .time_us;
        let sddmm_cusparse_us = baselines::cusparse_sddmm_profile::<f32>(&gpu, &a, n).time_us;

        let plan = baselines::AsptPlan::build(&a, baselines::AsptDirection::Spmm);
        results.push(RnnResult {
            label: p.label(),
            sputnik_us,
            merge_us,
            aspt_us,
            cusparse_us,
            scalar_us,
            sddmm_sputnik_us,
            sddmm_aspt_us,
            sddmm_cusparse_us,
            aspt_memory_bytes: plan.memory_bytes(),
            sputnik_memory_bytes: a.bytes(IndexWidth::U32) + (m as u64) * 4,
        });
        if (i + 1) % 12 == 0 {
            eprintln!("[{}/{} problems]", i + 1, problems.len());
        }
    }

    let mut spmm_table = Table::new(
        "Figure 10 (top) — SpMM on RNN problems (us)",
        &["problem", "sputnik", "merge", "aspt", "cusparse"],
    );
    for r in results.iter().take(12) {
        spmm_table.row(&[
            r.label.clone(),
            format!("{:.0}", r.sputnik_us),
            format!("{:.0}", r.merge_us),
            format!("{:.0}", r.aspt_us),
            format!("{:.0}", r.cusparse_us),
        ]);
    }
    spmm_table.print();

    let mut sddmm_table = Table::new(
        "Figure 10 (bottom) — SDDMM on RNN problems (us)",
        &["problem", "sputnik", "aspt", "cusparse"],
    );
    for r in results.iter().take(12) {
        sddmm_table.row(&[
            r.label.clone(),
            format!("{:.0}", r.sddmm_sputnik_us),
            format!("{:.0}", r.sddmm_aspt_us),
            format!("{:.0}", r.sddmm_cusparse_us),
        ]);
    }
    sddmm_table.print();

    let gm = |f: fn(&RnnResult) -> f64| geo_mean(&results.iter().map(f).collect::<Vec<_>>());
    let mut summary = Table::new(
        "Figure 10 — geometric-mean summary",
        &["comparison", "measured", "paper"],
    );
    summary.row(&[
        "SpMM vs MergeSpmm".into(),
        format!("{:.2}x", gm(|r| r.merge_us / r.sputnik_us)),
        "1.59x".into(),
    ]);
    summary.row(&[
        "SpMM vs ASpT".into(),
        format!("{:.2}x", gm(|r| r.aspt_us / r.sputnik_us)),
        "1.56x".into(),
    ]);
    summary.row(&[
        "SpMM vs cuSPARSE".into(),
        format!("{:.2}x", gm(|r| r.cusparse_us / r.sputnik_us)),
        "3.47x".into(),
    ]);
    summary.row(&[
        "SpMM vector vs scalar".into(),
        format!("{:.2}x", gm(|r| r.scalar_us / r.sputnik_us)),
        "2.45x".into(),
    ]);
    summary.row(&[
        "SDDMM vs cuSPARSE".into(),
        format!("{:.2}x", gm(|r| r.sddmm_cusparse_us / r.sddmm_sputnik_us)),
        "2.69x".into(),
    ]);
    summary.row(&[
        "SDDMM throughput vs ASpT".into(),
        format!(
            "{:.0}%",
            100.0 * gm(|r| r.sddmm_aspt_us / r.sddmm_sputnik_us)
        ),
        "92%".into(),
    ]);
    summary.row(&[
        "ASpT memory vs Sputnik".into(),
        format!(
            "{:.1}x",
            gm(|r| r.aspt_memory_bytes as f64 / r.sputnik_memory_bytes as f64)
        ),
        "3x".into(),
    ]);
    summary.print();
    write_json("fig10_rnn_comparison", &results);
}
