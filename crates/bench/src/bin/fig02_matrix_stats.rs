//! Figure 2: properties of sparse matrices from deep learning vs scientific
//! computing — sparsity, average row length, and row-length coefficient of
//! variation, summarized over both corpora.
//!
//! Paper anchors: "deep learning matrices are 13.4x less sparse, have 2.3x
//! longer rows, and have 25x less variation in row length within a matrix."

use serde::Serialize;
use sparse::dataset;
use sparse::stats::{matrix_stats, mean};
use sputnik_bench::{has_flag, write_json, Table};

#[derive(Serialize)]
struct CorpusSummary {
    corpus: String,
    matrices: usize,
    mean_sparsity: f64,
    mean_nonzero_fraction: f64,
    mean_avg_row_length: f64,
    mean_row_cov: f64,
}

fn summarize(name: &str, stats: &[sparse::MatrixStats]) -> CorpusSummary {
    CorpusSummary {
        corpus: name.to_string(),
        matrices: stats.len(),
        mean_sparsity: mean(&stats.iter().map(|s| s.sparsity).collect::<Vec<_>>()),
        mean_nonzero_fraction: mean(&stats.iter().map(|s| 1.0 - s.sparsity).collect::<Vec<_>>()),
        mean_avg_row_length: mean(&stats.iter().map(|s| s.avg_row_length).collect::<Vec<_>>()),
        mean_row_cov: mean(&stats.iter().map(|s| s.row_cov).collect::<Vec<_>>()),
    }
}

fn main() {
    // Full corpora are 3,012 + 2,833 matrices; the default run samples both
    // (statistics converge quickly), --full generates everything.
    let (dl_count, sci_count) = if has_flag("--full") {
        (3012, 2833)
    } else {
        (150, 120)
    };

    let dl_specs = dataset::dl_corpus_sample(dl_count, 2);
    let dl_stats: Vec<_> = dl_specs
        .iter()
        .map(|s| matrix_stats(&s.generate()))
        .collect();

    let sci_specs = dataset::scientific_corpus(sci_count, 3);
    let sci_stats: Vec<_> = sci_specs
        .iter()
        .map(|s| matrix_stats(&s.generate()))
        .collect();

    let dl = summarize("deep-learning", &dl_stats);
    let sci = summarize("scientific (SuiteSparse-like)", &sci_stats);

    let mut table = Table::new(
        "Figure 2 — corpus statistics",
        &[
            "corpus",
            "matrices",
            "mean sparsity",
            "mean avg row len",
            "mean row CoV",
        ],
    );
    for c in [&dl, &sci] {
        table.row(&[
            c.corpus.clone(),
            c.matrices.to_string(),
            format!("{:.4}", c.mean_sparsity),
            format!("{:.1}", c.mean_avg_row_length),
            format!("{:.2}", c.mean_row_cov),
        ]);
    }
    table.print();

    // The paper's three headline ratios.
    let sparsity_ratio = dl.mean_nonzero_fraction / sci.mean_nonzero_fraction;
    let row_len_ratio = dl.mean_avg_row_length / sci.mean_avg_row_length;
    let cov_ratio = sci.mean_row_cov / dl.mean_row_cov;
    println!("DL matrices are {sparsity_ratio:.1}x less sparse (paper: 13.4x)");
    println!("DL matrices have {row_len_ratio:.1}x longer rows (paper: 2.3x)");
    println!("DL matrices have {cov_ratio:.1}x less row-length variation (paper: 25x)");

    write_json("fig02_matrix_stats", &vec![dl, sci]);
}
