//! Figure 9 + Table I: kernel benchmarks on the deep-learning matrix corpus.
//!
//! Runs Sputnik SpMM (FP32 and mixed precision) and SDDMM (FP32) against
//! cuSPARSE on corpus problems at both training and inference batch sizes,
//! reporting per-problem runtime/throughput series and the Table I summary
//! statistics.
//!
//! Paper anchors (Table I): geometric-mean speedups 3.58x (SpMM FP32),
//! 2.19x (SDDMM FP32), 5.97x (SpMM mixed); peak throughputs 4.29 / 4.11 /
//! 5.57 TFLOP/s; best-case 27.3% of FP32 peak; Sputnik wins on 99.75% /
//! 93.34% / 99.7% of problems.

use gpu_sim::{Gpu, LaunchCache};
use serde::Serialize;
use sparse::dataset;
use sparse::Half;
use sputnik::{SddmmConfig, SpmmConfig};
use sputnik_bench::{geo_mean, has_flag, write_json, Table};

// Fields are written to JSON; the vendored serde stub doesn't read them.
#[allow(dead_code)]
#[derive(Serialize)]
struct ProblemResult {
    layer: String,
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
    flops: u64,
    spmm_f32_us: f64,
    spmm_f32_cusparse_us: f64,
    spmm_f32_tflops: f64,
    sddmm_f32_us: f64,
    sddmm_f32_cusparse_us: f64,
    sddmm_f32_tflops: f64,
    spmm_f16_us: f64,
    spmm_f16_cusparse_us: f64,
    spmm_f16_tflops: f64,
}

fn percent_wins(ratios: &[f64]) -> f64 {
    100.0 * ratios.iter().filter(|&&r| r > 1.0).count() as f64 / ratios.len() as f64
}

fn main() {
    let gpu = Gpu::v100();
    let count = if has_flag("--full") {
        300
    } else if has_flag("--quick") {
        16
    } else {
        60
    };
    let specs = dataset::dl_corpus_sample(count, 9);

    // Corpus layers repeat shapes and replicas share topology fingerprints, so
    // the sweep consults a launch cache: repeated (kernel, matrix, device)
    // launches replay their profile instead of re-simulating.
    let cache = LaunchCache::new();
    let mut results: Vec<ProblemResult> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.generate();
        let (inference, training) = spec.batch_sizes();
        for batch in [inference, training] {
            let n = spec.n(batch);
            // SpMM FP32.
            let (ours, _) = sputnik::spmm_profile_cached::<f32>(
                &gpu,
                &cache,
                &a,
                spec.cols,
                n,
                SpmmConfig::heuristic::<f32>(n),
            );
            let cusp = baselines::cusparse_spmm_profile::<f32>(&gpu, &a, n);
            // SDDMM FP32: the weight-gradient problem dY X^T ⊙ I[W] — mask is
            // the weight topology, dot length is the same N.
            let (sddmm_ours, _) = sputnik::sddmm_profile_cached::<f32>(
                &gpu,
                &cache,
                &a,
                n,
                SddmmConfig::heuristic::<f32>(n),
            );
            let sddmm_cusp = baselines::cusparse_sddmm_profile::<f32>(&gpu, &a, n);
            // SpMM mixed precision (half data, 16-bit indices).
            let a16 = a.convert::<Half>();
            let (ours16, _) = sputnik::spmm_profile_cached::<Half>(
                &gpu,
                &cache,
                &a16,
                spec.cols,
                n,
                SpmmConfig::heuristic::<Half>(n),
            );
            let cusp16 = baselines::cusparse_spmm_half_profile::<Half>(&gpu, &a16, n);

            results.push(ProblemResult {
                layer: format!("{}@r{}", spec.layer, spec.replica),
                m: spec.rows,
                k: spec.cols,
                n,
                sparsity: spec.sparsity,
                flops: spec.flops(batch),
                spmm_f32_us: ours.time_us,
                spmm_f32_cusparse_us: cusp.time_us,
                spmm_f32_tflops: ours.tflops,
                sddmm_f32_us: sddmm_ours.time_us,
                sddmm_f32_cusparse_us: sddmm_cusp.time_us,
                sddmm_f32_tflops: sddmm_ours.tflops,
                spmm_f16_us: ours16.time_us,
                spmm_f16_cusparse_us: cusp16.time_us,
                spmm_f16_tflops: ours16.tflops,
            });
        }
        if (i + 1) % 10 == 0 {
            eprintln!("[{}/{} problems]", i + 1, specs.len());
        }
    }

    // Per-problem series (Figure 9's scatter, condensed to a few rows here;
    // full data goes to JSON).
    let mut series = Table::new(
        "Figure 9 — sample of per-problem results (runtime us | ours vs cuSPARSE)",
        &[
            "problem",
            "MxKxN",
            "sparsity",
            "spmm f32",
            "sddmm f32",
            "spmm f16",
        ],
    );
    for r in results.iter().take(10) {
        series.row(&[
            r.layer.clone(),
            format!("{}x{}x{}", r.m, r.k, r.n),
            format!("{:.2}", r.sparsity),
            format!("{:.0}/{:.0}", r.spmm_f32_us, r.spmm_f32_cusparse_us),
            format!("{:.0}/{:.0}", r.sddmm_f32_us, r.sddmm_f32_cusparse_us),
            format!("{:.0}/{:.0}", r.spmm_f16_us, r.spmm_f16_cusparse_us),
        ]);
    }
    series.print();

    // Table I summary.
    let spmm_speedups: Vec<f64> = results
        .iter()
        .map(|r| r.spmm_f32_cusparse_us / r.spmm_f32_us)
        .collect();
    let sddmm_speedups: Vec<f64> = results
        .iter()
        .map(|r| r.sddmm_f32_cusparse_us / r.sddmm_f32_us)
        .collect();
    let f16_speedups: Vec<f64> = results
        .iter()
        .map(|r| r.spmm_f16_cusparse_us / r.spmm_f16_us)
        .collect();
    let max = |xs: &[f64]| xs.iter().cloned().fold(0.0f64, f64::max);

    let peak_spmm = max(&results
        .iter()
        .map(|r| r.spmm_f32_tflops)
        .collect::<Vec<_>>());
    let peak_sddmm = max(&results
        .iter()
        .map(|r| r.sddmm_f32_tflops)
        .collect::<Vec<_>>());
    let peak_f16 = max(&results
        .iter()
        .map(|r| r.spmm_f16_tflops)
        .collect::<Vec<_>>());

    let mut t1 = Table::new(
        "Table I — sparse matrix dataset benchmark results (vs cuSPARSE)",
        &["metric", "SpMM f32", "SDDMM f32", "SpMM mixed", "paper"],
    );
    t1.row(&[
        "geo. mean speedup".into(),
        format!("{:.2}x", geo_mean(&spmm_speedups)),
        format!("{:.2}x", geo_mean(&sddmm_speedups)),
        format!("{:.2}x", geo_mean(&f16_speedups)),
        "3.58x / 2.19x / 5.97x".into(),
    ]);
    t1.row(&[
        "peak speedup".into(),
        format!("{:.1}x", max(&spmm_speedups)),
        format!("{:.1}x", max(&sddmm_speedups)),
        format!("{:.1}x", max(&f16_speedups)),
        "14.2x / 6.58x / 297.5x".into(),
    ]);
    t1.row(&[
        "peak throughput".into(),
        format!("{peak_spmm:.2} TFLOP/s"),
        format!("{peak_sddmm:.2} TFLOP/s"),
        format!("{peak_f16:.2} TFLOP/s"),
        "4.29 / 4.11 / 5.57".into(),
    ]);
    t1.row(&[
        "% problems won".into(),
        format!("{:.1}%", percent_wins(&spmm_speedups)),
        format!("{:.1}%", percent_wins(&sddmm_speedups)),
        format!("{:.1}%", percent_wins(&f16_speedups)),
        "99.75% / 93.34% / 99.7%".into(),
    ]);
    t1.row(&[
        "best % of fp32 peak".into(),
        format!(
            "{:.1}%",
            100.0 * peak_spmm / gpu.device().fp32_peak_tflops()
        ),
        format!(
            "{:.1}%",
            100.0 * peak_sddmm / gpu.device().fp32_peak_tflops()
        ),
        "-".into(),
        "27.3% / 26.2% / -".into(),
    ]);
    t1.print();

    eprintln!(
        "[launch cache: {} hits, {} misses over {} Sputnik launches]",
        cache.hits(),
        cache.misses(),
        3 * results.len()
    );
    write_json("fig09_dataset_benchmark", &results);
}
