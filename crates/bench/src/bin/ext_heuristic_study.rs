//! Extension study: how good is the paper's kernel-selection heuristic?
//!
//! Section VII-B closes with "these results indicate that better kernel
//! selection heuristics could greatly improve performance", and the
//! MobileNet experiment needed an oracle for four layers. This study
//! quantifies the gap on the corpus: for each problem, exhaustively profile
//! a grid of SpMM variants (the oracle) and compare the heuristic's pick.

use gpu_sim::Gpu;
use serde::Serialize;
use sparse::dataset;
use sputnik::SpmmConfig;
use sputnik_bench::{geo_mean, has_flag, write_json, Table};

#[derive(Serialize)]
struct Entry {
    layer: String,
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
    heuristic_us: f64,
    oracle_us: f64,
    /// heuristic time / oracle time (1.0 = heuristic found the best variant).
    gap: f64,
    oracle_tag: String,
}

/// The variant grid the oracle searches.
fn variants(k: usize, n: usize) -> Vec<SpmmConfig> {
    let mut out = Vec::new();
    for block_items_y in [1u32, 2, 4, 8] {
        for block_items_x in [16u32, 32, 64] {
            for vector_width in [1u32, 2, 4] {
                let cfg = SpmmConfig {
                    block_items_y,
                    block_items_x,
                    vector_width,
                    roma: vector_width > 1,
                    ..SpmmConfig::default()
                };
                if cfg.validate(k).is_err() || cfg.threads_x() > 32 {
                    continue;
                }
                if vector_width as usize > 1 && !n.is_multiple_of(vector_width as usize) {
                    continue;
                }
                out.push(cfg);
            }
        }
    }
    out
}

fn main() {
    let gpu = Gpu::v100();
    let count = if has_flag("--quick") { 12 } else { 40 };
    let specs = dataset::dl_corpus_sample(count, 23);

    let mut entries = Vec::new();
    for spec in &specs {
        let a = spec.generate();
        let (inference, training) = spec.batch_sizes();
        for batch in [inference, training] {
            let n = spec.n(batch);
            let heuristic = SpmmConfig::heuristic::<f32>(n);
            let heuristic_us =
                sputnik::spmm_profile::<f32>(&gpu, &a, spec.cols, n, heuristic).time_us;
            let mut oracle_us = heuristic_us;
            let mut oracle_tag = heuristic.tag();
            for cfg in variants(spec.cols, n) {
                let t = sputnik::spmm_profile::<f32>(&gpu, &a, spec.cols, n, cfg).time_us;
                if t < oracle_us {
                    oracle_us = t;
                    oracle_tag = cfg.tag();
                }
            }
            entries.push(Entry {
                layer: spec.layer.to_string(),
                m: spec.rows,
                k: spec.cols,
                n,
                sparsity: spec.sparsity,
                heuristic_us,
                oracle_us,
                gap: heuristic_us / oracle_us,
                oracle_tag,
            });
        }
    }

    entries.sort_by(|a, b| b.gap.total_cmp(&a.gap));
    let mut table = Table::new(
        "Extension — heuristic vs oracle kernel selection (worst 10 problems)",
        &[
            "problem",
            "MxKxN",
            "sparsity",
            "heuristic",
            "oracle",
            "gap",
            "oracle variant",
        ],
    );
    for e in entries.iter().take(10) {
        table.row(&[
            e.layer.clone(),
            format!("{}x{}x{}", e.m, e.k, e.n),
            format!("{:.2}", e.sparsity),
            format!("{:.1}us", e.heuristic_us),
            format!("{:.1}us", e.oracle_us),
            format!("{:.2}x", e.gap),
            e.oracle_tag.clone(),
        ]);
    }
    table.print();

    let gaps: Vec<f64> = entries.iter().map(|e| e.gap).collect();
    let optimal = entries.iter().filter(|e| e.gap < 1.01).count();
    println!(
        "heuristic is optimal (within 1%) on {}/{} problems; geo-mean gap {:.3}x; worst {:.2}x",
        optimal,
        entries.len(),
        geo_mean(&gaps),
        gaps.iter().cloned().fold(0.0f64, f64::max)
    );
    println!("(The paper used an oracle for four MobileNet layers for the same reason.)");
    write_json("ext_heuristic_study", &entries);
}
