//! Shared helpers for bench `--check` CI gates.
//!
//! Every bench bin with a committed baseline (`simwall`, `trace_model`,
//! `funcwall`) gates CI through these functions so a failure always names
//! the offending metric, the baseline value, the observed value, and the
//! percent delta — a bare "regressed" error forces a local repro before
//! anyone knows what moved.
//!
//! The vendored serde stub cannot deserialize, so baselines are read with
//! the same flat-JSON scanner the bins use to write them.

use std::io::Read as _;

/// Read a baseline JSON file into memory.
pub fn read_baseline(path: &str) -> Result<String, String> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text).map(|_| ()))
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    Ok(text)
}

/// Extract the raw text of `"key": <value>` from a flat JSON object.
pub fn json_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// A named metric parsed from the baseline, or an error naming the file.
pub fn metric_f64(text: &str, key: &str, path: &str) -> Result<f64, String> {
    json_raw(text, key)
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| format!("no {key} in baseline {path}"))
}

/// Integer variant of [`metric_f64`].
pub fn metric_u64(text: &str, key: &str, path: &str) -> Result<u64, String> {
    json_raw(text, key)
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| format!("no {key} in baseline {path}"))
}

/// Render the standard failure line: metric, baseline, observed, delta.
pub fn describe(metric: &str, baseline: f64, observed: f64, requirement: &str) -> String {
    let delta = if baseline != 0.0 {
        format!("{:+.1}%", (observed - baseline) / baseline * 100.0)
    } else if observed == 0.0 {
        "+0.0%".to_string()
    } else {
        "+inf%".to_string()
    };
    format!(
        "metric {metric}: baseline {baseline:.4}, observed {observed:.4}, \
         delta {delta} — {requirement}"
    )
}

/// Gate: `observed` may not exceed `baseline * headroom`.
pub fn require_not_above(
    metric: &str,
    baseline: f64,
    observed: f64,
    headroom: f64,
) -> Result<(), String> {
    if observed > baseline * headroom {
        return Err(describe(
            metric,
            baseline,
            observed,
            &format!("must stay <= {:.1}x the baseline", headroom),
        ));
    }
    Ok(())
}

/// Gate: `observed` may not fall below `baseline * floor_frac`.
pub fn require_not_below(
    metric: &str,
    baseline: f64,
    observed: f64,
    floor_frac: f64,
) -> Result<(), String> {
    if observed < baseline * floor_frac {
        return Err(describe(
            metric,
            baseline,
            observed,
            &format!("must stay >= {:.2}x the baseline", floor_frac),
        ));
    }
    Ok(())
}

/// Gate: `observed` must equal `baseline` exactly (deterministic counters).
pub fn require_exact(metric: &str, baseline: u64, observed: u64) -> Result<(), String> {
    if observed != baseline {
        return Err(describe(
            metric,
            baseline as f64,
            observed as f64,
            "must match the committed baseline exactly (regenerate it if this change is intended)",
        ));
    }
    Ok(())
}

/// Gate: `observed` must be nonzero (liveness counters, e.g. cache hits).
pub fn require_nonzero(metric: &str, observed: u64) -> Result<(), String> {
    if observed == 0 {
        return Err(describe(
            metric,
            1.0,
            0.0,
            "must stay nonzero (the mechanism it counts stopped firing)",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_names_metric_and_delta() {
        let err = require_not_above("allocs_per_launch", 10.0, 26.0, 1.25).unwrap_err();
        assert!(err.contains("allocs_per_launch"), "{err}");
        assert!(err.contains("10.0000"), "{err}");
        assert!(err.contains("26.0000"), "{err}");
        assert!(err.contains("+160.0%"), "{err}");
    }

    #[test]
    fn gates_pass_within_headroom() {
        assert!(require_not_above("m", 10.0, 12.0, 1.25).is_ok());
        assert!(require_not_below("m", 10.0, 6.0, 0.5).is_ok());
        assert!(require_exact("m", 5, 5).is_ok());
        assert!(require_nonzero("m", 1).is_ok());
    }

    #[test]
    fn exact_gate_reports_drift() {
        let err = require_exact("launches", 100, 101).unwrap_err();
        assert!(err.contains("launches"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn json_scanner_reads_flat_objects() {
        let text = "{\n  \"a\": 1.5,\n  \"b\": 7\n}\n";
        assert_eq!(metric_f64(text, "a", "p").ok(), Some(1.5));
        assert_eq!(metric_u64(text, "b", "p").ok(), Some(7));
        assert!(metric_f64(text, "missing", "p").is_err());
    }
}
