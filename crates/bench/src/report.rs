//! Plain-text table rendering and JSON result persistence.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// A printable results table.
#[derive(Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Row>,
}

/// One row of cells.
#[derive(Debug, Default, Clone)]
pub struct Row(pub Vec<String>);

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(Row(cells.to_vec()));
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.0.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(&row.0));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Geometric mean of positive values.
pub fn geo_mean(xs: &[f64]) -> f64 {
    sparse::stats::geometric_mean(xs)
}

/// Persist a serializable result under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = fs::write(&path, json);
        eprintln!("[results written to {}]", path.display());
    }
}

/// Parse `--quick` / `--full` style flags from argv.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["longer-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
