//! # sputnik-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's per-experiment
//! index), plus shared reporting helpers. Each binary prints the same rows
//! or series the paper reports and appends a JSON record under `results/`.

pub mod gate;
pub mod registry;
pub mod report;

pub use report::{geo_mean, has_flag, write_json, Row, Table};
