//! The shared kernel/launch registry.
//!
//! Every simulated kernel the workspace ships, constructed on the same
//! deterministic shape grid `sanitize_all` has always swept, and handed to
//! a visitor one launch at a time. Both the dynamic sanitizer sweep
//! (`sanitize_all`) and the static auditor (`static_audit`) iterate THIS
//! list, so the "sanitized kernel set" and the "audited kernel set" cannot
//! drift apart: a kernel added here is automatically both dynamically
//! checked and statically audited. The workspace linter (`xlint`) closes
//! the loop from the other side — any `impl Kernel` in the tree that
//! defines `block_signature` but is never constructed in this file fails
//! the `kernel-registry` lint, so new kernels cannot ship unaudited.
//!
//! Operand lifetimes force the visitor shape: most kernels borrow their
//! output matrix mutably, so the registry owns all operands on its stack
//! and the callback sees each kernel only for the duration of one scope.

use baselines::aspt::AsptSpmmKernel;
use baselines::cusparse::{
    ConstrainedGemmKernel, CusparseSpmmHalfFallbackKernel, CusparseSpmmKernel,
};
use baselines::{
    AsptDirection, AsptPlan, BlockSpmmKernel, EllSpmmKernel, GemmKernel, MergeSpmmKernel,
    NnzSplitSpmmKernel, TransposeKernel,
};
use gpu_sim::{Kernel, SddmmSoftmaxSpmmKernel};
use sparse::ell::EllMatrix;
use sparse::{block, gen, Layout, Matrix, PatternGranularity, PatternLut, RowSwizzle};
use sputnik::{
    joint_heuristic, FallbackSpmmKernel, JointSpmmKernel, PermuteKernel, SddmmConfig, SddmmKernel,
    SparseSoftmaxKernel, SpmmConfig, SpmmKernel,
};
use std::sync::atomic::AtomicU32;

/// The shape grid: one square power-of-two shape, one ragged shape
/// exercising partial tiles, and one high-sparsity shape with empty rows.
/// `(m, k, n, sparsity)`; the seed for shape `i` is `0x5A17 + i * 101`.
pub const SHAPES: [(usize, usize, usize, f64); 3] =
    [(64, 96, 32, 0.7), (128, 128, 128, 0.9), (100, 76, 40, 0.8)];

/// Visit every registered kernel/launch pair once.
///
/// Construction failures panic: the grid is deterministic, so a
/// constructor rejecting one of these shapes is a bug in the registry (or
/// the kernel), not an input problem — and a panic fails the CI bins that
/// iterate the registry just as loudly as a sanitizer violation would.
pub fn for_each_kernel(visit: &mut dyn FnMut(&dyn Kernel)) {
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0x5A17 + i as u64 * 101;
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed + 1);

        // Sputnik SpMM under the default config, the heuristic config, and
        // with row swizzling (the same ladder `sputnik::sanitize` builds).
        for cfg in [
            SpmmConfig::default(),
            SpmmConfig::heuristic::<f32>(n),
            SpmmConfig {
                row_swizzle: true,
                ..SpmmConfig::heuristic::<f32>(n)
            },
        ] {
            let swizzle = if cfg.row_swizzle {
                RowSwizzle::by_length_desc(&a)
            } else {
                RowSwizzle::identity(a.rows())
            };
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = SpmmKernel::try_new(&a, &b, &mut out, &swizzle, cfg)
                .unwrap_or_else(|e| panic!("registry: spmm construction: {e}"));
            visit(&kernel);
        }

        // The K-split accumulate variant: same compute, but the epilogue
        // folds into existing C instead of overwriting it, which changes
        // the traced output traffic and the static write-set.
        {
            let swizzle = RowSwizzle::identity(a.rows());
            let mut out = Matrix::<f32>::random(m, n, seed + 9);
            let kernel =
                SpmmKernel::try_new(&a, &b, &mut out, &swizzle, SpmmConfig::heuristic::<f32>(n))
                    .unwrap_or_else(|e| panic!("registry: spmm acc construction: {e}"))
                    .with_accumulate();
            visit(&kernel);
        }

        // Joint activation x weight SpMM: same weights, but the dense
        // operand comes from the seeded activation generator so the pattern
        // LUT has dead tiles to probe — one launch per LUT granularity.
        {
            let acts = gen::activations(k, n, 0.8, seed + 10);
            let cfg = joint_heuristic::<f32>(n);
            let swizzle = RowSwizzle::identity(a.rows());
            for granularity in [PatternGranularity::Fine, PatternGranularity::Coarse] {
                let lut = PatternLut::build(&acts, granularity);
                let mut out = Matrix::<f32>::zeros(m, n);
                let kernel = JointSpmmKernel::try_new(&a, &acts, &mut out, &swizzle, &lut, cfg)
                    .unwrap_or_else(|e| panic!("registry: joint spmm construction: {e}"));
                visit(&kernel);
            }
        }

        // Scalar fallback SpMM.
        {
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            visit(&kernel);
        }

        // SDDMM: lhs (m x k) . rhs^T (n x k), sampled by an m x n mask.
        {
            let mask = gen::uniform(m, n, sparsity, seed + 2);
            let lhs = Matrix::<f32>::random(m, k, seed + 3);
            let rhs = Matrix::<f32>::random(n, k, seed + 4);
            let swizzle = RowSwizzle::by_length_desc(&mask);
            let mut values = vec![0.0f32; mask.nnz()];
            let kernel = SddmmKernel::try_new(
                &lhs,
                &rhs,
                &mask,
                &mut values,
                &swizzle,
                SddmmConfig::heuristic::<f32>(k),
            )
            .unwrap_or_else(|e| panic!("registry: sddmm construction: {e}"));
            visit(&kernel);
        }

        // Sparse softmax over the sparse matrix's values.
        {
            let mut values = vec![0.0f32; a.nnz()];
            let kernel = SparseSoftmaxKernel::new(&a, &mut values);
            visit(&kernel);
        }

        // Fused sparse attention (SDDMM + scaled softmax + SpMM over one
        // mask), with the same stage tiles the fusion planner would pick.
        {
            let mask = gen::uniform(m, n, sparsity, seed + 2);
            let q = Matrix::<f32>::random(m, k, seed + 3);
            let kmat = Matrix::<f32>::random(n, k, seed + 4);
            let v = Matrix::<f32>::random(n, k, seed + 5);
            let mut out = Matrix::<f32>::zeros(m, k);
            let sddmm_tile = SddmmConfig::heuristic::<f32>(k).block_items_x as usize;
            let spmm_tile = SpmmConfig::heuristic::<f32>(k).block_items_x as usize;
            let kernel = SddmmSoftmaxSpmmKernel::new(
                &q,
                &kmat,
                &v,
                &mask,
                out.as_mut_slice(),
                0.125,
                sddmm_tile,
                spmm_tile,
                format!("s{sddmm_tile}x{spmm_tile}"),
            );
            visit(&kernel);
        }

        // Value permute (the cached-transpose gather).
        {
            let src = a.values().to_vec();
            let perm: Vec<u32> = (0..a.nnz() as u32).rev().collect();
            let mut dst = vec![0.0f32; a.nnz()];
            let kernel = PermuteKernel::new(&src, &perm, &mut dst);
            visit(&kernel);
        }

        // Dense GEMM and the staging transpose.
        {
            let da = Matrix::<f32>::random(m, k, seed + 5);
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = GemmKernel::new(&da, &b, &mut out);
            visit(&kernel);

            let mut t = Matrix::<f32>::zeros(k, m);
            let kernel = TransposeKernel::new(&da, &mut t);
            visit(&kernel);
        }

        // ELLR-T SpMM.
        {
            let ell = EllMatrix::from_csr(&a);
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = EllSpmmKernel::new(&ell, &b, &mut out);
            visit(&kernel);
        }

        // Merge-based SpMM requires N % 32 == 0.
        if n % 32 == 0 {
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = MergeSpmmKernel::new(&a, &b, &mut out)
                .unwrap_or_else(|e| panic!("registry: merge_spmm construction: {e}"));
            visit(&kernel);
        }

        // Nonzero-splitting SpMM (atomic output).
        {
            let out: Vec<AtomicU32> = (0..m * n).map(|_| AtomicU32::new(0)).collect();
            let kernel = NnzSplitSpmmKernel::new(&a, &b, &out);
            visit(&kernel);
        }

        // cuSPARSE-style SpMM wants column-major B and C.
        {
            let b_cm = b.to_layout(Layout::ColMajor);
            let mut out = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
            let kernel = CusparseSpmmKernel::new(&a, &b_cm, &mut out);
            visit(&kernel);

            let kernel = CusparseSpmmHalfFallbackKernel::new(&a, n);
            visit(&kernel);
        }

        // cusparseConstrainedGeMM-style SDDMM (pre-transposed RHS).
        {
            let mask = gen::uniform(m, n, sparsity, seed + 6);
            let lhs = Matrix::<f32>::random(m, k, seed + 7);
            let rhs_t = Matrix::<f32>::random(k, n, seed + 8);
            let mut values = vec![0.0f32; mask.nnz()];
            let kernel = ConstrainedGemmKernel::new(&lhs, &rhs_t, &mask, &mut values);
            visit(&kernel);
        }
    }

    // Shape-constrained baselines get dedicated launches.
    {
        // ASpT: rows % 256 == 0, n in {32, 128}.
        let a = gen::uniform(256, 128, 0.8, 0xA597);
        let b = Matrix::<f32>::random(128, 32, 0xA598);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        let mut out = Matrix::<f32>::zeros(256, 32);
        let kernel = AsptSpmmKernel::new(&a, &plan, &b, &mut out)
            .unwrap_or_else(|e| panic!("registry: aspt construction: {e}"));
        visit(&kernel);
    }
    {
        // Block-sparse SpMM on a block-pruned weight matrix.
        let dense = Matrix::<f32>::random(64, 64, 0xB10C);
        let bsr = block::block_prune(&dense, 8, 0.5);
        let b = Matrix::<f32>::random(64, 32, 0xB10D);
        let mut out = Matrix::<f32>::zeros(64, 32);
        let kernel = BlockSpmmKernel::new(&bsr, &b, &mut out);
        visit(&kernel);
    }
}

/// Number of kernel/launch pairs [`for_each_kernel`] visits.
pub fn pair_count() -> u64 {
    let mut n = 0;
    for_each_kernel(&mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is deterministic: 19 kernels per shape (three SpMM
    /// configs, the accumulate variant, the two joint-sparsity LUT
    /// granularities, the fused attention pipeline, and twelve other
    /// kernels), merge-SpMM only where `n % 32 == 0` (shapes 0 and 1),
    /// plus the two shape-constrained baselines.
    #[test]
    fn registry_enumerates_every_kernel() {
        let mut names = Vec::new();
        for_each_kernel(&mut |k| names.push(k.name().to_string()));
        let expected: usize = SHAPES
            .iter()
            .map(|&(_, _, n, _)| 18 + usize::from(n % 32 == 0))
            .sum::<usize>()
            + 2;
        assert_eq!(names.len(), expected, "{names:?}");
        assert_eq!(pair_count(), expected as u64);
        for expected in [
            "sputnik_spmm",
            "sputnik_joint_spmm",
            "fallback_spmm",
            "sputnik_sddmm",
            "sputnik_sparse_softmax",
            "fused_sddmm_softmax_spmm",
            "value_permute",
            "cublas_sgemm",
            "cublas_transpose",
            "ellr_t_spmm",
            "merge_spmm_rowsplit",
            "nnz_split_spmm",
            "cusparse_spmm",
            "cusparse_constrained_gemm",
            "aspt_spmm",
            "block_sparse_spmm",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(expected)),
                "registry never visited a kernel named like {expected}: {names:?}"
            );
        }
        // The half-precision cuSPARSE fallback is a distinct kernel from
        // the f32 path even though the names share a prefix.
        assert!(names.iter().any(|n| n.ends_with("_fallback")), "{names:?}");
        // The accumulate epilogue registers as its own launch.
        assert!(names.iter().any(|n| n.ends_with("_acc")), "{names:?}");
    }
}
