//! Soundness of every `Kernel::block_signature` in the workspace: two
//! blocks with equal signatures must record **bit-identical** cost traces,
//! because profile-mode launches execute one representative per signature
//! and replay its cost for the rest. An unsound signature silently skews
//! every dataset-scale sweep.
//!
//! Coverage comes from two directions: the shared kernel registry (every
//! shipped kernel on the deterministic shape grid) and a randomized
//! Sputnik SpMM sweep (ragged topologies, empty rows, swizzled and
//! ROMA'd configs — the kernels whose signatures encode the most state).

use gpu_sim::{BlockContext, Kernel};
use sparse::{gen, Matrix, RowSwizzle};
use sputnik::{SpmmConfig, SpmmKernel};
use sputnik_bench::registry;
use std::collections::HashMap;

/// Execute every block of `kernel`, grouping cost traces by signature;
/// any signature collision with differing costs is a soundness bug.
fn assert_signature_sound(kernel: &dyn Kernel, context: &str) {
    let grid = kernel.grid();
    let mut by_sig: HashMap<u64, (gpu_sim::Dim3, gpu_sim::BlockCost)> = HashMap::new();
    let mut signed = 0u64;
    for lin in 0..grid.size() {
        let block = grid.delinearize(lin);
        let Some(sig) = kernel.block_signature(block) else {
            continue;
        };
        signed += 1;
        let mut ctx = BlockContext::new(true);
        kernel.execute_block(block, &mut ctx);
        match by_sig.get(&sig) {
            None => {
                by_sig.insert(sig, (block, ctx.cost));
            }
            Some((first, cost)) => {
                assert_eq!(
                    *cost,
                    ctx.cost,
                    "{context}: kernel {} blocks {first:?} and {block:?} share \
                     signature {sig:#x} but recorded different costs",
                    kernel.name()
                );
            }
        }
    }
    // The sweep only means something if signatures actually collide
    // somewhere; individual kernels may legitimately sign nothing.
    let _ = signed;
}

#[test]
fn registry_kernels_have_sound_signatures() {
    registry::for_each_kernel(&mut |kernel| {
        assert_signature_sound(kernel, "registry grid");
    });
}

#[test]
fn spmm_signatures_sound_on_random_topologies() {
    // Ragged shapes, extreme sparsities (empty rows on one end, nearly
    // dense on the other), swizzle on and off, vector widths 1 and 4.
    let shapes: &[(usize, usize, usize, f64, u64)] = &[
        (97, 64, 32, 0.95, 1),
        (33, 128, 64, 0.50, 2),
        (256, 96, 32, 0.99, 3),
        (64, 64, 96, 0.05, 4),
    ];
    for &(m, k, n, sparsity, seed) in shapes {
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed ^ 0xFF);
        for cfg in [
            SpmmConfig::default(),
            SpmmConfig::heuristic::<f32>(n),
            SpmmConfig {
                row_swizzle: true,
                ..SpmmConfig::heuristic::<f32>(n)
            },
        ] {
            let swizzle = if cfg.row_swizzle {
                RowSwizzle::by_length_desc(&a)
            } else {
                RowSwizzle::identity(a.rows())
            };
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = SpmmKernel::try_new(&a, &b, &mut out, &swizzle, cfg)
                .unwrap_or_else(|e| panic!("spmm construction ({m}x{k}x{n}): {e}"));
            assert_signature_sound(&kernel, &format!("random {m}x{k}x{n} s={sparsity}"));
        }
    }
}

/// The replay contract holds end to end: a signature that collides across
/// blocks must exist somewhere in the sweep, otherwise the test above
/// never exercised the replay path it protects.
#[test]
fn signature_collisions_actually_occur() {
    // Wide N: the same row strip repeats across column tiles in the same
    // alignment class, which is exactly the repetition the replay collapses.
    let a = gen::uniform(128, 64, 0.5, 7);
    let b = Matrix::<f32>::random(64, 128, 8);
    let swizzle = RowSwizzle::identity(a.rows());
    let mut out = Matrix::<f32>::zeros(128, 128);
    let kernel = SpmmKernel::try_new(&a, &b, &mut out, &swizzle, SpmmConfig::default())
        .expect("spmm construction");
    let grid = kernel.grid();
    let mut seen = HashMap::new();
    let mut collisions = 0u64;
    for lin in 0..grid.size() {
        if let Some(sig) = kernel.block_signature(grid.delinearize(lin)) {
            collisions += u64::from(seen.insert(sig, ()).is_some());
        }
    }
    assert!(
        collisions > 0,
        "no two blocks ever shared a signature — the replay fast path is dead \
         and the soundness sweep is vacuous"
    );
}
