//! Launch fast-path equivalence gates.
//!
//! The launch engine has three result-affecting-if-wrong optimizations: the
//! streaming trace reduction, structural block dedup in profile mode, and
//! the cross-launch cache. Each must be *bit-identical* to the pre-fast-path
//! engine. This suite pins that across the same kernel/shape grid
//! `sanitize_all` exercises:
//!
//! * `Gpu::profile_reference` — the old collect-every-`BlockCost` path, kept
//!   as ground truth;
//! * `Gpu::with_block_dedup(false).try_profile` — the streaming reduction
//!   alone;
//! * `Gpu::try_profile` — streaming + dedup (kernels with signatures).
//!
//! All three must produce equal [`LaunchStats`] (`PartialEq` covers every
//! field, floats included — equality, not tolerance). A second gate checks
//! that profile launches never touch functional outputs.

use baselines::aspt::AsptSpmmKernel;
use baselines::cusparse::{
    ConstrainedGemmKernel, CusparseSpmmHalfFallbackKernel, CusparseSpmmKernel,
};
use baselines::{
    AsptDirection, AsptPlan, BlockSpmmKernel, EllSpmmKernel, GemmKernel, MergeSpmmKernel,
    NnzSplitSpmmKernel, TransposeKernel,
};
use gpu_sim::{Gpu, Kernel};
use sparse::ell::EllMatrix;
use sparse::{block, gen, Matrix, RowSwizzle};
use sputnik::{
    FallbackSpmmKernel, PermuteKernel, SddmmConfig, SddmmKernel, SparseSoftmaxKernel, SpmmConfig,
};
use std::sync::atomic::{AtomicU32, Ordering};

/// The sanitize_all shape grid: square pow2, ragged partial tiles, high
/// sparsity with empty rows.
const SHAPES: &[(usize, usize, usize, f64)] =
    &[(64, 96, 32, 0.7), (128, 128, 128, 0.9), (100, 76, 40, 0.8)];

/// Assert the streamed and dedup'd profile paths match the reference
/// collect path bit-for-bit.
fn assert_fastpath_identical(kernel: &dyn Kernel, label: &str) {
    let reference = Gpu::v100()
        .profile_reference(kernel)
        .unwrap_or_else(|e| panic!("{label}: reference launch failed: {e}"));
    let streamed = Gpu::v100()
        .with_block_dedup(false)
        .try_profile(kernel)
        .unwrap_or_else(|e| panic!("{label}: streamed launch failed: {e}"));
    let dedup = Gpu::v100()
        .try_profile(kernel)
        .unwrap_or_else(|e| panic!("{label}: dedup launch failed: {e}"));
    assert_eq!(streamed, reference, "{label}: streaming reduction diverged");
    assert_eq!(dedup, reference, "{label}: block dedup diverged");
}

#[test]
fn all_kernels_fastpath_bit_identical() {
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0x5A17 + i as u64 * 101;
        let label = |name: &str| format!("{name} {m}x{k}x{n} s={sparsity}");
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed + 1);

        // Sputnik SpMM: default, heuristic, and swizzled configs.
        for cfg in [
            SpmmConfig::default(),
            SpmmConfig::heuristic::<f32>(n),
            SpmmConfig {
                row_swizzle: true,
                ..SpmmConfig::heuristic::<f32>(n)
            },
        ] {
            let swizzle = if cfg.row_swizzle {
                RowSwizzle::by_length_desc(&a)
            } else {
                RowSwizzle::identity(a.rows())
            };
            let kernel = sputnik::SpmmKernel::<f32>::for_profile(&a, n, &swizzle, cfg);
            assert_fastpath_identical(&kernel, &label("spmm"));
        }

        // Scalar fallback SpMM.
        {
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            assert_fastpath_identical(&kernel, &label("fallback_spmm"));
        }

        // SDDMM (swizzled heuristic).
        {
            let mask = gen::uniform(m, n, sparsity, seed + 2);
            let swizzle = RowSwizzle::by_length_desc(&mask);
            let kernel = SddmmKernel::<f32>::for_profile(
                &mask,
                k,
                &swizzle,
                SddmmConfig::heuristic::<f32>(k),
            );
            assert_fastpath_identical(&kernel, &label("sddmm"));
        }

        // Sparse softmax.
        {
            let mut values = vec![0.0f32; a.nnz()];
            let kernel = SparseSoftmaxKernel::new(&a, &mut values);
            assert_fastpath_identical(&kernel, &label("softmax"));
        }

        // Value permute.
        {
            let src = a.values().to_vec();
            let perm: Vec<u32> = (0..a.nnz() as u32).rev().collect();
            let mut dst = vec![0.0f32; a.nnz()];
            let kernel = PermuteKernel::new(&src, &perm, &mut dst);
            assert_fastpath_identical(&kernel, &label("permute"));
        }

        // Dense GEMM + transpose.
        {
            let da = Matrix::<f32>::random(m, k, seed + 5);
            let mut out = Matrix::<f32>::zeros(m, n);
            let kernel = GemmKernel::new(&da, &b, &mut out);
            assert_fastpath_identical(&kernel, &label("gemm"));

            let mut t = Matrix::<f32>::zeros(k, m);
            let kernel = TransposeKernel::new(&da, &mut t);
            assert_fastpath_identical(&kernel, &label("transpose"));
        }

        // ELLR-T SpMM.
        {
            let ell = EllMatrix::from_csr(&a);
            let kernel = EllSpmmKernel::for_profile(&ell, n);
            assert_fastpath_identical(&kernel, &label("ell_spmm"));
        }

        // Merge SpMM (N % 32 == 0 only).
        if n % 32 == 0 {
            let kernel = MergeSpmmKernel::<f32>::for_profile(&a, n)
                .unwrap_or_else(|e| panic!("merge construction: {e}"));
            assert_fastpath_identical(&kernel, &label("merge_spmm"));
        }

        // Nonzero-split SpMM.
        {
            let kernel = NnzSplitSpmmKernel::<f32>::for_profile(&a, n);
            assert_fastpath_identical(&kernel, &label("nnz_split"));
        }

        // cuSPARSE SpMM + the half fallback.
        {
            let kernel = CusparseSpmmKernel::<f32>::for_profile(&a, n);
            assert_fastpath_identical(&kernel, &label("cusparse_spmm"));

            let kernel = CusparseSpmmHalfFallbackKernel::new(&a, n);
            assert_fastpath_identical(&kernel, &label("cusparse_half_fallback"));
        }

        // Constrained GEMM SDDMM.
        {
            let mask = gen::uniform(m, n, sparsity, seed + 6);
            let kernel = ConstrainedGemmKernel::for_profile(&mask, k);
            assert_fastpath_identical(&kernel, &label("constrained_gemm"));
        }
    }

    // Shape-constrained baselines.
    {
        let a = gen::uniform(256, 128, 0.8, 0xA597);
        let plan = AsptPlan::build(&a, AsptDirection::Spmm);
        let kernel = AsptSpmmKernel::<f32>::for_profile(&a, &plan, 32)
            .unwrap_or_else(|e| panic!("aspt construction: {e}"));
        assert_fastpath_identical(&kernel, "aspt 256x128x32");
    }
    {
        let dense = Matrix::<f32>::random(64, 64, 0xB10C);
        let bsr = block::block_prune(&dense, 8, 0.5);
        let kernel = BlockSpmmKernel::for_profile(&bsr, 32);
        assert_fastpath_identical(&kernel, "block_spmm 64x64x32");
    }
}

#[test]
fn functional_launch_unaffected_by_dedup_setting() {
    // Functional dedup records cost for one representative per block
    // signature and replays the rest functional-only; a functional launch
    // must produce identical outputs and stats regardless of the flag.
    let (m, k, n) = (96, 64, 48);
    let a = gen::uniform(m, k, 0.75, 77);
    let b = Matrix::<f32>::random(k, n, 78);
    let run = |dedup: bool| {
        let gpu = Gpu::v100().with_block_dedup(dedup);
        let mut out = Matrix::<f32>::zeros(m, n);
        let stats = {
            let swizzle = RowSwizzle::identity(m);
            let kernel =
                sputnik::SpmmKernel::try_new(&a, &b, &mut out, &swizzle, SpmmConfig::default())
                    .unwrap_or_else(|e| panic!("{e}"));
            gpu.try_launch(&kernel).unwrap_or_else(|e| panic!("{e}"))
        };
        (out, stats)
    };
    let (out_on, stats_on) = run(true);
    let (out_off, stats_off) = run(false);
    assert_eq!(out_on.as_slice(), out_off.as_slice());
    assert_eq!(stats_on, stats_off);
}

#[test]
fn functional_dedup_bit_identical_across_kernels() {
    // The functional-mode dedup fast path, end to end over every
    // functional-capable kernel: outputs AND stats must be bit-identical to
    // the dedup-disabled engine (equal signatures ⇒ bit-identical BlockCost
    // and block outputs independent of the record flag).
    let gpu_on = Gpu::v100();
    let gpu_off = Gpu::v100().with_block_dedup(false);
    let bits =
        |mat: &Matrix<f32>| -> Vec<u32> { mat.as_slice().iter().map(|v| v.to_bits()).collect() };

    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0xD3D0 + i as u64 * 41;
        let label = |name: &str| format!("{name} {m}x{k}x{n} s={sparsity}");
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed + 1);
        let b_col = b.to_layout(sparse::Layout::ColMajor);
        let lhs = Matrix::<f32>::random(m, k, seed + 2);
        let rhs = Matrix::<f32>::random(n, k, seed + 3);

        let check = |label: String,
                     out_on: Vec<u32>,
                     stats_on: gpu_sim::LaunchStats,
                     out_off: Vec<u32>,
                     stats_off: gpu_sim::LaunchStats| {
            assert_eq!(out_on, out_off, "{label}: functional dedup changed outputs");
            assert_eq!(
                stats_on, stats_off,
                "{label}: functional dedup changed stats"
            );
        };

        {
            let cfg = SpmmConfig::heuristic::<f32>(n);
            let (c_on, s_on) = sputnik::spmm(&gpu_on, &a, &b, cfg);
            let (c_off, s_off) = sputnik::spmm(&gpu_off, &a, &b, cfg);
            check(label("spmm"), bits(&c_on), s_on, bits(&c_off), s_off);
        }
        {
            let mask = gen::uniform(m, n, sparsity, seed + 4);
            let cfg = SddmmConfig::heuristic::<f32>(k);
            let (d_on, s_on) = sputnik::sddmm(&gpu_on, &lhs, &rhs, &mask, cfg);
            let (d_off, s_off) = sputnik::sddmm(&gpu_off, &lhs, &rhs, &mask, cfg);
            let vb = |m: &sparse::CsrMatrix<f32>| -> Vec<u32> {
                m.values().iter().map(|v| v.to_bits()).collect()
            };
            check(label("sddmm"), vb(&d_on), s_on, vb(&d_off), s_off);
        }
        {
            let (c_on, s_on) = baselines::cusparse_spmm(&gpu_on, &a, &b_col);
            let (c_off, s_off) = baselines::cusparse_spmm(&gpu_off, &a, &b_col);
            check(label("cusparse"), bits(&c_on), s_on, bits(&c_off), s_off);
        }
        if n % 32 == 0 {
            let (c_on, s_on) =
                baselines::merge_spmm(&gpu_on, &a, &b).unwrap_or_else(|e| panic!("{e}"));
            let (c_off, s_off) =
                baselines::merge_spmm(&gpu_off, &a, &b).unwrap_or_else(|e| panic!("{e}"));
            check(label("merge_spmm"), bits(&c_on), s_on, bits(&c_off), s_off);
        }
        {
            let (c_on, s_on) = baselines::nnz_split_spmm(&gpu_on, &a, &b);
            let (c_off, s_off) = baselines::nnz_split_spmm(&gpu_off, &a, &b);
            check(label("nnz_split"), bits(&c_on), s_on, bits(&c_off), s_off);
        }
        {
            let ell = EllMatrix::from_csr(&a);
            let (c_on, s_on) = baselines::ell_spmm(&gpu_on, &ell, &b);
            let (c_off, s_off) = baselines::ell_spmm(&gpu_off, &ell, &b);
            check(label("ell_spmm"), bits(&c_on), s_on, bits(&c_off), s_off);
        }
        {
            let (c_on, s_on) = baselines::gemm(&gpu_on, &lhs, &b);
            let (c_off, s_off) = baselines::gemm(&gpu_off, &lhs, &b);
            check(label("gemm"), bits(&c_on), s_on, bits(&c_off), s_off);

            let (t_on, s_on) = baselines::transpose(&gpu_on, &b);
            let (t_off, s_off) = baselines::transpose(&gpu_off, &b);
            check(label("transpose"), bits(&t_on), s_on, bits(&t_off), s_off);
        }
    }

    // Block-sparse (dense 32-divisible shape).
    {
        let dense = Matrix::<f32>::random(64, 64, 0xB25C);
        let bsr = block::block_prune(&dense, 8, 0.5);
        let b = Matrix::<f32>::random(64, 48, 0xB25D);
        let (c_on, s_on) = baselines::block_spmm(&gpu_on, &bsr, &b);
        let (c_off, s_off) = baselines::block_spmm(&gpu_off, &bsr, &b);
        assert_eq!(c_on.as_slice(), c_off.as_slice(), "block_spmm outputs");
        assert_eq!(s_on, s_off, "block_spmm stats");
    }
}

#[test]
fn profile_launches_never_touch_outputs() {
    // Profile-only launches must not write functional outputs, even when
    // the kernel holds real output buffers.
    let (m, k, n) = (64, 96, 32);
    let a = gen::uniform(m, k, 0.7, 91);
    let b = Matrix::<f32>::random(k, n, 92);

    // Sputnik SpMM with a sentinel-filled output.
    {
        let mut out = Matrix::<f32>::from_fn(m, n, |_, _| 7.125);
        let swizzle = RowSwizzle::identity(m);
        {
            let kernel =
                sputnik::SpmmKernel::try_new(&a, &b, &mut out, &swizzle, SpmmConfig::default())
                    .unwrap_or_else(|e| panic!("{e}"));
            let _ = Gpu::v100()
                .try_profile(&kernel)
                .unwrap_or_else(|e| panic!("{e}"));
        }
        assert!(
            out.as_slice().iter().all(|&v| v == 7.125),
            "profile launch wrote to the SpMM output"
        );
    }

    // Scalar fallback SpMM.
    {
        let mut out = Matrix::<f32>::from_fn(m, n, |_, _| 7.125);
        {
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            let _ = Gpu::v100()
                .try_profile(&kernel)
                .unwrap_or_else(|e| panic!("{e}"));
        }
        assert!(
            out.as_slice().iter().all(|&v| v == 7.125),
            "profile launch wrote to the fallback output"
        );
    }

    // Atomic-output kernel (nonzero-split): profile must leave the atomics
    // untouched too.
    {
        let out: Vec<AtomicU32> = (0..m * n)
            .map(|_| AtomicU32::new(7.125f32.to_bits()))
            .collect();
        let kernel = NnzSplitSpmmKernel::new(&a, &b, &out);
        let _ = Gpu::v100()
            .try_profile(&kernel)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            out.iter()
                .all(|v| v.load(Ordering::Relaxed) == 7.125f32.to_bits()),
            "profile launch wrote to the atomic output"
        );
    }
}

#[test]
fn cached_profile_equals_uncached_across_kernels() {
    // The launch cache must replay exactly what an uncached profile returns,
    // for both SpMM and SDDMM entry points, across the shape grid.
    let cache = gpu_sim::LaunchCache::new();
    let gpu = Gpu::v100();
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0xCAC4E + i as u64 * 31;
        let a = gen::uniform(m, k, sparsity, seed);
        let spmm_cfg = SpmmConfig::heuristic::<f32>(n);
        let sddmm_cfg = SddmmConfig::heuristic::<f32>(k);

        let plain_spmm = sputnik::spmm_profile::<f32>(&gpu, &a, k, n, spmm_cfg);
        let (cold, hit_cold) =
            sputnik::spmm_profile_cached::<f32>(&gpu, &cache, &a, k, n, spmm_cfg);
        let (warm, hit_warm) =
            sputnik::spmm_profile_cached::<f32>(&gpu, &cache, &a, k, n, spmm_cfg);
        assert!(!hit_cold && hit_warm);
        assert_eq!(plain_spmm, cold);
        assert_eq!(plain_spmm, warm);

        let plain_sddmm = sputnik::sddmm_profile::<f32>(&gpu, &a, k, sddmm_cfg);
        let (cold, hit_cold) = sputnik::sddmm_profile_cached::<f32>(&gpu, &cache, &a, k, sddmm_cfg);
        let (warm, hit_warm) = sputnik::sddmm_profile_cached::<f32>(&gpu, &cache, &a, k, sddmm_cfg);
        assert!(!hit_cold && hit_warm);
        assert_eq!(plain_sddmm, cold);
        assert_eq!(plain_sddmm, warm);
    }
}
