//! End-to-end trace gates: a traced model run must export Chrome
//! `trace_event` JSON that passes structural validation, and the profile
//! report built from the same events must account for every simulated
//! microsecond in its per-layer rows.
//!
//! The recorder is process-global, so the tests in this binary serialize on
//! one mutex and use distinct device names as track isolation.

use dnn::lstm::SparseLstmCell;
use dnn::rnn::{CellKind, RnnProblem};
use dnn::{mobilenet, rnn};
use gpu_sim::{trace, DeviceConfig, Gpu};
use sparse::Matrix;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// A V100 renamed so this test's events land on their own track, away from
/// launches other concurrently running tests might record.
fn test_gpu(name: &str) -> Gpu {
    let mut dev = DeviceConfig::v100();
    dev.name = name.to_string();
    Gpu::new(dev)
}

#[test]
fn traced_model_run_exports_valid_chrome_trace() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();
    let track = "trace-schema-mobilenet";
    let gpu = test_gpu(track);

    // Small models: this runs in debug builds under `cargo test`.
    let model = mobilenet::MobileNetV1::new(0.25);
    let bench = mobilenet::benchmark(&gpu, &model, Some(0.9), false);
    assert!(bench.inference_us > 0.0);

    let cell = SparseLstmCell::random(64, 32, 0.9, 5);
    let x = Matrix::<f32>::random(64, 4, 6);
    let h = Matrix::<f32>::zeros(32, 4);
    let c = Matrix::<f32>::zeros(32, 4);
    cell.step(&gpu, &x, &h, &c);

    let events = trace::disable();
    let mine: Vec<_> = events.into_iter().filter(|e| e.track == track).collect();
    let json = trace::chrome_trace_json(&mine);
    let check = trace::validate_chrome_trace(&json).expect("trace must pass schema validation");
    assert!(check.launches > 0, "model run must record launches");
    assert!(
        check.counters >= 4 * check.launches,
        "each launch synthesizes occupancy + bandwidth counter samples"
    );
    assert_eq!(check.tracks, 1, "all events filtered to one track");
}

#[test]
fn profile_report_accounts_for_every_simulated_microsecond() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();
    let track = "trace-schema-report";
    let gpu = test_gpu(track);

    let model = mobilenet::MobileNetV1::new(0.25);
    mobilenet::benchmark(&gpu, &model, Some(0.9), false);
    // A launch outside any span: must surface as a synthetic layer row
    // rather than silently dropping from the per-layer accounting.
    let problem = RnnProblem {
        cell: CellKind::Rnn,
        hidden: 128,
        sparsity: 0.9,
        batch: 32,
    };
    let saved = trace::enabled();
    assert!(saved);
    rnn::profile_problem(&gpu, &problem, 9);

    let events = trace::disable();
    let mine: Vec<_> = events.into_iter().filter(|e| e.track == track).collect();
    let report = trace::ProfileReport::from_events(&mine);
    assert!(report.total_us > 0.0);
    // 15 MobileNet spans (stem + 13 blocks + classifier) plus the RNN
    // problem span.
    assert!(
        report.layers.len() >= 16,
        "got {} layers",
        report.layers.len()
    );
    let layer_sum: f64 = report.layers.iter().map(|l| l.dur_us).sum();
    assert!(
        (layer_sum - report.total_us).abs() <= 1e-6 * report.total_us,
        "layer durations ({layer_sum}) must sum to the total ({})",
        report.total_us
    );
    assert!(!report.kernels.is_empty());
    assert!(!report.bound_by.is_empty());
}
