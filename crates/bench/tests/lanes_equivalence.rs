//! Scalar-vs-vectorized bit-equivalence for every functional kernel body.
//!
//! The lane helpers in `gpu_sim::lanes` promise that the vectorized path
//! regroups only *independent* output elements and never reassociates a
//! per-element reduction, so flipping to the scalar fallback
//! (`GPU_SIM_SCALAR=1` / `set_vectorized(false)`) must reproduce the exact
//! same output bits. This suite runs every Sputnik kernel and every baseline
//! on the standard problem grid under both paths and compares outputs with
//! `to_bits` equality — not tolerance.
//!
//! The path selector is process-global, so everything lives in a single
//! `#[test]` (integration tests are their own process; within it one test
//! body keeps the flips serial).

use gpu_sim::{lanes, Gpu};
use sparse::{block, ell::EllMatrix, gen, Layout, Matrix};
use sputnik::{SddmmConfig, SpmmConfig};

const SHAPES: &[(usize, usize, usize, f64)] =
    &[(64, 96, 32, 0.7), (128, 128, 128, 0.9), (100, 76, 40, 0.8)];

fn bits(m: &Matrix<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn vals_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|v| v.to_bits()).collect()
}

/// Run `f` under both lane paths and assert bitwise-equal results.
fn assert_paths_match<R: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> R) {
    lanes::set_vectorized(true);
    let vec = f();
    lanes::set_vectorized(false);
    let scalar = f();
    lanes::set_vectorized(true);
    assert_eq!(vec, scalar, "{label}: scalar and vectorized paths diverged");
}

#[test]
fn every_kernel_bit_identical_on_both_lane_paths() {
    let gpu = Gpu::v100();
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0x1A9E5 + i as u64 * 57;
        let label = |name: &str| format!("{name} {m}x{k}x{n} s={sparsity}");
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed + 1);
        let b_col = b.to_layout(Layout::ColMajor);
        let lhs = Matrix::<f32>::random(m, k, seed + 2);
        let rhs = Matrix::<f32>::random(n, k, seed + 3);
        let mask = gen::uniform(m, n, sparsity, seed + 4);

        assert_paths_match(&label("reference_spmm"), || {
            bits(&sputnik::reference::spmm(&a, &b))
        });
        assert_paths_match(&label("reference_sddmm"), || {
            vals_bits(sputnik::reference::sddmm(&lhs, &rhs, &mask).values())
        });
        assert_paths_match(&label("spmm"), || {
            bits(&sputnik::spmm(&gpu, &a, &b, SpmmConfig::heuristic::<f32>(n)).0)
        });
        assert_paths_match(&label("spmm_swizzled"), || {
            let cfg = SpmmConfig {
                row_swizzle: true,
                ..SpmmConfig::heuristic::<f32>(n)
            };
            bits(&sputnik::spmm(&gpu, &a, &b, cfg).0)
        });
        assert_paths_match(&label("sddmm"), || {
            let cfg = SddmmConfig::heuristic::<f32>(k);
            vals_bits(sputnik::sddmm(&gpu, &lhs, &rhs, &mask, cfg).0.values())
        });
        assert_paths_match(&label("softmax"), || {
            vals_bits(sputnik::sparse_softmax(&gpu, &a).0.values())
        });
        assert_paths_match(&label("cusparse_spmm"), || {
            bits(&baselines::cusparse_spmm(&gpu, &a, &b_col).0)
        });
        if n % 32 == 0 {
            assert_paths_match(&label("merge_spmm"), || {
                bits(
                    &baselines::merge_spmm(&gpu, &a, &b)
                        .unwrap_or_else(|e| panic!("merge: {e}"))
                        .0,
                )
            });
        }
        assert_paths_match(&label("nnz_split"), || {
            bits(&baselines::nnz_split_spmm(&gpu, &a, &b).0)
        });
        assert_paths_match(&label("ell_spmm"), || {
            let ell = EllMatrix::from_csr(&a);
            bits(&baselines::ell_spmm(&gpu, &ell, &b).0)
        });
        assert_paths_match(&label("gemm"), || bits(&baselines::gemm(&gpu, &lhs, &b).0));
        assert_paths_match(&label("transpose"), || {
            bits(&baselines::transpose(&gpu, &b).0)
        });
    }

    // Shape-constrained baselines.
    {
        let dense = Matrix::<f32>::random(64, 64, 0xB11D);
        let bsr = block::block_prune(&dense, 8, 0.5);
        let b = Matrix::<f32>::random(64, 48, 0xB11E);
        assert_paths_match("block_spmm 64x64x48", || {
            bits(&baselines::block_spmm(&gpu, &bsr, &b).0)
        });
    }
    {
        let a = gen::uniform(256, 128, 0.8, 0xA512);
        let b = Matrix::<f32>::random(128, 32, 0xA513);
        assert_paths_match("aspt 256x128x32", || {
            bits(
                &baselines::aspt_spmm(&gpu, &a, &b)
                    .unwrap_or_else(|e| panic!("aspt: {e}"))
                    .0,
            )
        });
    }
}
