//! Fusion equivalence gates (the `fastpath_equivalence` of the launch-plan
//! IR).
//!
//! The fused `SddmmSoftmaxSpmmKernel` replaces three launches with one; the
//! contract is that fusion is *bit-invisible*: the fused kernel's
//! functional body keeps the per-element accumulation order of the
//! three-launch reference (SDDMM strip chunks, the scaled-softmax passes,
//! the SpMM tile loop), and every intermediate round-trips through the
//! element type exactly where the unfused pipeline stores and reloads it.
//! This suite pins that bit-identity across the registry shape grid,
//! attention-style band masks, random topologies, and pathological ±inf
//! logits — and pins the planner's legality rule: fuse exactly when the
//! staging footprint fits the device's shared memory, never otherwise.

use gpu_sim::{Gpu, Verdict};
use sparse::{gen, CsrMatrix, Matrix};
use sputnik::{
    attention_configs, sparse_attention_fused, sparse_attention_unfused, FusionPlanner, PlanOp,
    SddmmConfig, SpmmConfig,
};

/// The sanitize_all / registry shape grid.
const SHAPES: &[(usize, usize, usize, f64)] =
    &[(64, 96, 32, 0.7), (128, 128, 128, 0.9), (100, 76, 40, 0.8)];

fn bits(m: &Matrix<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Run both paths and assert bitwise-equal contexts. Returns whether the
/// planner fused.
fn assert_fusion_bit_identical(
    gpu: &Gpu,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
    scale: f32,
    label: &str,
) -> bool {
    let run = sparse_attention_fused(gpu, q, k, v, mask, scale, None, None);
    let (reference, _) = sparse_attention_unfused(gpu, q, k, v, mask, scale, &run.configs)
        .unwrap_or_else(|e| panic!("{label}: unfused reference failed: {e}"));
    assert_eq!(
        bits(&run.context),
        bits(&reference),
        "{label}: fused output diverged from the three-launch reference"
    );
    if run.decision.fused {
        assert_eq!(
            run.time.launches, 1,
            "{label}: fused run must be one launch"
        );
        let report = run
            .report
            .unwrap_or_else(|| panic!("{label}: fused run has no report"));
        assert!(
            report.violations.is_empty(),
            "{label}: sanitizer violations on the fused launch: {:?}",
            report.violations
        );
    } else {
        assert_eq!(
            run.time.launches, 3,
            "{label}: unfused run must be three launches"
        );
    }
    run.decision.fused
}

#[test]
fn fused_bit_identical_across_registry_grid() {
    let gpu = Gpu::v100();
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0x5A17 + i as u64 * 101;
        let mask = gen::uniform(m, n, sparsity, seed + 2);
        let q = Matrix::<f32>::random(m, k, seed + 3);
        let kmat = Matrix::<f32>::random(n, k, seed + 4);
        let v = Matrix::<f32>::random(n, k, seed + 5);
        let scale = 1.0 / (k as f32).sqrt();
        let fused = assert_fusion_bit_identical(
            &gpu,
            &q,
            &kmat,
            &v,
            &mask,
            scale,
            &format!("grid {m}x{k}x{n} s={sparsity}"),
        );
        assert!(fused, "registry-grid shapes must all fit shared memory");
    }
}

#[test]
fn fused_bit_identical_on_attention_masks() {
    let gpu = Gpu::v100();
    for (seq, band, off, d, seed) in [
        (128usize, 16usize, 0.9f64, 32usize, 21u64),
        (256, 32, 0.95, 64, 22),
        (192, 8, 0.7, 16, 23),
    ] {
        let mask = gen::attention_mask(seq, band, off, seed);
        let q = Matrix::<f32>::random(seq, d, seed + 1);
        let kmat = Matrix::<f32>::random(seq, d, seed + 2);
        let v = Matrix::<f32>::random(seq, d, seed + 3);
        let scale = 1.0 / (d as f32).sqrt();
        let fused = assert_fusion_bit_identical(
            &gpu,
            &q,
            &kmat,
            &v,
            &mask,
            scale,
            &format!("attention seq={seq} band={band}"),
        );
        assert!(fused, "band masks must fuse at seq={seq}");
    }
}

#[test]
fn fused_bit_identical_on_random_topologies() {
    let gpu = Gpu::v100();
    for seed in 0..8u64 {
        let rows = 16 + (seed as usize * 13) % 90;
        let cols = 24 + (seed as usize * 29) % 110;
        let d = 8 + (seed as usize % 4) * 8;
        let sparsity = 0.5 + (seed as f64 % 5.0) / 10.0;
        let mask = gen::uniform(rows, cols, sparsity, 0xF0A + seed);
        let q = Matrix::<f32>::random(rows, d, 0xF1B + seed);
        let kmat = Matrix::<f32>::random(cols, d, 0xF2C + seed);
        let v = Matrix::<f32>::random(cols, d, 0xF3D + seed);
        assert_fusion_bit_identical(
            &gpu,
            &q,
            &kmat,
            &v,
            &mask,
            0.25,
            &format!("random {rows}x{cols} d={d} s={sparsity:.1}"),
        );
    }
}

/// Pathological logits: operand magnitudes around 1e20 drive the SDDMM
/// dot products to ±inf, exercising the softmax's +inf mass-split and
/// all-(-inf) uniform branches. Inputs stay finite (the wrappers reject
/// non-finite operands), the *scores* overflow — and the fused kernel must
/// still match the reference bit-for-bit, special values included.
#[test]
fn fused_bit_identical_on_inf_logits() {
    let gpu = Gpu::v100();
    let (seq, d) = (48usize, 8usize);
    let mask = gen::attention_mask(seq, 6, 0.6, 31);
    let q = Matrix::<f32>::from_fn(seq, d, |r, c| match r % 3 {
        0 => 1e20,
        1 => -1e20,
        _ => ((r * d + c) as f32).sin(),
    });
    let kmat = Matrix::<f32>::from_fn(seq, d, |_, _| 1e20);
    let v = Matrix::<f32>::random(seq, d, 32);
    assert_fusion_bit_identical(&gpu, &q, &kmat, &v, &mask, 0.5, "inf logits");
}

/// The planner's legality rule, as a property over seeded random
/// topologies: fuse exactly when the staging footprint (scores row + index
/// strip) fits the device's per-block shared memory — and the unfused
/// fallback still matches the reference bitwise on the oversized path.
#[test]
fn planner_fuses_iff_staging_fits() {
    let gpu = Gpu::v100();
    let cap = gpu.device().smem_per_block_max as u64;
    let mut fused_seen = 0;
    let mut unfused_seen = 0;
    for seed in 0..12u64 {
        // Row lengths from ~3.7k up to ~29k nonzeros (staging ~15 KB to
        // ~118 KB, straddling the V100's 96 KiB capacity).
        let cols = 4096 * (1 + seed as usize % 8);
        let rows = 3;
        let sparsity = 0.1;
        let mask = gen::uniform(rows, cols, sparsity, 0xCAB + seed);
        let d = 4;
        let n = 4;
        let configs = attention_configs(&gpu, None, None, &mask, d, n);
        let staging =
            gpu_sim::fused::staging_bytes(mask.max_row_len(), configs.sddmm.block_items_x as usize);
        let ops = [
            PlanOp::Sddmm { cfg: configs.sddmm },
            PlanOp::Scale { factor: 0.5 },
            PlanOp::SparseSoftmax,
            PlanOp::Spmm { cfg: configs.spmm },
        ];
        let decision = FusionPlanner::plan(&gpu, &ops, &mask, d, n);
        assert_eq!(decision.staging_bytes, staging);
        assert_eq!(
            decision.fused,
            staging <= cap,
            "seed {seed}: staging {staging} B vs capacity {cap} B, \
             planner said fused={} ({})",
            decision.fused,
            decision.reason
        );
        if decision.fused {
            fused_seen += 1;
        } else {
            unfused_seen += 1;
            assert!(
                decision.reason.contains("shared_capacity"),
                "oversized refusal must cite the shared-capacity audit: {}",
                decision.reason
            );
        }

        // Both sides of the boundary still agree bitwise end to end.
        let q = Matrix::<f32>::random(rows, d, 0xD0 + seed);
        let kmat = Matrix::<f32>::random(cols, d, 0xD1 + seed);
        let v = Matrix::<f32>::random(cols, n, 0xD2 + seed);
        let fused = assert_fusion_bit_identical(
            &gpu,
            &q,
            &kmat,
            &v,
            &mask,
            0.5,
            &format!("boundary seed {seed} ({cols} cols)"),
        );
        assert_eq!(fused, decision.fused, "plan must be deterministic");
    }
    assert!(
        fused_seen > 0 && unfused_seen > 0,
        "probe must straddle the capacity boundary (fused {fused_seen}, unfused {unfused_seen})"
    );
}

/// The planner must never fuse a chain that is not the canonical window,
/// and a smaller-capacity device must refuse topologies a V100 accepts.
#[test]
fn planner_respects_device_capacity() {
    let v100 = Gpu::v100();
    let gtx = Gpu::gtx1080();
    let v100_cap = v100.device().smem_per_block_max as u64;
    let gtx_cap = gtx.device().smem_per_block_max as u64;
    assert!(
        gtx_cap < v100_cap,
        "test premise: 1080 has less shared memory"
    );

    // A topology sized between the two capacities: fused on V100 only.
    let target_nnz = ((gtx_cap + v100_cap) / 2 / 4) as usize;
    let cols = target_nnz * 5 / 4;
    let mask = gen::uniform(2, cols, 0.2, 77);
    assert!(
        (gtx_cap..=v100_cap).contains(&gpu_sim::fused::staging_bytes(mask.max_row_len(), 32)),
        "probe topology must land between the capacities"
    );
    let d = 4;
    let configs_v = attention_configs(&v100, None, None, &mask, d, d);
    let ops = [
        PlanOp::Sddmm {
            cfg: configs_v.sddmm,
        },
        PlanOp::Scale { factor: 0.5 },
        PlanOp::SparseSoftmax,
        PlanOp::Spmm {
            cfg: configs_v.spmm,
        },
    ];
    assert!(FusionPlanner::plan(&v100, &ops, &mask, d, d).fused);
    assert!(!FusionPlanner::plan(&gtx, &ops, &mask, d, d).fused);
}

/// Registry sweep: the fused kernel's static audit must come back free of
/// refutations on every registry shape (the same probes `static_audit`
/// counts), so fused launches always clear the audit gate of the funnel.
#[test]
fn fused_kernel_never_refuted_on_registry_shapes() {
    let gpu = Gpu::v100();
    for (i, &(m, k, n, sparsity)) in SHAPES.iter().enumerate() {
        let seed = 0x5A17 + i as u64 * 101;
        let mask = gen::uniform(m, n, sparsity, seed + 2);
        let sddmm_tile = SddmmConfig::heuristic::<f32>(k).block_items_x as usize;
        let spmm_tile = SpmmConfig::heuristic::<f32>(k).block_items_x as usize;
        let probe = gpu_sim::SddmmSoftmaxSpmmKernel::<f32>::for_profile(
            &mask,
            k,
            k,
            0.125,
            sddmm_tile,
            spmm_tile,
            format!("s{sddmm_tile}x{spmm_tile}"),
        );
        let audit = gpu.audit(&probe);
        let refuted: Vec<_> = audit
            .findings
            .iter()
            .filter(|f| f.verdict == Verdict::Refuted)
            .collect();
        assert!(
            refuted.is_empty(),
            "shape {m}x{k}x{n}: fused kernel refuted: {refuted:?}"
        );
    }
}
