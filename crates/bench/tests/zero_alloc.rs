//! The zero-alloc warm path, pinned by a counting global allocator.
//!
//! A warm functional replay (`Gpu::replay_functional` — the execution mode
//! behind launch-cache hits) must not touch the heap at all: staging buffers
//! come from the thread-local scratch arenas, accumulators live on the
//! stack, and cost recording is skipped entirely. This test wraps the system
//! allocator with a counter and requires a run of consecutive replay
//! launches with zero `alloc`/`realloc` calls once the arenas and the rayon
//! worker pool have warmed up.

use gpu_sim::Gpu;
use sparse::{gen, Matrix, RowSwizzle};
use sputnik::SpmmConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Replay `launch` repeatedly until it stops allocating, then demand a
/// streak of allocation-free launches. The warm-up bound is generous: the
/// first launches fill arena pools on every rayon worker and the pool's own
/// task-queue high-water marks.
fn assert_becomes_alloc_free(label: &str, mut launch: impl FnMut()) {
    const STREAK: u32 = 16;
    let mut streak = 0;
    for _ in 0..256 {
        let before = allocs();
        launch();
        if allocs() == before {
            streak += 1;
            if streak >= STREAK {
                return;
            }
        } else {
            streak = 0;
        }
    }
    panic!("{label}: no run of {STREAK} allocation-free launches in 256 tries");
}

#[test]
fn warm_functional_replay_never_allocates() {
    let gpu = Gpu::v100();

    // Sputnik SpMM: subwarp tiling, ROMA alignment, arena-staged tiles.
    {
        let (m, k, n) = (256, 256, 64);
        let a = gen::uniform(m, k, 0.8, 0x2E40);
        let b = Matrix::<f32>::random(k, n, 0x2E41);
        let mut out = Matrix::<f32>::zeros(m, n);
        let swizzle = RowSwizzle::identity(m);
        let kernel = sputnik::SpmmKernel::try_new(
            &a,
            &b,
            &mut out,
            &swizzle,
            SpmmConfig::heuristic::<f32>(n),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_becomes_alloc_free("spmm replay", || gpu.replay_functional(&kernel));
    }

    // Dense GEMM: the arena-checkout-per-block path.
    {
        let a = Matrix::<f32>::random(128, 64, 0x2E42);
        let b = Matrix::<f32>::random(64, 96, 0x2E43);
        let mut out = Matrix::<f32>::zeros(128, 96);
        let kernel = baselines::GemmKernel::new(&a, &b, &mut out);
        assert_becomes_alloc_free("gemm replay", || gpu.replay_functional(&kernel));
    }
}
