//! Criterion wall-clock benchmarks of the simulator and the functional
//! kernels, one group per paper artifact. These time the *host* cost of the
//! simulation (useful for tracking regressions in this repository); the
//! *simulated device* times are produced by the `src/bin` experiment
//! harnesses.

// Benchmarks, like tests, crash loudly; the unwrap denial is for library code.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::Gpu;
use sparse::{gen, Half, Matrix};
use sputnik::{SddmmConfig, SpmmConfig};
use std::hint::black_box;

/// Figure 1's problem family at a fixed moderate size.
fn bench_spmm(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let mut group = c.benchmark_group("fig01_spmm");
    for &sparsity in &[0.7f64, 0.9] {
        let a = gen::uniform(1024, 1024, sparsity, 1);
        let b = Matrix::<f32>::random(1024, 128, 2);
        let cfg = SpmmConfig::heuristic::<f32>(128);
        group.bench_with_input(
            BenchmarkId::new("functional", format!("s{sparsity}")),
            &sparsity,
            |bench, _| bench.iter(|| black_box(sputnik::spmm(&gpu, &a, &b, cfg))),
        );
        group.bench_with_input(
            BenchmarkId::new("profile", format!("s{sparsity}")),
            &sparsity,
            |bench, _| {
                bench.iter(|| black_box(sputnik::spmm_profile::<f32>(&gpu, &a, 1024, 128, cfg)))
            },
        );
    }
    group.finish();
}

/// Mixed-precision SpMM (Figure 9 right panel).
fn bench_spmm_f16(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let a = gen::uniform(1024, 1024, 0.8, 3).convert::<Half>();
    let cfg = SpmmConfig::heuristic::<Half>(128);
    c.bench_function("fig09_spmm_f16_profile", |bench| {
        bench.iter(|| black_box(sputnik::spmm_profile::<Half>(&gpu, &a, 1024, 128, cfg)))
    });
}

/// SDDMM on a weight-gradient-shaped problem (Figure 9 bottom-left).
fn bench_sddmm(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let mask = gen::uniform(512, 512, 0.8, 4);
    let lhs = Matrix::<f32>::random(512, 256, 5);
    let rhs = Matrix::<f32>::random(512, 256, 6);
    let cfg = SddmmConfig::heuristic::<f32>(256);
    c.bench_function("fig09_sddmm_functional", |bench| {
        bench.iter(|| black_box(sputnik::sddmm(&gpu, &lhs, &rhs, &mask, cfg)))
    });
}

/// The Figure 7 load-balance pair: swizzled vs standard ordering.
fn bench_load_balance(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let a = gen::with_cov(2048, 2048, 0.75, 1.2, 7);
    let cfg = SpmmConfig::heuristic::<f32>(128);
    let mut group = c.benchmark_group("fig07_load_balance");
    group.bench_function("swizzled", |bench| {
        bench.iter(|| black_box(sputnik::spmm_profile::<f32>(&gpu, &a, 2048, 128, cfg)))
    });
    group.bench_function("standard", |bench| {
        bench.iter(|| {
            black_box(sputnik::spmm_profile::<f32>(
                &gpu,
                &a,
                2048,
                128,
                SpmmConfig {
                    row_swizzle: false,
                    ..cfg
                },
            ))
        })
    });
    group.finish();
}

/// Baseline kernels on an RNN-suite problem (Figure 10).
fn bench_baselines(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let a = gen::uniform(2048, 2048, 0.8, 8);
    let mut group = c.benchmark_group("fig10_baselines");
    group.bench_function("sputnik", |bench| {
        bench.iter(|| {
            black_box(sputnik::spmm_profile::<f32>(
                &gpu,
                &a,
                2048,
                128,
                SpmmConfig::heuristic::<f32>(128),
            ))
        })
    });
    group.bench_function("cusparse", |bench| {
        bench.iter(|| black_box(baselines::cusparse_spmm_profile::<f32>(&gpu, &a, 128)))
    });
    group.bench_function("merge_spmm", |bench| {
        bench.iter(|| black_box(baselines::merge_spmm_profile::<f32>(&gpu, &a, 128).unwrap()))
    });
    group.bench_function("aspt", |bench| {
        bench.iter(|| black_box(baselines::aspt_spmm_profile::<f32>(&gpu, &a, 128).unwrap()))
    });
    group.bench_function("cublas_dense", |bench| {
        bench.iter(|| black_box(baselines::gemm_profile(&gpu, 2048, 2048, 128)))
    });
    group.finish();
}

/// Sparse softmax + attention pipeline (Table III's kernels).
fn bench_attention(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let mask = gen::attention_mask(1024, 64, 0.95, 9);
    let mut group = c.benchmark_group("table03_attention");
    group.bench_function("sparse_softmax", |bench| {
        bench.iter(|| black_box(sputnik::sparse_softmax_profile::<f32>(&gpu, &mask)))
    });
    group.bench_function("sparse_attention_profile", |bench| {
        bench.iter(|| black_box(dnn::attention::sparse_attention_profile(&gpu, &mask, 64)))
    });
    group.bench_function("dense_attention_profile", |bench| {
        bench.iter(|| black_box(dnn::attention::dense_attention_profile(&gpu, 1024, 64)))
    });
    group.finish();
}

/// MobileNetV1 end-to-end cost model (Table IV).
fn bench_mobilenet(c: &mut Criterion) {
    let gpu = Gpu::v100();
    let model = dnn::MobileNetV1::new(1.0);
    let mut group = c.benchmark_group("table04_mobilenet");
    group.sample_size(10);
    group.bench_function("dense", |bench| {
        bench.iter(|| black_box(dnn::mobilenet::benchmark(&gpu, &model, None, false)))
    });
    group.bench_function("sparse90", |bench| {
        bench.iter(|| black_box(dnn::mobilenet::benchmark(&gpu, &model, Some(0.9), false)))
    });
    group.finish();
}

/// Matrix-generation and corpus machinery (Figure 2's inputs).
fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_generators");
    group.bench_function("uniform_1k", |bench| {
        bench.iter(|| black_box(gen::uniform(1024, 1024, 0.8, 10)))
    });
    group.bench_function("attention_mask_2k", |bench| {
        bench.iter(|| black_box(gen::attention_mask(2048, 64, 0.95, 11)))
    });
    group.bench_function("swizzle_8k", |bench| {
        let a = gen::with_cov(8192, 512, 0.8, 0.5, 12);
        bench.iter(|| black_box(sparse::RowSwizzle::by_length_desc(&a)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_spmm_f16,
    bench_sddmm,
    bench_load_balance,
    bench_baselines,
    bench_attention,
    bench_mobilenet,
    bench_generators
);
criterion_main!(benches);
