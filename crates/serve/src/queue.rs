//! Bounded admission queue with typed outcomes.
//!
//! The queue bound is a *hard invariant*, not a tuning knob: no code path
//! can push the depth past `capacity`, so a traffic burst translates into
//! typed [`Admission::Rejected`] outcomes at the door instead of unbounded
//! memory growth. Everything softer — backpressure shedding, deadline
//! expiry — is policy, decided by the server and recorded as
//! [`Admission::Shed`]; the queue itself only enforces the bound.

use crate::traffic::{OpKind, Request};
use std::collections::VecDeque;

/// Typed outcome of offering a request at the front door.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Queued; will be served or (if its deadline expires first) shed.
    Admitted,
    /// Hard bound: the queue was at capacity. Never entered the queue.
    Rejected,
    /// Policy decision: backpressure shed the request at the door because
    /// the projected completion latency exceeded the SLO budget.
    Shed,
}

/// FIFO request queue with a hard capacity bound.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    items: VecDeque<Request>,
    max_depth: usize,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can serve nothing");
        Self {
            capacity,
            items: VecDeque::with_capacity(capacity),
            max_depth: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// High-water mark of the depth over the queue's lifetime — the
    /// invariants tests pin `max_depth() <= capacity()`.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Oldest queued request, if any.
    pub fn front(&self) -> Option<&Request> {
        self.items.front()
    }

    /// Admit if below the bound; [`Admission::Rejected`] otherwise. This is
    /// the only way in, so the bound holds by construction.
    pub fn try_admit(&mut self, request: Request) -> Admission {
        if self.items.len() >= self.capacity {
            return Admission::Rejected;
        }
        self.items.push_back(request);
        self.max_depth = self.max_depth.max(self.items.len());
        Admission::Admitted
    }

    /// Remove up to `max` requests matching the `(op, topology)` batch key,
    /// preserving FIFO order among them; non-matching requests keep their
    /// relative order. This is the continuous-batching coalescing step.
    pub fn take_window(&mut self, op: OpKind, topology: usize, max: usize) -> Vec<Request> {
        let mut taken = Vec::new();
        let mut rest = VecDeque::with_capacity(self.items.len());
        for r in self.items.drain(..) {
            if taken.len() < max && r.op == op && r.topology == topology {
                taken.push(r);
            } else {
                rest.push_back(r);
            }
        }
        self.items = rest;
        taken
    }

    /// Remove every queued request whose deadline has already passed —
    /// serving them now would spend device time producing answers nobody
    /// will accept. The server records each as shed.
    pub fn take_expired(&mut self, now_us: f64) -> Vec<Request> {
        let mut expired = Vec::new();
        let mut rest = VecDeque::with_capacity(self.items.len());
        for r in self.items.drain(..) {
            if r.deadline_us < now_us {
                expired.push(r);
            } else {
                rest.push_back(r);
            }
        }
        self.items = rest;
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, op: OpKind, topology: usize) -> Request {
        Request {
            id,
            arrival_us: id as f64,
            deadline_us: id as f64 + 100.0,
            op,
            topology,
        }
    }

    #[test]
    fn bound_is_hard() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(q.try_admit(req(0, OpKind::Spmm, 0)), Admission::Admitted);
        assert_eq!(q.try_admit(req(1, OpKind::Spmm, 0)), Admission::Admitted);
        assert_eq!(q.try_admit(req(2, OpKind::Spmm, 0)), Admission::Rejected);
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn window_takes_only_matching_key_in_fifo_order() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(req(0, OpKind::Spmm, 0));
        q.try_admit(req(1, OpKind::Sddmm, 0));
        q.try_admit(req(2, OpKind::Spmm, 1));
        q.try_admit(req(3, OpKind::Spmm, 0));
        let w = q.take_window(OpKind::Spmm, 0, 4);
        assert_eq!(w.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().map(|r| r.id), Some(1));
    }

    #[test]
    fn expired_requests_are_pulled_out() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(req(0, OpKind::Spmm, 0)); // deadline 100
        q.try_admit(req(50, OpKind::Spmm, 0)); // deadline 150
        let expired = q.take_expired(120.0);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 0);
        assert_eq!(q.len(), 1);
    }
}
