//! # serve — the serving front door
//!
//! Continuous batching over the sparse kernels, with an explicit robustness
//! envelope: a deterministic seeded traffic simulator ([`traffic`]), a
//! bounded admission queue with typed outcomes ([`queue`]), per-request SLO
//! accounting with exact percentiles ([`slo`]), the transformer attention
//! workload ([`workload`]), and the discrete-event scheduler tying them
//! together ([`server`]).
//!
//! The design contract, end to end:
//!
//! - **Bounded.** Queue depth never exceeds the policy bound; overload
//!   becomes typed `Rejected`/`Shed` outcomes, not memory growth.
//! - **Conserved.** `served + shed + rejected == offered` on every run —
//!   asserted by the server, pinned by tests and the servewall chaos gate.
//! - **Degradable.** A [`gpu_sim::FaultPlan`] active during serving walks
//!   individual requests down the dispatch ladder (retry → heuristic →
//!   fallback → CPU); it never crashes the server or loses a request.
//! - **Reproducible.** Same seed ⇒ bit-identical traffic and, since the
//!   simulator is deterministic, bit-identical latency distributions.

pub mod queue;
pub mod server;
pub mod slo;
pub mod traffic;
pub mod workload;

pub use queue::{Admission, AdmissionQueue};
pub use server::{run, run_fleet, ServePolicy, ServeReport};
pub use slo::LatencyRecorder;
pub use traffic::{generate, ArrivalProcess, OpKind, Request, Rng64, TrafficConfig};
pub use workload::{attention_topologies, Topology};
