//! The serving front door: a discrete-event continuous-batching scheduler
//! on a simulated clock.
//!
//! The loop is the whole design:
//!
//! 1. **Admit.** Arrivals inside the current batch window go through the
//!    bounded [`AdmissionQueue`]. Queue full ⇒ typed `Rejected`. Projected
//!    completion latency over the p99 budget ⇒ typed `Shed` at the door
//!    (backpressure: refuse work you cannot serve in time, rather than
//!    queueing it to miss its deadline).
//! 2. **Expire.** Queued requests whose deadline already passed are shed —
//!    device time is not spent on answers nobody will accept.
//! 3. **Coalesce.** The oldest queued request picks the `(op, topology)`
//!    batch key; up to `max_batch` matching requests form a window. Keying
//!    by topology is what makes windows hit the [`LaunchCache`].
//! 4. **Serve.** The window runs through the fault-tolerant batched
//!    dispatchers ([`sputnik::spmm_batched_dispatch`] /
//!    [`sputnik::sddmm_batched_dispatch`]), so an armed
//!    [`gpu_sim::FaultPlan`] degrades individual requests down the PR-1
//!    ladder instead of crashing the server. Every request gets a
//!    [`sputnik::DispatchReport`] attributing the rung that served it.
//!
//! Conservation is asserted on every run: `served + shed + rejected ==
//! offered`. Nothing falls on the floor, with or without faults — the chaos
//! test suite and the servewall chaos gate both pin this.

use crate::queue::{Admission, AdmissionQueue};
use crate::slo::LatencyRecorder;
use crate::traffic::{OpKind, Request};
use crate::workload::Topology;
use gpu_sim::{trace, Fleet, Gpu, LaunchCache};
use sparse::Matrix;
use sputnik::{sddmm_batched_dispatch, spmm_batched_dispatch, DispatchPolicy, Rung, SputnikError};

/// Serving policy: the queue bound, the batching window, and the robustness
/// envelope (backpressure budget, host-fallback cost model).
#[derive(Clone, Debug)]
pub struct ServePolicy {
    /// Hard bound on queued requests; offers beyond it are `Rejected`.
    pub queue_capacity: usize,
    /// Max requests coalesced into one batched launch window.
    pub max_batch: usize,
    /// How long the scheduler holds a window open to coalesce arrivals, in
    /// simulated microseconds. Every batch pays this once.
    pub batch_window_us: f64,
    /// Backpressure budget: a new arrival is shed at the door when its
    /// projected completion latency (backlog batches × smoothed batch time)
    /// exceeds this.
    pub p99_budget_us: f64,
    /// Host time charged per CPU-served item (the dispatch ladder's bottom
    /// rung reports no device time; the server owns the host-time model).
    pub cpu_service_us: f64,
    /// Degradation-ladder policy applied to every launch.
    pub dispatch: DispatchPolicy,
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 8,
            batch_window_us: 30.0,
            p99_budget_us: 5_000.0,
            cpu_service_us: 400.0,
            dispatch: DispatchPolicy::default(),
        }
    }
}

/// Everything a serving run produced. `latency` holds one sample per served
/// request (completion − arrival, including queue wait and window wait).
#[derive(Debug, Default)]
pub struct ServeReport {
    pub offered: u64,
    pub served: u64,
    pub shed: u64,
    pub rejected: u64,
    /// Served past deadline (subset of `served`).
    pub late: u64,
    pub latency: LatencyRecorder,
    /// Served requests by degradation rung, indexed like
    /// [`sputnik::DegradationStats::RUNG_COUNTERS`].
    pub rung_counts: [u64; 4],
    /// Served requests whose rung was not the requested configuration.
    pub degraded: u64,
    pub max_queue_depth: usize,
    pub batches: u64,
    pub cache_hits: u64,
    /// Faults the GPU's plan delivered during this run.
    pub faults_injected: u64,
    /// Simulated clock at the end of the run.
    pub sim_end_us: f64,
    /// Batches dispatched per device ([`run_fleet`] only; empty for the
    /// single-device [`run`]).
    pub per_device_batches: Vec<u64>,
}

impl ServeReport {
    /// Requests served within their deadline.
    pub fn goodput(&self) -> u64 {
        self.served - self.late
    }

    /// Requests unaccounted for — zero by the conservation invariant; kept
    /// as a queryable quantity so gates can pin it rather than trust us.
    pub fn lost(&self) -> i64 {
        self.offered as i64 - (self.served + self.shed + self.rejected) as i64
    }
}

/// Projected completion latency for a request joining a backlog of `depth`
/// queued requests: how many windows must drain first, times the smoothed
/// per-window time (window wait + service).
fn projected_latency_us(depth: usize, policy: &ServePolicy, ewma_batch_us: f64) -> f64 {
    projected_latency_fleet_us(depth, 1, policy, ewma_batch_us)
}

/// The fleet generalization of [`projected_latency_us`]: `devices` windows
/// drain concurrently, so the backlog clears `devices` times faster.
/// Identical to the single-device projection at `devices == 1`.
fn projected_latency_fleet_us(
    depth: usize,
    devices: usize,
    policy: &ServePolicy,
    ewma_batch_us: f64,
) -> f64 {
    let batches_ahead = (depth.div_ceil(policy.max_batch) + 1).div_ceil(devices);
    batches_ahead as f64 * (policy.batch_window_us + ewma_batch_us)
}

/// Run one coalesced window through the batched dispatcher for `op`,
/// returning `(cpu_served, stream_us, cache_hits, per-request reports)`.
fn serve_window(
    gpu: &Gpu,
    cache: &LaunchCache,
    topo: &Topology,
    op: OpKind,
    batch: usize,
    policy: &ServePolicy,
) -> Result<(u64, f64, u64, Vec<sputnik::DispatchReport>), SputnikError> {
    match op {
        OpKind::Spmm => {
            let bs: Vec<&Matrix<f32>> = (0..batch).map(|_| &topo.dense).collect();
            let d = spmm_batched_dispatch(
                gpu,
                cache,
                &topo.mask,
                &bs,
                topo.spmm_cfg,
                &policy.dispatch,
            )?;
            Ok((d.cpu_served(), d.stream_us, d.cache_hits, d.reports))
        }
        OpKind::Sddmm => {
            let pairs: Vec<(&Matrix<f32>, &Matrix<f32>)> =
                (0..batch).map(|_| (&topo.lhs, &topo.rhs)).collect();
            let d = sddmm_batched_dispatch(
                gpu,
                cache,
                &pairs,
                &topo.mask,
                topo.sddmm_cfg,
                &policy.dispatch,
            )?;
            Ok((d.cpu_served(), d.stream_us, d.cache_hits, d.reports))
        }
    }
}

/// Per-device batch counters for fleet serving: the metrics registry takes
/// `'static` names, so the fleet width observable this way is capped at 8
/// (matching the largest fleet the benches sweep).
const DEV_BATCHES: [&str; 8] = [
    "serve_dev0_batches",
    "serve_dev1_batches",
    "serve_dev2_batches",
    "serve_dev3_batches",
    "serve_dev4_batches",
    "serve_dev5_batches",
    "serve_dev6_batches",
    "serve_dev7_batches",
];

/// Serve a traffic trace (sorted by arrival) against the topologies.
///
/// Errors are deterministic input violations only (shape mismatches);
/// transient device faults always degrade down the ladder and are part of
/// normal operation.
pub fn run(
    gpu: &Gpu,
    topologies: &[Topology],
    policy: &ServePolicy,
    requests: &[Request],
) -> Result<ServeReport, SputnikError> {
    assert!(!topologies.is_empty(), "cannot serve without topologies");
    let cache = LaunchCache::new();
    let mut queue = AdmissionQueue::new(policy.queue_capacity);
    let mut report = ServeReport {
        offered: requests.len() as u64,
        ..ServeReport::default()
    };
    let faults_before = gpu.fault_plan().map_or(0, |p| p.faults_injected());
    let tracing = trace::enabled();

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    // Smoothed per-window service time, seeding the backpressure projection
    // before the first batch completes.
    let mut ewma_batch_us = policy.batch_window_us.max(1.0);

    while next_arrival < requests.len() || !queue.is_empty() {
        if queue.is_empty() {
            // Idle: jump the clock to the next arrival.
            now = now.max(requests[next_arrival].arrival_us);
        }

        // 1. Admit everything arriving inside this batch window.
        let window_close = now + policy.batch_window_us;
        while next_arrival < requests.len() && requests[next_arrival].arrival_us <= window_close {
            let r = requests[next_arrival].clone();
            next_arrival += 1;
            let projected = projected_latency_us(queue.len(), policy, ewma_batch_us);
            let outcome = if projected > policy.p99_budget_us {
                Admission::Shed
            } else {
                queue.try_admit(r.clone())
            };
            match outcome {
                Admission::Admitted => {}
                Admission::Rejected => {
                    report.rejected += 1;
                    if tracing {
                        trace::instant(
                            "serve",
                            "serve",
                            &format!("rejected: request {} (queue at bound)", r.id),
                        );
                    }
                }
                Admission::Shed => {
                    report.shed += 1;
                    if tracing {
                        trace::instant(
                            "serve",
                            "serve",
                            &format!(
                                "shed at door: request {} (projected {projected:.0} us over budget)",
                                r.id
                            ),
                        );
                    }
                }
            }
        }
        now = window_close;

        // 2. Shed queued requests that already missed their deadline.
        for r in queue.take_expired(now) {
            report.shed += 1;
            if tracing {
                trace::instant(
                    "serve",
                    "serve",
                    &format!(
                        "shed expired: request {} (deadline {:.0} us)",
                        r.id, r.deadline_us
                    ),
                );
            }
        }

        // 3. Coalesce a window keyed by the oldest request's (op, topology).
        let Some(front) = queue.front() else {
            continue;
        };
        let (op, topo_idx) = (front.op, front.topology);
        let window = queue.take_window(op, topo_idx, policy.max_batch);
        let topo = &topologies[topo_idx];

        // 4. Serve it through the fault-tolerant batched dispatchers.
        let (cpu_served, stream_us, hits, reports) =
            serve_window(gpu, &cache, topo, op, window.len(), policy)?;
        let service_us = stream_us + cpu_served as f64 * policy.cpu_service_us;
        if tracing {
            trace::replay(
                "serve",
                &format!("window {op}/{} x{}", topo.name, window.len()),
                service_us,
                window.len() as u64,
            );
        }
        now += service_us;
        ewma_batch_us = 0.7 * ewma_batch_us + 0.3 * service_us;
        report.batches += 1;
        report.cache_hits += hits;
        for (r, rep) in window.iter().zip(&reports) {
            report.served += 1;
            report.latency.record(now - r.arrival_us);
            report.rung_counts[rep.served_by as usize] += 1;
            if rep.served_by != Rung::Sputnik {
                report.degraded += 1;
            }
            if now > r.deadline_us {
                report.late += 1;
            }
        }
    }

    report.max_queue_depth = queue.max_depth();
    report.sim_end_us = now;
    report.faults_injected = gpu.fault_plan().map_or(0, |p| p.faults_injected()) - faults_before;

    // The conservation invariant: every offered request got exactly one
    // typed outcome. A violation is a server bug, never load.
    assert_eq!(
        report.served + report.shed + report.rejected,
        report.offered,
        "conservation violation: served {} + shed {} + rejected {} != offered {}",
        report.served,
        report.shed,
        report.rejected,
        report.offered
    );

    // Export the run into the shared metrics registry so serving and
    // non-serving runs land on one dashboard (the registry is monotonic and
    // process-global; concurrent runs sum).
    gpu_sim::metrics::global().incr_many(&[
        ("serve_offered", report.offered),
        ("serve_served", report.served),
        ("serve_shed", report.shed),
        ("serve_rejected", report.rejected),
        ("serve_late", report.late),
        ("serve_batches", report.batches),
        ("serve_degraded", report.degraded),
    ]);

    Ok(report)
}

/// Serve a traffic trace across a [`Fleet`]: batch windows are coalesced by
/// the same admission/backpressure loop as [`run`] and dispatched
/// round-robin across the fleet's devices, each with its own busy clock.
/// The scheduler keeps coalescing while devices drain, so under a saturating
/// load `N` devices cut queue wait roughly `N`-fold — the fleetwall gate
/// pins that p99 at 2 devices beats 1 at fixed load. With a single device
/// this reduces *exactly* to [`run`]'s semantics.
///
/// One [`LaunchCache`] is shared across the fleet: keys carry device
/// identity, so homogeneous devices replay each other's topologies safely
/// while heterogeneous ones never cross-pollinate.
pub fn run_fleet(
    fleet: &Fleet,
    topologies: &[Topology],
    policy: &ServePolicy,
    requests: &[Request],
) -> Result<ServeReport, SputnikError> {
    assert!(!topologies.is_empty(), "cannot serve without topologies");
    let devices = fleet.num_devices();
    let cache = LaunchCache::new();
    let mut queue = AdmissionQueue::new(policy.queue_capacity);
    let mut report = ServeReport {
        offered: requests.len() as u64,
        per_device_batches: vec![0; devices],
        ..ServeReport::default()
    };
    let faults_before: u64 = fleet
        .gpus()
        .iter()
        .map(|g| g.fault_plan().map_or(0, |p| p.faults_injected()))
        .sum();
    let tracing = trace::enabled();

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut ewma_batch_us = policy.batch_window_us.max(1.0);
    let mut busy_until = vec![0.0f64; devices];
    let mut next_dev = 0usize;

    while next_arrival < requests.len() || !queue.is_empty() {
        if queue.is_empty() {
            now = now.max(requests[next_arrival].arrival_us);
        }

        // 1. Admit everything arriving inside this batch window.
        let window_close = now + policy.batch_window_us;
        while next_arrival < requests.len() && requests[next_arrival].arrival_us <= window_close {
            let r = requests[next_arrival].clone();
            next_arrival += 1;
            let projected = projected_latency_fleet_us(queue.len(), devices, policy, ewma_batch_us);
            let outcome = if projected > policy.p99_budget_us {
                Admission::Shed
            } else {
                queue.try_admit(r.clone())
            };
            match outcome {
                Admission::Admitted => {}
                Admission::Rejected => report.rejected += 1,
                Admission::Shed => report.shed += 1,
            }
        }
        now = window_close;

        // 2. Shed queued requests that already missed their deadline.
        report.shed += queue.take_expired(now).len() as u64;

        // 3. Coalesce a window keyed by the oldest request's (op, topology).
        let Some(front) = queue.front() else {
            continue;
        };
        let (op, topo_idx) = (front.op, front.topology);
        let window = queue.take_window(op, topo_idx, policy.max_batch);
        let topo = &topologies[topo_idx];

        // 4. Dispatch round-robin: the window starts when both it has
        // closed and its device is free; the scheduler moves on as soon as
        // the earliest device frees, coalescing the next window meanwhile.
        let dev = next_dev;
        next_dev = (next_dev + 1) % devices;
        let (cpu_served, stream_us, hits, reports) =
            serve_window(fleet.gpu(dev), &cache, topo, op, window.len(), policy)?;
        let service_us = stream_us + cpu_served as f64 * policy.cpu_service_us;
        let start = window_close.max(busy_until[dev]);
        let done = start + service_us;
        busy_until[dev] = done;
        if tracing {
            trace::replay(
                &format!("serve[dev{dev}]"),
                &format!("window {op}/{} x{}", topo.name, window.len()),
                service_us,
                window.len() as u64,
            );
        }
        now = window_close.max(busy_until.iter().copied().fold(f64::INFINITY, f64::min));
        ewma_batch_us = 0.7 * ewma_batch_us + 0.3 * service_us;
        report.batches += 1;
        report.per_device_batches[dev] += 1;
        report.cache_hits += hits;
        if dev < DEV_BATCHES.len() {
            gpu_sim::metrics::global().incr(DEV_BATCHES[dev], 1);
        }
        for (r, rep) in window.iter().zip(&reports) {
            report.served += 1;
            report.latency.record(done - r.arrival_us);
            report.rung_counts[rep.served_by as usize] += 1;
            if rep.served_by != Rung::Sputnik {
                report.degraded += 1;
            }
            if done > r.deadline_us {
                report.late += 1;
            }
        }
    }

    report.max_queue_depth = queue.max_depth();
    report.sim_end_us = busy_until.iter().copied().fold(now, f64::max);
    report.faults_injected = fleet
        .gpus()
        .iter()
        .map(|g| g.fault_plan().map_or(0, |p| p.faults_injected()))
        .sum::<u64>()
        - faults_before;

    assert_eq!(
        report.served + report.shed + report.rejected,
        report.offered,
        "conservation violation: served {} + shed {} + rejected {} != offered {}",
        report.served,
        report.shed,
        report.rejected,
        report.offered
    );

    gpu_sim::metrics::global().incr_many(&[
        ("serve_offered", report.offered),
        ("serve_served", report.served),
        ("serve_shed", report.shed),
        ("serve_rejected", report.rejected),
        ("serve_late", report.late),
        ("serve_batches", report.batches),
        ("serve_degraded", report.degraded),
    ]);

    Ok(report)
}
