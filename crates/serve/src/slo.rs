//! Per-request SLO accounting: exact latency percentiles.
//!
//! Serving runs here are simulated and bounded (thousands of requests, not
//! billions), so the recorder keeps every sample and computes *exact*
//! nearest-rank percentiles instead of an approximating histogram — the
//! servewall CI gate compares p99 against a committed baseline, and an
//! approximation error would eat the gate's headroom for free.

/// Latency sample recorder with exact nearest-rank percentiles.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, latency_us: f64) {
        self.samples.push(latency_us);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Exact nearest-rank percentile (`p` in `(0, 100]`); `None` when no
    /// samples were recorded.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    pub fn p50(&self) -> f64 {
        self.percentile(50.0).unwrap_or(0.0)
    }

    pub fn p95(&self) -> f64 {
        self.percentile(95.0).unwrap_or(0.0)
    }

    pub fn p99(&self) -> f64 {
        self.percentile(99.0).unwrap_or(0.0)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            r.record(v);
        }
        assert_eq!(r.percentile(50.0), Some(3.0));
        assert_eq!(r.percentile(100.0), Some(5.0));
        assert_eq!(r.percentile(1.0), Some(1.0));
        assert_eq!(r.p99(), 5.0);
    }

    #[test]
    fn empty_recorder_is_zero_not_panic() {
        let r = LatencyRecorder::new();
        assert_eq!(r.percentile(99.0), None);
        assert_eq!(r.p99(), 0.0);
        assert_eq!(r.mean(), 0.0);
    }
}
