//! The serving workload: sparse-attention topologies from the paper's
//! Transformer (§VII).
//!
//! A topology bundles a sparse attention mask with the configs and dense
//! operands its requests need. All requests against one topology share the
//! mask's fingerprint, so a serving window batched by topology replays the
//! first launch's simulation from the [`gpu_sim::LaunchCache`] — the whole
//! point of keying the continuous-batching scheduler on topology.
//!
//! Operand *values* are shared per topology. That is deliberate: the
//! simulator's cost model depends on topology and config, not values, so
//! distinct per-request operands would only add allocation traffic without
//! changing any measured quantity; the functional outputs still exercise
//! the dispatch ladder's finite/checksum guards.

use sparse::{gen, CsrMatrix, Matrix};
use sputnik::{SddmmConfig, SpmmConfig};

/// One attention pattern the front door can serve requests against.
pub struct Topology {
    pub name: &'static str,
    /// seq × seq sparse attention mask.
    pub mask: CsrMatrix<f32>,
    pub spmm_cfg: SpmmConfig,
    pub sddmm_cfg: SddmmConfig,
    /// Dense operand for SpMM requests (seq × head_dim).
    pub dense: Matrix<f32>,
    /// Query/key factors for SDDMM requests (each seq × head_dim).
    pub lhs: Matrix<f32>,
    pub rhs: Matrix<f32>,
}

/// Build the transformer serving topologies: banded attention masks with
/// random off-diagonal entries, per [`gen::attention_mask`]. Two patterns —
/// a narrow band with sparse long-range attention and a wider band — keep
/// the batch scheduler honest about keying windows by topology.
pub fn attention_topologies(seq: usize, head_dim: usize, seed: u64) -> Vec<Topology> {
    let specs: &[(&'static str, usize, f64)] = &[("band8", 8, 0.995), ("band32", 32, 0.98)];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(name, band, sparsity))| {
            let i = i as u64;
            let mask = gen::attention_mask(seq, band, sparsity, seed.wrapping_add(i));
            Topology {
                name,
                mask,
                spmm_cfg: SpmmConfig::heuristic::<f32>(head_dim),
                sddmm_cfg: SddmmConfig::heuristic::<f32>(head_dim),
                dense: Matrix::<f32>::random(seq, head_dim, seed ^ (0x51 + i)),
                lhs: Matrix::<f32>::random(seq, head_dim, seed ^ (0x52 + i)),
                rhs: Matrix::<f32>::random(seq, head_dim, seed ^ (0x53 + i)),
            }
        })
        .collect()
}
