//! Deterministic, seeded request-arrival simulation.
//!
//! Serving experiments are only comparable if the traffic is: every run at a
//! given seed must offer the *same* requests at the *same* simulated
//! instants, bit for bit, on every platform. So this module uses its own
//! splitmix64 generator (the same construction the fault plan uses for its
//! per-launch hash) rather than any external RNG, and derives arrivals from
//! pure `f64` arithmetic on its output — both are IEEE-deterministic.
//!
//! Two arrival processes cover the interesting load shapes:
//!
//! - [`ArrivalProcess::Poisson`] — memoryless arrivals at a fixed rate, the
//!   steady-state model behind every queueing result worth quoting.
//! - [`ArrivalProcess::Bursty`] — an on-off (interrupted Poisson) process:
//!   arrivals accrue at the on-rate during `on_us` windows separated by
//!   silent `off_us` gaps. This is the trace that actually stresses the
//!   admission queue: the mean rate can be modest while instantaneous rate
//!   overwhelms a batch window.

/// Tiny splitmix64 PRNG — seedable, allocation-free, bit-stable across
/// platforms. Good enough statistical quality for traffic generation and
/// operand fills; *not* a cryptographic generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential variate with the given rate (events per microsecond) —
    /// the inter-arrival distribution of a Poisson process.
    pub fn exp_us(&mut self, rate_per_us: f64) -> f64 {
        let u = self.next_f64();
        -(1.0 - u).ln() / rate_per_us
    }
}

/// What a request asks the front door to compute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Sparse-matrix × dense-matrix (attention-weighted value gather).
    Spmm,
    /// Sampled dense-dense (the masked QK^T of sparse attention).
    Sddmm,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Spmm => write!(f, "spmm"),
            OpKind::Sddmm => write!(f, "sddmm"),
        }
    }
}

/// One request in a traffic trace. Deadlines are absolute simulated time;
/// a request still queued past its deadline is shed, one completed past it
/// counts as served-but-late.
#[derive(Clone, Debug)]
pub struct Request {
    pub id: u64,
    pub arrival_us: f64,
    pub deadline_us: f64,
    pub op: OpKind,
    /// Index into the serving workload's topology table. Requests sharing a
    /// topology coalesce into one batched window and hit the launch cache.
    pub topology: usize,
}

/// The arrival process shaping a trace.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_s` requests per second.
    Poisson { rate_per_s: f64 },
    /// On-off bursts: Poisson at `rate_per_s` during `on_us` windows, then
    /// silent for `off_us`. Mean rate = `rate_per_s * on / (on + off)`.
    Bursty {
        rate_per_s: f64,
        on_us: f64,
        off_us: f64,
    },
}

/// Everything that determines a traffic trace. Same config ⇒ bit-identical
/// trace (asserted by the invariants test suite).
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    pub seed: u64,
    pub process: ArrivalProcess,
    /// Total requests to offer.
    pub requests: usize,
    /// Relative deadline stamped on every request.
    pub deadline_us: f64,
    /// Fraction of requests that are SDDMM; the rest are SpMM.
    pub sddmm_fraction: f64,
    /// Number of distinct topologies to spread requests over (uniform).
    pub topologies: usize,
}

/// Generate a trace. Arrivals are monotone non-decreasing; bursty traces
/// advance a phase clock so arrivals only accrue during on-windows.
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    let mut rng = Rng64::new(cfg.seed);
    let (rate_per_us, on_us, off_us) = match cfg.process {
        ArrivalProcess::Poisson { rate_per_s } => (rate_per_s / 1e6, f64::INFINITY, 0.0),
        ArrivalProcess::Bursty {
            rate_per_s,
            on_us,
            off_us,
        } => (rate_per_s / 1e6, on_us, off_us),
    };
    assert!(rate_per_us > 0.0, "arrival rate must be positive");
    let mut out = Vec::with_capacity(cfg.requests);
    let mut now = 0.0f64;
    // Simulated time already spent in the current on-window.
    let mut phase_elapsed = 0.0f64;
    for id in 0..cfg.requests as u64 {
        // Sample the gap in *on-time*, then map to wall time by inserting
        // off-gaps every time the gap crosses an on-window boundary.
        let mut gap = rng.exp_us(rate_per_us);
        while phase_elapsed + gap >= on_us {
            let burn = on_us - phase_elapsed;
            gap -= burn;
            now += burn + off_us;
            phase_elapsed = 0.0;
        }
        phase_elapsed += gap;
        now += gap;
        let op = if rng.next_f64() < cfg.sddmm_fraction {
            OpKind::Sddmm
        } else {
            OpKind::Spmm
        };
        let topology = (rng.next_u64() % cfg.topologies.max(1) as u64) as usize;
        out.push(Request {
            id,
            arrival_us: now,
            deadline_us: now + cfg.deadline_us,
            op,
            topology,
        });
    }
    out
}
