//! Property-style invariants for the serving front door.
//!
//! Three families, each checked across a seeded loop rather than a single
//! hand-picked case:
//!
//! 1. The admission bound is hard — no offered load pushes queue depth past
//!    capacity.
//! 2. Conservation — `served + shed + rejected == offered` for every seed,
//!    policy, and arrival process.
//! 3. Reproducibility — seeded Poisson and bursty traces are bit-identical
//!    across generations, and so are whole serving runs.

use gpu_sim::Gpu;
use serve::{
    attention_topologies, generate, run, Admission, AdmissionQueue, ArrivalProcess, OpKind,
    Request, ServePolicy, TrafficConfig,
};

fn small_policy() -> ServePolicy {
    ServePolicy {
        queue_capacity: 16,
        max_batch: 4,
        batch_window_us: 25.0,
        p99_budget_us: 4_000.0,
        ..ServePolicy::default()
    }
}

fn traffic(seed: u64, process: ArrivalProcess, n: usize) -> Vec<Request> {
    generate(&TrafficConfig {
        seed,
        process,
        requests: n,
        deadline_us: 3_000.0,
        sddmm_fraction: 0.3,
        topologies: 2,
    })
}

/// Queue-level property: random offer/drain sequences never exceed the
/// bound, and the high-water mark records it faithfully.
#[test]
fn admission_bound_is_never_exceeded() {
    for seed in 0..20u64 {
        let cap = 1 + (seed as usize % 7);
        let mut q = AdmissionQueue::new(cap);
        let mut rng = serve::Rng64::new(seed ^ 0xA11CE);
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        for id in 0..200u64 {
            let r = Request {
                id,
                arrival_us: id as f64,
                deadline_us: id as f64 + 50.0,
                op: if id % 3 == 0 {
                    OpKind::Sddmm
                } else {
                    OpKind::Spmm
                },
                topology: (id % 2) as usize,
            };
            match q.try_admit(r) {
                Admission::Admitted => admitted += 1,
                Admission::Rejected => rejected += 1,
                Admission::Shed => unreachable!("the queue itself never sheds"),
            }
            assert!(q.len() <= cap, "depth {} exceeded bound {cap}", q.len());
            // Randomly drain a window or expire, like the scheduler would.
            if rng.next_f64() < 0.4 {
                let op = if rng.next_f64() < 0.5 {
                    OpKind::Spmm
                } else {
                    OpKind::Sddmm
                };
                q.take_window(op, (rng.next_u64() % 2) as usize, 3);
            }
            if rng.next_f64() < 0.1 {
                q.take_expired(id as f64);
            }
            assert!(q.max_depth() <= cap);
        }
        assert_eq!(admitted + rejected, 200);
    }
}

/// End-to-end property: every offered request gets exactly one typed
/// outcome, under light and crushing load, for both arrival processes.
#[test]
fn conservation_holds_across_seeds_and_processes() {
    let gpu = Gpu::v100();
    let topologies = attention_topologies(128, 32, 7);
    let policy = small_policy();
    for seed in 0..4u64 {
        for process in [
            ArrivalProcess::Poisson {
                rate_per_s: 5_000.0,
            },
            ArrivalProcess::Poisson {
                rate_per_s: 500_000.0,
            },
            ArrivalProcess::Bursty {
                rate_per_s: 800_000.0,
                on_us: 200.0,
                off_us: 2_000.0,
            },
        ] {
            let reqs = traffic(seed, process, 120);
            let report = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
            assert_eq!(
                report.served + report.shed + report.rejected,
                report.offered,
                "conservation broke for seed {seed} process {process:?}"
            );
            assert_eq!(report.lost(), 0);
            assert!(
                report.max_queue_depth <= policy.queue_capacity,
                "queue bound violated: {} > {}",
                report.max_queue_depth,
                policy.queue_capacity
            );
            assert_eq!(report.latency.count() as u64, report.served);
            assert_eq!(report.rung_counts.iter().sum::<u64>(), report.served);
        }
    }
}

/// Overload must produce typed outcomes, not silence: a bursty trace at
/// ~40x the servable rate has to shed or reject something, and still serve
/// something.
#[test]
fn overload_sheds_or_rejects_but_still_serves() {
    let gpu = Gpu::v100();
    let topologies = attention_topologies(128, 32, 7);
    let policy = small_policy();
    let reqs = traffic(
        42,
        ArrivalProcess::Bursty {
            rate_per_s: 2_000_000.0,
            on_us: 500.0,
            off_us: 100.0,
        },
        300,
    );
    let report = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
    assert!(report.served > 0, "overload starved everything");
    assert!(
        report.shed + report.rejected > 0,
        "40x overload produced no typed overflow outcomes"
    );
    assert_eq!(report.lost(), 0);
}

/// Backpressure path: with a queue too large for the bound to mask policy
/// and a tight p99 budget, overload must surface as door-shedding — typed
/// `Shed`, zero `Rejected`.
#[test]
fn tight_budget_sheds_at_the_door_before_the_bound() {
    let gpu = Gpu::v100();
    let topologies = attention_topologies(128, 32, 7);
    let policy = ServePolicy {
        queue_capacity: 512,
        max_batch: 4,
        batch_window_us: 25.0,
        p99_budget_us: 250.0,
        ..ServePolicy::default()
    };
    let reqs = traffic(
        9,
        ArrivalProcess::Poisson {
            rate_per_s: 1_000_000.0,
        },
        300,
    );
    let report = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
    assert!(report.shed > 0, "tight budget never shed");
    assert_eq!(report.rejected, 0, "the bound fired before backpressure");
    assert_eq!(report.lost(), 0);
}

/// Deadline path: requests whose deadline expires while queued are shed,
/// not served late and not lost.
#[test]
fn expired_requests_are_shed_not_served() {
    let gpu = Gpu::v100();
    let topologies = attention_topologies(128, 32, 7);
    let policy = ServePolicy {
        queue_capacity: 64,
        max_batch: 4,
        batch_window_us: 25.0,
        p99_budget_us: 1e9, // backpressure off: only expiry can shed
        ..ServePolicy::default()
    };
    let reqs = generate(&TrafficConfig {
        seed: 13,
        process: ArrivalProcess::Bursty {
            rate_per_s: 2_000_000.0,
            on_us: 400.0,
            off_us: 100.0,
        },
        requests: 200,
        deadline_us: 120.0,
        sddmm_fraction: 0.3,
        topologies: 2,
    });
    let report = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
    assert!(
        report.shed > 0,
        "no queued request expired under a 120us deadline"
    );
    assert_eq!(report.lost(), 0);
    assert_eq!(report.latency.count() as u64, report.served);
}

/// Seeded traces are bit-reproducible: same config ⇒ identical ids, ops,
/// topologies, and bit-identical arrival instants.
#[test]
fn traces_are_bit_reproducible() {
    for seed in [1u64, 99, 0xDEAD] {
        for process in [
            ArrivalProcess::Poisson {
                rate_per_s: 20_000.0,
            },
            ArrivalProcess::Bursty {
                rate_per_s: 300_000.0,
                on_us: 150.0,
                off_us: 900.0,
            },
        ] {
            let a = traffic(seed, process, 250);
            let b = traffic(seed, process, 250);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.op, y.op);
                assert_eq!(x.topology, y.topology);
                assert_eq!(
                    x.arrival_us.to_bits(),
                    y.arrival_us.to_bits(),
                    "arrival drift at id {} (seed {seed})",
                    x.id
                );
                assert_eq!(x.deadline_us.to_bits(), y.deadline_us.to_bits());
            }
        }
    }
    // Different seeds must actually differ (the generator is not stuck).
    let a = traffic(
        1,
        ArrivalProcess::Poisson {
            rate_per_s: 20_000.0,
        },
        50,
    );
    let b = traffic(
        2,
        ArrivalProcess::Poisson {
            rate_per_s: 20_000.0,
        },
        50,
    );
    assert!(a.iter().zip(&b).any(|(x, y)| x.arrival_us != y.arrival_us));
}

/// Whole serving runs are deterministic: identical seed and policy produce
/// bit-identical latency distributions and identical outcome counts.
#[test]
fn serving_runs_are_deterministic() {
    let gpu = Gpu::v100();
    let topologies = attention_topologies(128, 32, 7);
    let policy = small_policy();
    let reqs = traffic(
        7,
        ArrivalProcess::Poisson {
            rate_per_s: 100_000.0,
        },
        150,
    );
    let r1 = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
    let r2 = run(&gpu, &topologies, &policy, &reqs).expect("serving must not error");
    assert_eq!(r1.served, r2.served);
    assert_eq!(r1.shed, r2.shed);
    assert_eq!(r1.rejected, r2.rejected);
    assert_eq!(r1.batches, r2.batches);
    assert_eq!(r1.latency.p99().to_bits(), r2.latency.p99().to_bits());
    assert_eq!(r1.sim_end_us.to_bits(), r2.sim_end_us.to_bits());
}

/// Bursty traces respect their off-windows: no arrival may land inside a
/// silent gap.
#[test]
fn bursty_arrivals_avoid_off_windows() {
    let on_us = 100.0;
    let off_us = 1_000.0;
    let reqs = traffic(
        5,
        ArrivalProcess::Bursty {
            rate_per_s: 400_000.0,
            on_us,
            off_us,
        },
        300,
    );
    let period = on_us + off_us;
    for r in &reqs {
        let phase = r.arrival_us % period;
        assert!(
            phase <= on_us + 1e-6,
            "request {} arrived {:.2} us into a {:.0} us off-window",
            r.id,
            phase - on_us,
            off_us
        );
    }
    // And they must be monotone.
    for w in reqs.windows(2) {
        assert!(w[0].arrival_us <= w[1].arrival_us);
    }
}
