//! Fleet-serving properties: the round-robin scheduler reduces exactly to
//! the single-device server at one device, spreads windows across devices,
//! and converts added devices into tail-latency relief at fixed load.

use gpu_sim::{Fleet, Gpu};
use serve::{
    attention_topologies, generate, run, run_fleet, ArrivalProcess, ServePolicy, TrafficConfig,
};

fn saturating_policy() -> ServePolicy {
    ServePolicy {
        queue_capacity: 512,
        max_batch: 8,
        batch_window_us: 25.0,
        // Effectively no backpressure: the test wants raw queueing delay,
        // not shed-vs-served divergence between fleet widths.
        p99_budget_us: 1e9,
        ..ServePolicy::default()
    }
}

fn burst_traffic(n: usize) -> Vec<serve::Request> {
    generate(&TrafficConfig {
        seed: 0xF1EE7,
        // Arrivals land almost simultaneously: a pure drain race.
        process: ArrivalProcess::Poisson { rate_per_s: 1e9 },
        requests: n,
        deadline_us: 1e9,
        sddmm_fraction: 0.3,
        topologies: 2,
    })
}

#[test]
fn single_device_fleet_reduces_to_run() {
    let topologies = attention_topologies(128, 32, 9);
    let policy = saturating_policy();
    let requests = burst_traffic(120);

    let single = run(&Gpu::v100(), &topologies, &policy, &requests).unwrap();
    let fleet = Fleet::v100(1);
    let fleeted = run_fleet(&fleet, &topologies, &policy, &requests).unwrap();

    assert_eq!(single.served, fleeted.served);
    assert_eq!(single.shed, fleeted.shed);
    assert_eq!(single.rejected, fleeted.rejected);
    assert_eq!(single.batches, fleeted.batches);
    assert_eq!(single.late, fleeted.late);
    assert_eq!(single.latency.p99(), fleeted.latency.p99());
    assert_eq!(single.sim_end_us, fleeted.sim_end_us);
    assert_eq!(fleeted.per_device_batches, vec![fleeted.batches]);
}

#[test]
fn two_devices_beat_one_on_p99_at_fixed_load() {
    let topologies = attention_topologies(128, 32, 9);
    let policy = saturating_policy();
    let requests = burst_traffic(240);

    let one = run_fleet(&Fleet::v100(1), &topologies, &policy, &requests).unwrap();
    let two = run_fleet(&Fleet::v100(2), &topologies, &policy, &requests).unwrap();

    assert_eq!(one.served, 240);
    assert_eq!(two.served, 240);
    assert!(
        two.latency.p99() < one.latency.p99(),
        "2-device p99 {:.0} us must beat 1-device p99 {:.0} us",
        two.latency.p99(),
        one.latency.p99()
    );
    assert!(
        two.sim_end_us < one.sim_end_us,
        "2 devices must drain the backlog sooner"
    );
}

#[test]
fn round_robin_spreads_windows_across_devices() {
    let topologies = attention_topologies(128, 32, 9);
    let policy = saturating_policy();
    let requests = burst_traffic(240);

    let report = run_fleet(&Fleet::v100(4), &topologies, &policy, &requests).unwrap();
    assert_eq!(report.per_device_batches.len(), 4);
    assert_eq!(
        report.per_device_batches.iter().sum::<u64>(),
        report.batches
    );
    for (dev, &batches) in report.per_device_batches.iter().enumerate() {
        assert!(batches > 0, "device {dev} never served a window");
    }
}
