//! Seeded-fault regression: serving under an armed [`FaultPlan`] must
//! degrade, never crash, never lose a request, and never violate the queue
//! bound. Every faulted request has to land on a ladder rung.

use gpu_sim::{FaultKind, FaultPlan, Gpu};
use serve::{attention_topologies, generate, run, ArrivalProcess, ServePolicy, TrafficConfig};

fn transformer_traffic(seed: u64, rate_per_s: f64, n: usize) -> Vec<serve::Request> {
    generate(&TrafficConfig {
        seed,
        process: ArrivalProcess::Poisson { rate_per_s },
        requests: n,
        deadline_us: 5_000.0,
        sddmm_fraction: 0.4,
        topologies: 2,
    })
}

/// The ISSUE's chaos contract: a transformer serving run with
/// `FaultPlan::with_rate` completes with every request accounted for, every
/// served request attributed to a rung, and no panics.
#[test]
fn faulted_serving_run_degrades_without_losing_requests() {
    let topologies = attention_topologies(128, 32, 11);
    let policy = ServePolicy {
        queue_capacity: 32,
        max_batch: 4,
        ..ServePolicy::default()
    };
    for (seed, rate) in [(3u64, 0.05), (17, 0.10), (29, 0.25)] {
        let gpu =
            Gpu::v100().with_fault_plan(FaultPlan::with_rate(seed, rate, FaultKind::EccError));
        let reqs = transformer_traffic(seed, 60_000.0, 200);
        let report = run(&gpu, &topologies, &policy, &reqs)
            .unwrap_or_else(|e| panic!("chaos run (seed {seed}, rate {rate}) errored: {e}"));

        // Nothing lost, bound held.
        assert_eq!(report.lost(), 0, "requests fell on the floor");
        assert_eq!(
            report.served + report.shed + report.rejected,
            report.offered
        );
        assert!(report.max_queue_depth <= policy.queue_capacity);

        // Faults actually fired, and every served request is attributed to
        // exactly one rung of the ladder.
        assert!(
            report.faults_injected > 0,
            "fault plan at rate {rate} injected nothing — test is vacuous"
        );
        assert_eq!(
            report.rung_counts.iter().sum::<u64>(),
            report.served,
            "rung attribution does not cover every served request"
        );
        // With sustained faults some requests must have degraded off the
        // primary rung (retries can absorb a few, not a 5-25% rate over
        // hundreds of launches).
        assert!(
            report.degraded > 0,
            "no request degraded despite {} injected faults",
            report.faults_injected
        );
    }
}

/// Even `fail_all` — every Sputnik launch faulting, forever — must drain
/// the trace: everything lands on fallback/CPU rungs, nothing is lost.
#[test]
fn total_kernel_failure_still_serves_every_request() {
    let topologies = attention_topologies(96, 32, 13);
    let policy = ServePolicy {
        queue_capacity: 16,
        max_batch: 4,
        p99_budget_us: 1e9,   // disable backpressure: force everything through
        cpu_service_us: 10.0, // keep the simulated run short
        ..ServePolicy::default()
    };
    let gpu =
        Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError).matching("sputnik"));
    let reqs = transformer_traffic(31, 8_000.0, 60);
    let report = run(&gpu, &topologies, &policy, &reqs)
        .unwrap_or_else(|e| panic!("total-failure run errored instead of degrading: {e}"));
    assert_eq!(report.lost(), 0);
    assert_eq!(report.rung_counts.iter().sum::<u64>(), report.served);
    // The primary rung cannot have served anyone; the degradation counter
    // must agree.
    assert_eq!(
        report.rung_counts[0], 0,
        "sputnik rung served despite fail_all"
    );
    assert_eq!(report.degraded, report.served);
    assert!(report.served > 0);
}

/// Faults must not break determinism: two identical chaos runs produce
/// identical outcome counts and bit-identical latency tails (the fault
/// schedule is itself seeded).
#[test]
fn chaos_runs_are_reproducible() {
    let topologies = attention_topologies(128, 32, 11);
    let policy = ServePolicy::default();
    let reqs = transformer_traffic(23, 40_000.0, 120);
    let mk_gpu = || Gpu::v100().with_fault_plan(FaultPlan::with_rate(23, 0.1, FaultKind::EccError));
    let r1 = run(&mk_gpu(), &topologies, &policy, &reqs).unwrap_or_else(|e| panic!("{e}"));
    let r2 = run(&mk_gpu(), &topologies, &policy, &reqs).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(r1.served, r2.served);
    assert_eq!(r1.shed, r2.shed);
    assert_eq!(r1.rejected, r2.rejected);
    assert_eq!(r1.rung_counts, r2.rung_counts);
    assert_eq!(r1.faults_injected, r2.faults_injected);
    assert_eq!(r1.latency.p99().to_bits(), r2.latency.p99().to_bits());
}
