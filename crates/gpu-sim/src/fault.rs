//! Deterministic fault injection for kernel launches.
//!
//! Production sparse kernels must survive transient device faults — ECC
//! errors, launch timeouts, and silent data corruption. This module provides
//! a seedable [`FaultPlan`] that decides, per launch, whether the launch
//! fails and how. The launcher consults the plan inside
//! [`Gpu::try_launch`](crate::Gpu::try_launch): *loud* faults
//! ([`FaultKind::EccError`], [`FaultKind::LaunchTimeout`]) abort the launch
//! with a [`DeviceFault`], while the *silent* [`FaultKind::PoisonOutput`]
//! lets the launch complete but corrupts the functional output with
//! non-finite values via [`Kernel::poison_output`](crate::Kernel), so
//! detection guards downstream can be exercised.
//!
//! Decisions are a pure function of `(seed, launch index)` so any failing
//! schedule can be replayed exactly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// An uncorrectable memory error: the launch aborts with an error.
    EccError,
    /// The launch exceeds its time budget and is killed.
    LaunchTimeout,
    /// The launch "succeeds" but its output is corrupted with NaN/Inf —
    /// only detectable by inspecting the results.
    PoisonOutput,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::EccError => write!(f, "uncorrectable ECC error"),
            FaultKind::LaunchTimeout => write!(f, "launch timeout"),
            FaultKind::PoisonOutput => write!(f, "poisoned output"),
        }
    }
}

/// A fault that fired on a specific launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceFault {
    pub kind: FaultKind,
    /// Name of the kernel whose launch faulted.
    pub kernel: String,
    /// Zero-based index of the launch within the plan's lifetime.
    pub launch_index: u64,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on launch #{} of '{}'",
            self.kind, self.launch_index, self.kernel
        )
    }
}

impl std::error::Error for DeviceFault {}

/// When a plan injects faults.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Never fault (the empty plan).
    Never,
    /// Fault every matching launch.
    Always,
    /// Fault the first `n` matching launches, then behave normally.
    FirstN(u64),
    /// Fault each matching launch independently with this probability.
    Rate(f64),
}

/// A deterministic, seedable schedule of injected launch faults.
///
/// The plan counts every launch it observes; whether a given launch faults
/// is a pure function of the seed and that counter, optionally restricted to
/// kernels whose name contains a substring (so e.g. only `"sputnik"` kernels
/// fail while fallback kernels survive).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    mode: Mode,
    kind: FaultKind,
    /// Only launches of kernels whose name contains this substring fault.
    kernel_filter: Option<String>,
    /// Launches observed so far (matching or not: the index identifies the
    /// launch within the run, not within the filtered subset).
    launches: AtomicU64,
    /// Faults injected so far.
    injected: AtomicU64,
}

impl FaultPlan {
    fn with_mode(seed: u64, mode: Mode, kind: FaultKind) -> Self {
        Self {
            seed,
            mode,
            kind,
            kernel_filter: None,
            launches: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The empty plan: observes launches but never faults.
    pub fn none() -> Self {
        Self::with_mode(0, Mode::Never, FaultKind::EccError)
    }

    /// Fault every matching launch with `kind`.
    pub fn fail_all(kind: FaultKind) -> Self {
        Self::with_mode(0, Mode::Always, kind)
    }

    /// Fault the first `n` matching launches, then recover.
    pub fn fail_first(n: u64, kind: FaultKind) -> Self {
        Self::with_mode(0, Mode::FirstN(n), kind)
    }

    /// Fault each matching launch independently with probability `rate`,
    /// deterministically derived from `seed` and the launch index.
    pub fn with_rate(seed: u64, rate: f64, kind: FaultKind) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        Self::with_mode(seed, Mode::Rate(rate), kind)
    }

    /// Restrict the plan to kernels whose name contains `pattern`.
    pub fn matching(mut self, pattern: impl Into<String>) -> Self {
        self.kernel_filter = Some(pattern.into());
        self
    }

    /// True when this plan can never fault a launch.
    pub fn is_empty(&self) -> bool {
        matches!(self.mode, Mode::Never)
    }

    /// Launches observed so far.
    pub fn launches_observed(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Deterministic per-launch hash in [0, 1).
    fn launch_hash(&self, index: u64) -> f64 {
        let mut z = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Record one launch of `kernel` and decide whether it faults.
    /// Returns the fault to inject, if any.
    pub fn decide(&self, kernel: &str) -> Option<DeviceFault> {
        let index = self.launches.fetch_add(1, Ordering::Relaxed);
        if let Some(pat) = &self.kernel_filter {
            if !kernel.contains(pat.as_str()) {
                return None;
            }
        }
        let fire = match self.mode {
            Mode::Never => false,
            Mode::Always => true,
            Mode::FirstN(n) => self.injected.load(Ordering::Relaxed) < n,
            Mode::Rate(rate) => self.launch_hash(index) < rate,
        };
        if !fire {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        let fault = DeviceFault {
            kind: self.kind,
            kernel: kernel.to_string(),
            launch_index: index,
        };
        crate::metrics::global().incr("faults_injected", 1);
        if crate::trace::enabled() {
            crate::trace::instant("fault", "faults", &fault.to_string());
        }
        Some(fault)
    }

    /// A deterministic seed for poisoning the faulted launch's output.
    pub fn poison_seed(&self, fault: &DeviceFault) -> u64 {
        self.seed ^ fault.launch_index.wrapping_mul(0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(plan.decide("sputnik_spmm_f32").is_none());
        }
        assert_eq!(plan.launches_observed(), 100);
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    fn fail_all_fires_every_launch() {
        let plan = FaultPlan::fail_all(FaultKind::EccError);
        for i in 0..10 {
            let f = plan.decide("k").expect("must fire");
            assert_eq!(f.launch_index, i);
            assert_eq!(f.kind, FaultKind::EccError);
        }
    }

    #[test]
    fn fail_first_recovers() {
        let plan = FaultPlan::fail_first(3, FaultKind::LaunchTimeout);
        let fired: Vec<bool> = (0..10).map(|_| plan.decide("k").is_some()).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 3);
        assert!(fired[..3].iter().all(|&b| b), "first three launches fault");
        assert!(fired[3..].iter().all(|&b| !b), "later launches recover");
    }

    #[test]
    fn filter_spares_other_kernels() {
        let plan = FaultPlan::fail_all(FaultKind::EccError).matching("sputnik");
        assert!(plan.decide("sputnik_spmm_f32_y4").is_some());
        assert!(plan.decide("fallback_spmm_f32").is_none());
        assert!(plan.decide("sputnik_sddmm_f16_x32").is_some());
    }

    #[test]
    fn rate_is_deterministic_and_roughly_calibrated() {
        let a = FaultPlan::with_rate(11, 0.3, FaultKind::PoisonOutput);
        let b = FaultPlan::with_rate(11, 0.3, FaultKind::PoisonOutput);
        let fires_a: Vec<bool> = (0..2000).map(|_| a.decide("k").is_some()).collect();
        let fires_b: Vec<bool> = (0..2000).map(|_| b.decide("k").is_some()).collect();
        assert_eq!(fires_a, fires_b, "same seed, same schedule");
        let rate = fires_a.iter().filter(|&&x| x).count() as f64 / 2000.0;
        assert!(
            (0.25..0.35).contains(&rate),
            "empirical rate {rate} far from 0.3"
        );
    }
}
