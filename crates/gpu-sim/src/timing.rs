//! Per-block and kernel-level timing model.
//!
//! Each thread block's cost trace is converted to a cycle count by treating
//! the SM as a set of pipelines (instruction issue, FP32 FMA units,
//! load/store units, shared memory, and the SM's share of DRAM bandwidth)
//! that overlap perfectly when enough warps are resident. The block's time is
//! the max over pipelines, inflated by a latency-hiding penalty when
//! occupancy is too low to cover DRAM latency. Kernel time is then
//! `max(schedule makespan, device-wide rooflines) + launch overhead`.

use crate::cost::{BlockCost, BlockCostLite};
use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Decomposition of one block's pipeline cycles — retained for reports and
/// ablation analysis.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BlockTiming {
    pub issue_cycles: f64,
    pub fma_cycles: f64,
    pub lsu_cycles: f64,
    pub smem_cycles: f64,
    pub dram_cycles: f64,
    /// Latency-hiding multiplier applied (>= 1).
    pub latency_penalty: f64,
    /// Final modeled cycles for the block, including fixed overhead.
    pub total_cycles: f64,
}

/// Latency-hiding penalty: with `eff_warps` resident warps per SM, the SM can
/// overlap that many outstanding memory operations; below the device's
/// `latency_hiding_warps` threshold, exposed DRAM latency inflates runtime.
///
/// `penalty = 1 + (need - w) / need * (latency_fraction)` smoothly approaches
/// 1 as `w -> need` and `1 + latency_fraction` as `w -> 0`.
pub fn latency_penalty(dev: &DeviceConfig, eff_warps: f64) -> f64 {
    let need = dev.latency_hiding_warps;
    if eff_warps >= need {
        return 1.0;
    }
    let shortfall = (need - eff_warps.max(0.25)) / need;
    // With no warps to switch to, memory time is dominated by serialized
    // latency; a factor of ~4 matches the gap between latency-bound and
    // bandwidth-bound streaming on Volta-class parts.
    1.0 + 3.0 * shortfall
}

/// Convert one block's cost trace into cycles.
///
/// `dram_bytes` is this block's share of post-cache DRAM traffic;
/// `dram_bytes_per_cycle_per_sm` is the device bandwidth divided by the
/// number of SMs expected to be active concurrently.
pub fn block_cycles(
    dev: &DeviceConfig,
    cost: &BlockCost,
    warps_per_block: u32,
    eff_warps: f64,
    dram_bytes: f64,
    dram_bytes_per_cycle_per_sm: f64,
    concurrency: f64,
) -> BlockTiming {
    block_cycles_lite(
        dev,
        &BlockCostLite::from(cost),
        warps_per_block,
        eff_warps,
        dram_bytes,
        dram_bytes_per_cycle_per_sm,
        concurrency,
    )
}

/// [`block_cycles`] over the compact per-block record the streaming launch
/// path retains. The full-cost entry point above delegates here, so both
/// paths share one arithmetic expression and stay bit-identical (the lite
/// fields are exact integer pre-sums of the `BlockCost` counters this
/// function reads).
pub fn block_cycles_lite(
    dev: &DeviceConfig,
    cost: &BlockCostLite,
    warps_per_block: u32,
    eff_warps: f64,
    dram_bytes: f64,
    dram_bytes_per_cycle_per_sm: f64,
    concurrency: f64,
) -> BlockTiming {
    // Block service time charges the SM's full issue rate: co-resident
    // blocks interleave on the schedulers, so a block's cost to the SM is its
    // instruction count at the aggregate rate (a lone small block that cannot
    // reach this rate is covered by the latency penalty instead).
    let _ = warps_per_block;
    let issue_cycles = cost.instrs as f64 / dev.issue_slots_per_sm as f64;

    // FP32 pipeline: fp32 lanes / warp_size warp-FMAs per cycle (2.0 on Volta).
    let fma_tp = dev.fp32_lanes_per_sm as f64 / dev.warp_size as f64;
    let fma_cycles = cost.fma_fp_instrs as f64 / fma_tp;

    // LSU pipeline: global & shared access instructions contend for ld/st
    // issue; throughput in warp-instructions per cycle.
    let lsu_tp = (dev.lsu_lanes_per_sm as f64 / dev.warp_size as f64).max(0.125);
    // Global accesses pay the full LSU/TLB path; shared-memory accesses
    // issue at one warp-instruction per cycle on Volta's dedicated pipe.
    // Shuffles run on their own crossbar and contend for issue only.
    let lsu_cycles = cost.global_instrs as f64 / lsu_tp + cost.smem_instrs as f64;

    // Shared-memory bandwidth: bytes / (bytes-per-cycle), plus one full warp
    // access per conflict pass.
    let smem_cycles = cost.shared_bytes as f64 / dev.smem_bytes_per_cycle as f64
        + cost.bank_conflict_passes as f64;

    // DRAM: the block's traffic at its SM's bandwidth share.
    let dram_cycles = if dram_bytes_per_cycle_per_sm > 0.0 {
        dram_bytes / dram_bytes_per_cycle_per_sm
    } else {
        0.0
    };

    let penalty = latency_penalty(dev, eff_warps);
    let exec = issue_cycles
        .max(fma_cycles)
        .max(lsu_cycles)
        .max(smem_cycles);
    // Memory and execution overlap; the slower one dominates, and whatever
    // latency the resident warps cannot hide inflates the memory component.
    // The fixed launch/drain overhead is amortized across co-resident blocks
    // (a new block's setup overlaps its neighbours' execution).
    let total = exec
        .max(dram_cycles * penalty)
        .max(exec * (1.0 + 0.15 * (penalty - 1.0)))
        + dev.block_overhead_cycles / concurrency.max(1.0)
        + cost.barriers as f64 * 20.0
        + cost.stall_cycles as f64;

    BlockTiming {
        issue_cycles,
        fma_cycles,
        lsu_cycles,
        smem_cycles,
        dram_cycles,
        latency_penalty: penalty,
        total_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BlockContext;
    use crate::cost::BufferId;

    fn v100() -> DeviceConfig {
        DeviceConfig::v100()
    }

    #[test]
    fn fma_bound_block() {
        let dev = v100();
        let mut ctx = BlockContext::new(false);
        ctx.fma(10_000, 320_000);
        let t = block_cycles(
            &dev,
            &ctx.cost,
            8,
            16.0,
            0.0,
            dev.dram_bytes_per_cycle() / 80.0,
            2.0,
        );
        // 10_000 warp FMAs at 2/cycle = 5_000 cycles; issue is 10_000/4 = 2_500.
        assert!((t.fma_cycles - 5_000.0).abs() < 1.0);
        assert!(t.total_cycles >= 5_000.0);
        assert!(t.total_cycles < 7_000.0);
    }

    #[test]
    fn dram_bound_block_slows_with_low_occupancy() {
        let dev = v100();
        let mut ctx = BlockContext::new(false);
        ctx.ld_global(BufferId(0), 0, 32, 4, 4);
        let bw = dev.dram_bytes_per_cycle() / dev.num_sms as f64;
        let fast = block_cycles(&dev, &ctx.cost, 8, 32.0, 1_000_000.0, bw, 2.0);
        let slow = block_cycles(&dev, &ctx.cost, 8, 1.0, 1_000_000.0, bw, 2.0);
        assert!(
            slow.total_cycles > fast.total_cycles * 2.0,
            "low occupancy must expose latency: fast={} slow={}",
            fast.total_cycles,
            slow.total_cycles
        );
    }

    #[test]
    fn penalty_saturates_at_high_occupancy() {
        let dev = v100();
        assert_eq!(latency_penalty(&dev, 64.0), 1.0);
        assert_eq!(latency_penalty(&dev, 12.0), 1.0);
        assert!(latency_penalty(&dev, 1.0) > 2.0);
    }

    #[test]
    fn vector_loads_reduce_issue_time() {
        // Same bytes moved, fewer instructions: issue/lsu cycles drop.
        let dev = v100();
        let mut scalar = BlockContext::new(false);
        let mut vec4 = BlockContext::new(false);
        for i in 0..64 {
            scalar.ld_global(BufferId(0), i * 128, 32, 1, 4);
        }
        for i in 0..16 {
            vec4.ld_global(BufferId(0), i * 512, 32, 4, 4);
        }
        assert_eq!(scalar.cost.gmem[0].ld_sectors, vec4.cost.gmem[0].ld_sectors);
        let bw = dev.dram_bytes_per_cycle() / dev.num_sms as f64;
        let ts = block_cycles(&dev, &scalar.cost, 1, 32.0, 0.0, bw, 2.0);
        let tv = block_cycles(&dev, &vec4.cost, 1, 32.0, 0.0, bw, 2.0);
        assert!(tv.lsu_cycles < ts.lsu_cycles / 3.0);
    }
}
