//! Shared-output utilities for parallel functional execution.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A slice that multiple thread-block executors may write concurrently, on
/// the caller's guarantee that blocks write **disjoint** index sets — the
/// same guarantee a CUDA kernel gives when thread blocks own disjoint output
/// tiles.
///
/// This mirrors how GPU kernels share a device buffer: no synchronization,
/// correctness by construction of the tiling.
pub struct SyncUnsafeSlice<'a, T> {
    ptr: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Send for SyncUnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for SyncUnsafeSlice<'_, T> {}

impl<'a, T> SyncUnsafeSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<T>;
        Self { ptr, len, _marker: PhantomData }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// The caller must guarantee no other executor reads or writes `index`
    /// concurrently (disjoint output tiles), and `index < len`.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { *(*self.ptr.add(index)).get() = value };
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    /// Same disjointness requirement as [`Self::write`].
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { *(*self.ptr.add(index)).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        use rayon::prelude::*;
        let mut data = vec![0u32; 1024];
        {
            let s = SyncUnsafeSlice::new(&mut data);
            (0..1024usize).into_par_iter().for_each(|i| unsafe { s.write(i, i as u32 * 2) });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn read_back() {
        let mut data = vec![1.5f32; 8];
        let s = SyncUnsafeSlice::new(&mut data);
        unsafe {
            s.write(3, 7.25);
            assert_eq!(s.read(3), 7.25);
            assert_eq!(s.read(0), 1.5);
        }
    }
}
