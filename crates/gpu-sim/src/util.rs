//! Shared-output utilities for parallel functional execution.
//!
//! This module is the single audited unsafe write path to shared output
//! buffers (enforced by `clippy.toml`'s `disallowed-methods`); keep raw
//! pointer writes here so the sanitizer instrumentation covers them all.

use crate::sanitizer;
use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A slice that multiple thread-block executors may write concurrently, on
/// the caller's guarantee that blocks write **disjoint** index sets — the
/// same guarantee a CUDA kernel gives when thread blocks own disjoint output
/// tiles.
///
/// This mirrors how GPU kernels share a device buffer: no synchronization,
/// correctness by construction of the tiling.
pub struct SyncUnsafeSlice<'a, T> {
    ptr: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Send for SyncUnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for SyncUnsafeSlice<'_, T> {}

impl<'a, T> SyncUnsafeSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<T>;
        Self {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// The bounds check is always on (not `debug_assert!`): an out-of-bounds
    /// index panics in normal launches and becomes a recorded
    /// [`SanitizerViolation`](crate::sanitizer::SanitizerViolation) under
    /// [`Gpu::sanitize`](crate::Gpu::sanitize), never UB. Under a sanitized
    /// launch the write also claims `index` in the cross-block shadow map;
    /// a write that would race an earlier block's is recorded and skipped
    /// (performing it would be the very race being reported).
    ///
    /// # Safety
    /// The caller must guarantee no other executor reads or writes `index`
    /// concurrently (disjoint output tiles).
    #[inline]
    #[allow(clippy::disallowed_methods)]
    pub unsafe fn write(&self, index: usize, value: T) {
        if index >= self.len {
            if sanitizer::report_slice_oob(index, self.len, true) {
                return;
            }
            panic!(
                "SyncUnsafeSlice::write out of bounds: index {index} >= len {}",
                self.len
            );
        }
        if !sanitizer::session_active() || sanitizer::claim_write(self.ptr as usize, index) {
            unsafe { *(*self.ptr.add(index)).get() = value };
        }
    }

    /// Read the value at `index`.
    ///
    /// Bounds-checked like [`Self::write`]; an out-of-bounds read under the
    /// sanitizer is recorded and returns the element at index 0 (the slice
    /// is never empty when kernels hold one).
    ///
    /// # Safety
    /// Same disjointness requirement as [`Self::write`].
    #[inline]
    #[allow(clippy::disallowed_methods)]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        if index >= self.len {
            if self.len > 0 && sanitizer::report_slice_oob(index, self.len, false) {
                return unsafe { *(*self.ptr).get() };
            }
            panic!(
                "SyncUnsafeSlice::read out of bounds: index {index} >= len {}",
                self.len
            );
        }
        unsafe { *(*self.ptr.add(index)).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        use rayon::prelude::*;
        let mut data = vec![0u32; 1024];
        {
            let s = SyncUnsafeSlice::new(&mut data);
            (0..1024usize)
                .into_par_iter()
                .for_each(|i| unsafe { s.write(i, i as u32 * 2) });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn read_back() {
        let mut data = vec![1.5f32; 8];
        let s = SyncUnsafeSlice::new(&mut data);
        unsafe {
            s.write(3, 7.25);
            assert_eq!(s.read(3), 7.25);
            assert_eq!(s.read(0), 1.5);
        }
    }
}
