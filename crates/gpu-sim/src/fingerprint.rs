//! A tiny stable hasher for structural fingerprints.
//!
//! Block signatures ([`crate::Kernel::block_signature`]) and launch-cache
//! keys ([`crate::LaunchCache`]) need a hash that is deterministic across
//! runs and Rust versions — `std::hash::DefaultHasher` guarantees neither.
//! The mixer is FNV-1a lifted from octets to whole 64-bit words (one
//! xor-multiply per word instead of eight): signature computation sits on
//! the launch fast path, so per-byte hashing is measurable. The word-level
//! variant keeps FNV's stability and avalanche-by-multiplication while
//! costing an eighth of the multiplies.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb one word with a single FNV-1a xor-multiply round.
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        self.state ^= word;
        self.state = self.state.wrapping_mul(FNV_PRIME);
        self
    }

    #[inline]
    pub fn write_usize(&mut self, word: usize) -> &mut Self {
        self.write_u64(word as u64)
    }

    /// Absorb a slice of words (e.g. a CSR index array). The slice *length*
    /// is folded in first: without it, consecutive `write_slice` calls
    /// concatenate, so two operand sets that split the same word sequence at
    /// different boundaries (a length-extension pair) would collide into one
    /// fingerprint — and one [`crate::LaunchKey`].
    pub fn write_slice(&mut self, words: &[u32]) -> &mut Self {
        self.write_usize(words.len());
        for &w in words {
            self.write_u64(w as u64);
        }
        self
    }

    /// Absorb raw bytes (e.g. a kernel name), length-prefixed like
    /// [`Fingerprint::write_slice`].
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot hash of a word sequence.
pub fn hash_words(words: &[u64]) -> u64 {
    let mut f = Fingerprint::new();
    for &w in words {
        f.write_u64(w);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[3, 2, 1]));
        assert_ne!(hash_words(&[0]), hash_words(&[]));
        // Known FNV-1a property: empty input hashes to the offset basis.
        assert_eq!(hash_words(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut f = Fingerprint::new();
        f.write_u64(7).write_u64(11);
        assert_eq!(f.finish(), hash_words(&[7, 11]));
    }

    #[test]
    fn slice_boundaries_are_not_extension_collisions() {
        // Regression: two same-prefix topologies that split the identical
        // word stream at different buffer boundaries must not share a
        // fingerprint. Before length mixing, `[1,2,3] ++ [4]` and
        // `[1,2,3,4] ++ []` hashed identically.
        let mut a = Fingerprint::new();
        a.write_slice(&[1, 2, 3]).write_slice(&[4]);
        let mut b = Fingerprint::new();
        b.write_slice(&[1, 2, 3, 4]).write_slice(&[]);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fingerprint::new();
        c.write_bytes(b"ab").write_bytes(b"c");
        let mut d = Fingerprint::new();
        d.write_bytes(b"abc").write_bytes(b"");
        assert_ne!(c.finish(), d.finish());

        // Same split, same content: still deterministic.
        let mut e = Fingerprint::new();
        e.write_slice(&[1, 2, 3]).write_slice(&[4]);
        assert_eq!(a.finish(), e.finish());
    }
}
