//! Thread-block scheduling onto SMs.
//!
//! The paper reverse-engineers the Volta thread block scheduler (Section
//! V-C1): blocks in the first wave are assigned to SMs round-robin by
//!
//! ```text
//! sm_idx = 2 * (block_idx mod 40) + (block_idx / 40) mod 2      (80 SMs)
//! ```
//!
//! and after the first wave, blocks are issued *in order of `block_idx`* as
//! resources free up (an online greedy list schedule — the property the row
//! swizzle's "heaviest bundles first" heuristic relies on, like guided
//! self-scheduling).
//!
//! We generalize the formula to `num_sms` SMs by treating it as "even SMs
//! first, then odd SMs": `sm = 2*(b mod H) + (b / H) mod 2` with
//! `H = num_sms / 2`, repeating for subsequent residency slots.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// SM index a given block lands on in the first wave, per the paper's
/// reverse-engineered Volta mapping.
pub fn volta_first_wave_sm(dev: &DeviceConfig, block_idx: u64) -> u32 {
    let sms = dev.num_sms as u64;
    if sms == 1 {
        return 0;
    }
    if sms.is_multiple_of(2) {
        let half = sms / 2;
        let b = block_idx % sms;
        (2 * (b % half) + (b / half) % 2) as u32
    } else {
        (block_idx % sms) as u32
    }
}

/// Result of simulating the block schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Time (in cycles) at which the last block finishes.
    pub makespan_cycles: f64,
    /// Busy cycles accumulated by each SM.
    pub per_sm_busy: Vec<f64>,
    /// Number of full waves the grid occupies
    /// (`ceil(blocks / (num_sms * blocks_per_sm))`).
    pub waves: f64,
    /// Ratio of mean SM busy time to the makespan — 1.0 is a perfectly
    /// balanced schedule; low values indicate tail latency from imbalance.
    pub balance: f64,
}

/// Simulate the execution schedule of `block_cycles[i]` (duration of block
/// with linear index `i`) onto the device's SMs.
///
/// Each SM executes its resident blocks serially at full SM rate (intra-SM
/// concurrency is folded into the latency-hiding efficiency in
/// [`crate::timing`]); `blocks_per_sm` governs how many blocks the first wave
/// places per SM before the online in-order issue takes over. This
/// reproduces both sources of load imbalance the paper identifies: imbalance
/// *between* SMs (some SMs get heavier blocks) and the tail created when a
/// heavy block starts late.
pub fn simulate_schedule(
    dev: &DeviceConfig,
    blocks_per_sm: u32,
    block_cycles: &[f64],
) -> ScheduleResult {
    let num_sms = dev.num_sms as usize;
    let n = block_cycles.len();
    let mut per_sm_busy = vec![0.0f64; num_sms];
    if n == 0 {
        return ScheduleResult {
            makespan_cycles: 0.0,
            per_sm_busy,
            waves: 0.0,
            balance: 1.0,
        };
    }
    let slots_per_sm = blocks_per_sm.max(1) as usize;
    let first_wave = (num_sms * slots_per_sm).min(n);

    // Each SM is a single serial worker: co-resident blocks share the SM's
    // pipelines, so their aggregate service time is the sum of their
    // individual costs (the concurrency benefit — latency hiding — is
    // modeled separately in `timing`). The first wave is pre-placed by the
    // hardware's round-robin mapping *before* durations are known, which is
    // what lets heavy blocks pile onto one SM; afterwards blocks issue in
    // index order to whichever SM frees up first.
    let mut sm_finish = vec![0.0f64; num_sms];

    // First wave: hardware round-robin placement, blind to block weight.
    for (b, &cycles) in block_cycles.iter().enumerate().take(first_wave) {
        let sm = volta_first_wave_sm(dev, b as u64) as usize;
        sm_finish[sm] += cycles;
        per_sm_busy[sm] += cycles;
    }

    // Remaining blocks issue in block_idx order as SMs free up. Heap entry:
    // (finish_time_bits, sm) — f64 ordered via to_bits, monotone for
    // non-negative floats.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(num_sms);
    for (sm, &t) in sm_finish.iter().enumerate() {
        heap.push(Reverse((t.to_bits(), sm as u32)));
    }
    for &cycles in block_cycles.iter().take(n).skip(first_wave) {
        // The heap always holds `num_sms` entries (each pop is followed by a
        // push), so this never breaks; the guard only satisfies panic-freedom.
        let Some(Reverse((free_bits, sm))) = heap.pop() else {
            break;
        };
        let free = f64::from_bits(free_bits);
        let end = free + cycles;
        per_sm_busy[sm as usize] += cycles;
        sm_finish[sm as usize] = end;
        heap.push(Reverse((end.to_bits(), sm)));
    }

    let makespan = sm_finish.iter().cloned().fold(0.0f64, f64::max);
    let busy_sum: f64 = per_sm_busy.iter().sum();
    let mean_busy = busy_sum / num_sms as f64;
    let balance = if makespan > 0.0 {
        mean_busy / makespan
    } else {
        1.0
    };
    let waves = n as f64 / (num_sms as f64 * slots_per_sm as f64);

    ScheduleResult {
        makespan_cycles: makespan,
        per_sm_busy,
        waves,
        balance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> DeviceConfig {
        DeviceConfig::v100()
    }

    #[test]
    fn volta_mapping_matches_paper_formula() {
        let dev = v100();
        // Paper: sm = 2*(b mod 40) + (b/40) mod 2, for 80 SMs.
        for b in 0..160u64 {
            let expect = (2 * (b % 40) + (b / 40) % 2) % 80;
            assert_eq!(volta_first_wave_sm(&dev, b), expect as u32, "block {b}");
        }
    }

    #[test]
    fn first_wave_covers_all_sms() {
        let dev = v100();
        let mut seen = [false; 80];
        for b in 0..80u64 {
            seen[volta_first_wave_sm(&dev, b) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "first 80 blocks must hit all 80 SMs"
        );
    }

    #[test]
    fn uniform_blocks_are_balanced() {
        let dev = v100();
        let blocks = vec![100.0; 800]; // 10 per SM
        let res = simulate_schedule(&dev, 4, &blocks);
        assert!((res.makespan_cycles - 1000.0).abs() < 1e-6);
        assert!(res.balance > 0.999);
    }

    #[test]
    fn one_heavy_block_creates_tail() {
        let dev = v100();
        let mut blocks = vec![10.0; 800];
        blocks[799] = 10_000.0; // heavy block issued LAST: pure tail
        let res = simulate_schedule(&dev, 4, &blocks);
        // Tail-dominated: makespan ~ start-of-last + 10_000.
        assert!(res.makespan_cycles >= 10_000.0);
        assert!(
            res.balance < 0.2,
            "balance should collapse, got {}",
            res.balance
        );
    }

    #[test]
    fn heavy_block_first_is_hidden() {
        let dev = v100();
        let mut blocks = vec![10.0; 800];
        blocks[0] = 10_000.0; // heavy block issued FIRST: overlapped
        let res = simulate_schedule(&dev, 4, &blocks);
        // The other 799 blocks (7990 cycles of work over 79 SMs ≈ 101) finish
        // long before the heavy one: makespan ≈ heavy block.
        assert!(res.makespan_cycles < 10_200.0);
    }

    #[test]
    fn swizzle_ordering_improves_makespan() {
        // Descending order (heaviest first — what the row swizzle produces)
        // must not be worse than an adversarial ascending order.
        let dev = v100();
        let mut asc: Vec<f64> = (0..1600).map(|i| 1.0 + i as f64).collect();
        let desc: Vec<f64> = asc.iter().rev().cloned().collect();
        let r_desc = simulate_schedule(&dev, 2, &desc);
        asc.rotate_left(0);
        let r_asc = simulate_schedule(&dev, 2, &asc);
        assert!(r_desc.makespan_cycles <= r_asc.makespan_cycles);
    }

    #[test]
    fn empty_grid() {
        let dev = v100();
        let res = simulate_schedule(&dev, 1, &[]);
        assert_eq!(res.makespan_cycles, 0.0);
    }
}
