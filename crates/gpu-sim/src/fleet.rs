//! A simulated multi-GPU fleet: per-device command streams with async
//! submission, cross-stream events, and an interconnect cost model.
//!
//! The source paper saturates one V100; the at-scale successor line of work
//! (see PAPERS.md) shards the same sparse workloads across a fleet with
//! explicit transfer costs. This module supplies the execution substrate for
//! that: a [`Fleet`] owns N [`Gpu`] instances (one command stream each), and
//! work is *submitted* asynchronously — nothing advances the fleet clock
//! until [`Fleet::sync`] resolves every queued command against the stream
//! semantics below.
//!
//! ## Stream semantics
//!
//! * **Per-stream FIFO**: commands on one device's stream resolve strictly
//!   in submission order, like a CUDA stream.
//! * **Events**: [`Fleet::record_event`] enqueues a marker that completes
//!   when every earlier command on its stream has completed, at that
//!   stream's clock. [`Fleet::wait_event`] blocks a stream until the event
//!   completes, advancing the waiter's clock to the event's completion time
//!   (never backwards) — so an event can never be observed before its
//!   dependencies.
//! * **Deadlock is a typed error**: a cross-stream wait cycle (or a wait on
//!   an event nobody records) makes [`Fleet::sync`] return a
//!   [`FleetError`] instead of hanging; the simulated machine has no
//!   watchdog to rely on.
//!
//! ## What submission does vs what sync does
//!
//! Functional kernel execution (real numerical outputs) and per-launch cost
//! simulation happen eagerly at submission on the owning [`Gpu`] — outputs
//! are timing-independent, so there is nothing to defer (the same choice
//! the block-dedup and cache-replay fast paths make). What *is* deferred is
//! timeline placement: [`Fleet::sync`] replays the queued commands against
//! the event graph to place every launch and transfer on each device's
//! stream clock, applying the same pipelined-submission model as
//! [`crate::Stream`] (one full launch overhead up front, later launches on
//! a busy stream hide theirs behind executing work).
//!
//! ## Interconnect
//!
//! Cross-device traffic is charged by the fleet's [`LinkProfile`]
//! (alpha-beta: latency + bytes/bandwidth). [`Fleet::ring_all_reduce`]
//! builds the classic 2(N−1)-step ring out of raw transfer + event
//! commands, so its cost is emergent from the stream machinery rather than
//! a closed-form formula. Every resolved transfer bumps the
//! `fleet_transfers` / `fleet_transfer_bytes` metrics and lands on the
//! source device's trace track (with an `interconnect_bytes` counter track
//! in the Chrome export).

use crate::device::{DeviceConfig, LinkProfile};
use crate::kernel::Kernel;
use crate::launch::{Gpu, LaunchError, LaunchStats};
use crate::{metrics, trace};
use std::collections::{HashMap, VecDeque};

/// A cross-stream synchronization marker, created by
/// [`Fleet::record_event`]. Opaque; compare and pass to
/// [`Fleet::wait_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Typed failures from [`Fleet::sync`] — the simulator refuses to model a
/// hung machine silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Every non-empty stream is blocked on a wait, and every blocked-on
    /// event *would* eventually be recorded — i.e. the waits form a cycle
    /// across streams. `blocked` lists (device index, event) pairs at the
    /// stream heads.
    WaitCycle { blocked: Vec<(usize, EventId)> },
    /// A stream waits on an event that no stream ever records: not a cycle,
    /// just a wait that can never be satisfied.
    UnknownEvent { device: usize, event: EventId },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::WaitCycle { blocked } => {
                write!(f, "cross-stream wait cycle: ")?;
                for (i, (dev, ev)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "dev{dev} blocked on event {}", ev.0)?;
                }
                Ok(())
            }
            FleetError::UnknownEvent { device, event } => write!(
                f,
                "dev{device} waits on event {} which no stream records",
                event.0
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// One queued stream command. Launch costs are captured at submission; the
/// resolver only does timeline arithmetic.
#[derive(Debug, Clone)]
enum StreamOp {
    /// A launch whose end-to-end simulated time (including one launch
    /// overhead) is `time_us`.
    Launch { time_us: f64 },
    /// Complete the event at the stream's current clock.
    Record(EventId),
    /// Stall the stream until the event completes.
    Wait(EventId),
    /// Send `bytes` toward device `dst` over the fleet link.
    Transfer {
        bytes: u64,
        dst: usize,
        label: String,
    },
}

/// Summary of one [`Fleet::sync`]: where every stream clock ended up and
/// what the interconnect carried since the fleet was created.
#[derive(Debug, Clone)]
pub struct FleetSync {
    /// Per-device stream clocks after resolving every queued command, in
    /// simulated microseconds since fleet creation.
    pub device_busy_us: Vec<f64>,
    /// The fleet makespan: the latest stream clock.
    pub makespan_us: f64,
    /// Cumulative interconnect payload since fleet creation.
    pub transfer_bytes: u64,
    /// Cumulative transfer count since fleet creation.
    pub transfers: u64,
    /// Cumulative simulated time spent on interconnect transfers (summed
    /// across streams; overlapping transfers each count).
    pub transfer_us: f64,
}

/// A fleet of N simulated GPUs with one command stream per device.
///
/// ```
/// use gpu_sim::{DeviceConfig, Fleet, LinkProfile};
///
/// let mut fleet = Fleet::homogeneous(&DeviceConfig::v100(), 2, LinkProfile::nvlink());
/// // dev1 consumes dev0's result: transfer then wait on the completion event.
/// fleet.submit(0, 100.0);
/// let ready = fleet.transfer(0, 1, 1 << 20, "partial result");
/// fleet.wait_event(1, ready);
/// fleet.submit(1, 50.0);
/// let sync = fleet.sync().expect("no wait cycles");
/// assert!(sync.device_busy_us[1] > sync.device_busy_us[0]);
/// assert!(sync.transfer_bytes > 0);
/// ```
pub struct Fleet {
    gpus: Vec<Gpu>,
    link: LinkProfile,
    queues: Vec<VecDeque<StreamOp>>,
    /// Per-device stream clock, microseconds since fleet creation.
    clocks: Vec<f64>,
    /// Launches resolved per stream: the first pays its full launch
    /// overhead, later ones pipeline behind executing work.
    launches_resolved: Vec<u64>,
    /// Completed events: id -> completion time on the recording stream.
    events: HashMap<u64, f64>,
    next_event: u64,
    transfer_bytes: u64,
    transfers: u64,
    transfer_us: f64,
}

impl Fleet {
    /// A fleet of `n` identical devices built from `base`, joined by
    /// `link`. Each device gets a unique name (`"<base>[dev<i>]"`) so
    /// launch-cache keys and trace tracks separate naturally.
    pub fn homogeneous(base: &DeviceConfig, n: usize, link: LinkProfile) -> Self {
        let devs = (0..n)
            .map(|i| {
                let mut dev = base.clone();
                dev.name = format!("{}[dev{i}]", base.name);
                dev
            })
            .collect();
        Self::from_devices(devs, link)
    }

    /// A fleet over an explicit (possibly heterogeneous) device list.
    pub fn from_devices(devs: Vec<DeviceConfig>, link: LinkProfile) -> Self {
        assert!(!devs.is_empty(), "a fleet needs at least one device");
        let n = devs.len();
        Self {
            gpus: devs.into_iter().map(Gpu::new).collect(),
            link,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            clocks: vec![0.0; n],
            launches_resolved: vec![0; n],
            events: HashMap::new(),
            next_event: 0,
            transfer_bytes: 0,
            transfers: 0,
            transfer_us: 0.0,
        }
    }

    /// `n` V100s on NVLink — the DGX-1V-style box the at-scale experiments
    /// assume.
    pub fn v100(n: usize) -> Self {
        Self::homogeneous(&DeviceConfig::v100(), n, LinkProfile::nvlink())
    }

    pub fn num_devices(&self) -> usize {
        self.gpus.len()
    }

    /// The simulated GPU behind stream `device`. Kernels launched directly
    /// on it (e.g. through the core dispatch wrappers) compute outputs and
    /// record per-device metrics/trace; pair with [`Fleet::submit`] to
    /// place their cost on the stream timeline.
    pub fn gpu(&self, device: usize) -> &Gpu {
        &self.gpus[device]
    }

    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// Current stream clock of `device`, microseconds since fleet creation.
    /// Only [`Fleet::sync`] advances it.
    pub fn clock(&self, device: usize) -> f64 {
        self.clocks[device]
    }

    /// Asynchronously launch `kernel` on `device`: execute it on the owning
    /// [`Gpu`] now (outputs + per-launch stats) and enqueue its cost on the
    /// device's stream. Returns the launch statistics.
    pub fn launch(
        &mut self,
        device: usize,
        kernel: &dyn Kernel,
    ) -> Result<LaunchStats, LaunchError> {
        let stats = self.gpus[device].try_launch(kernel)?;
        self.submit(device, stats.time_us);
        Ok(stats)
    }

    /// Enqueue `time_us` of already-simulated launch time on `device`'s
    /// stream (the async half of a launch that was executed through the
    /// [`Gpu`] directly, e.g. by a cached dispatch wrapper). `time_us` must
    /// include one launch overhead, as [`LaunchStats::time_us`] does.
    pub fn submit(&mut self, device: usize, time_us: f64) {
        self.queues[device].push_back(StreamOp::Launch { time_us });
    }

    /// Enqueue an event marker on `device`'s stream. The event completes
    /// when everything submitted to the stream before it has completed.
    pub fn record_event(&mut self, device: usize) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        self.queues[device].push_back(StreamOp::Record(id));
        id
    }

    /// Enqueue a stall on `device`'s stream until `event` completes.
    pub fn wait_event(&mut self, device: usize, event: EventId) {
        self.queues[device].push_back(StreamOp::Wait(event));
    }

    /// Enqueue a transfer of `bytes` from `src` to `dst` over the fleet
    /// link, returning an event the receiver (or anyone else) can wait on
    /// for its completion.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: u64, label: &str) -> EventId {
        assert!(src != dst, "transfer requires two distinct devices");
        assert!(dst < self.gpus.len(), "transfer dst out of range");
        self.queues[src].push_back(StreamOp::Transfer {
            bytes,
            dst,
            label: label.to_string(),
        });
        self.record_event(src)
    }

    /// Enqueue a ring all-reduce of `bytes_per_device` across every stream:
    /// the classic reduce-scatter + all-gather, 2(N−1) steps of
    /// `bytes/N`-sized chunks, each step's receive gated on the sender's
    /// completion event. On a single-device fleet this is a no-op.
    pub fn ring_all_reduce(&mut self, bytes_per_device: u64) {
        let n = self.gpus.len();
        if n <= 1 {
            return;
        }
        let chunk = bytes_per_device.div_ceil(n as u64);
        for phase in ["reduce-scatter", "all-gather"] {
            for _step in 0..n - 1 {
                let sent: Vec<EventId> = (0..n)
                    .map(|d| self.transfer(d, (d + 1) % n, chunk, phase))
                    .collect();
                for d in 0..n {
                    self.wait_event(d, sent[(d + n - 1) % n]);
                }
            }
        }
    }

    /// Resolve every queued command against the stream semantics, advancing
    /// the per-device clocks. Returns the resulting timeline summary, or a
    /// typed error if the queues can never drain (wait cycle / unknown
    /// event) — in which case the unresolvable commands stay queued.
    pub fn sync(&mut self) -> Result<FleetSync, FleetError> {
        loop {
            let mut progress = false;
            for d in 0..self.gpus.len() {
                while let Some(op) = self.queues[d].front() {
                    match op {
                        StreamOp::Wait(ev) => {
                            let Some(&done_at) = self.events.get(&ev.0) else {
                                break; // maybe recorded by a later pass
                            };
                            if done_at > self.clocks[d] {
                                self.clocks[d] = done_at;
                            }
                        }
                        StreamOp::Record(ev) => {
                            self.events.insert(ev.0, self.clocks[d]);
                        }
                        StreamOp::Launch { time_us } => {
                            let overhead = self.gpus[d].device().launch_overhead_us;
                            // Pipelined submission, mirroring Stream: the
                            // first launch pays its full overhead; later
                            // ones hide it behind executing work, floored
                            // at the same driver-gap cost Stream charges.
                            let exec = if self.launches_resolved[d] == 0 {
                                *time_us
                            } else {
                                (time_us - overhead).max(overhead * 0.3)
                            };
                            self.clocks[d] += exec;
                            self.launches_resolved[d] += 1;
                        }
                        StreamOp::Transfer { bytes, dst, label } => {
                            let us = self.link.transfer_us(*bytes);
                            let bytes = *bytes;
                            if trace::enabled() {
                                trace::transfer(
                                    &self.gpus[d].device().name,
                                    &self.gpus[*dst].device().name,
                                    label,
                                    bytes,
                                    us,
                                );
                            }
                            self.clocks[d] += us;
                            self.transfer_bytes += bytes;
                            self.transfers += 1;
                            self.transfer_us += us;
                            metrics::global().incr_many(&[
                                ("fleet_transfers", 1),
                                ("fleet_transfer_bytes", bytes),
                            ]);
                        }
                    }
                    self.queues[d].pop_front();
                    progress = true;
                }
            }
            if self.queues.iter().all(VecDeque::is_empty) {
                break;
            }
            if !progress {
                return Err(self.diagnose_stall());
            }
        }
        let makespan_us = self.clocks.iter().cloned().fold(0.0, f64::max);
        Ok(FleetSync {
            device_busy_us: self.clocks.clone(),
            makespan_us,
            transfer_bytes: self.transfer_bytes,
            transfers: self.transfers,
            transfer_us: self.transfer_us,
        })
    }

    /// Classify a stalled resolution: every non-empty queue is headed by a
    /// `Wait`. If some blocked-on event is never recorded anywhere, that is
    /// the bug to report; otherwise the waits form a genuine cycle.
    fn diagnose_stall(&self) -> FleetError {
        let mut blocked = Vec::new();
        for (d, q) in self.queues.iter().enumerate() {
            if let Some(StreamOp::Wait(ev)) = q.front() {
                blocked.push((d, *ev));
            }
        }
        let pending_records: Vec<u64> = self
            .queues
            .iter()
            .flat_map(|q| {
                q.iter().filter_map(|op| match op {
                    StreamOp::Record(ev) => Some(ev.0),
                    _ => None,
                })
            })
            .collect();
        for &(device, event) in &blocked {
            if !pending_records.contains(&event.0) && !self.events.contains_key(&event.0) {
                return FleetError::UnknownEvent { device, event };
            }
        }
        FleetError::WaitCycle { blocked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Fleet {
        Fleet::v100(n)
    }

    /// A tiny deterministic generator for the property-style sweeps
    /// (splitmix64; the vendored rand stub has no distributions).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn per_stream_fifo_order_holds() {
        let mut f = fleet(2);
        // Interleave launches and events on both streams; each event must
        // complete no earlier than the one recorded before it on the same
        // stream, with the submitted work in between accounted for.
        let mut marks: Vec<Vec<EventId>> = vec![Vec::new(); 2];
        for i in 0..8 {
            for (d, stream_marks) in marks.iter_mut().enumerate() {
                f.submit(d, 10.0 + i as f64);
                stream_marks.push(f.record_event(d));
            }
        }
        let sync = f.sync().expect("no waits, no cycle");
        for (d, stream_marks) in marks.iter().enumerate() {
            let times: Vec<f64> = stream_marks.iter().map(|ev| f.events[&ev.0]).collect();
            for w in times.windows(2) {
                assert!(
                    w[1] > w[0],
                    "stream {d}: later-submitted event completed earlier ({} <= {})",
                    w[1],
                    w[0]
                );
            }
            assert!((times[times.len() - 1] - sync.device_busy_us[d]).abs() < 1e-9);
        }
    }

    /// Property sweep: across random cross-stream DAGs, a waiter's
    /// downstream event never completes before the event it waited on.
    #[test]
    fn events_never_complete_before_dependencies() {
        for seed in 0..20u64 {
            let mut rng = Rng(seed);
            let n = 2 + (seed as usize % 3); // 2..=4 devices
            let mut f = fleet(n);
            // (upstream, downstream) pairs to check after sync.
            let mut edges: Vec<(EventId, EventId)> = Vec::new();
            let mut last_event: Vec<Option<EventId>> = vec![None; n];
            for _ in 0..40 {
                let d = rng.below(n as u64) as usize;
                match rng.below(3) {
                    0 => f.submit(d, 1.0 + rng.below(50) as f64),
                    1 => last_event[d] = Some(f.record_event(d)),
                    _ => {
                        // Wait on some other stream's latest event (if any),
                        // then mark this stream so we can compare times.
                        let src = rng.below(n as u64) as usize;
                        if src != d {
                            if let Some(upstream) = last_event[src] {
                                f.wait_event(d, upstream);
                                let downstream = f.record_event(d);
                                edges.push((upstream, downstream));
                                last_event[d] = Some(downstream);
                            }
                        }
                    }
                }
            }
            f.sync().expect("forward-only waits cannot cycle");
            for (up, down) in edges {
                let (up_t, down_t) = (f.events[&up.0], f.events[&down.0]);
                assert!(
                    down_t >= up_t - 1e-12,
                    "seed {seed}: event completed {down_t} before its dependency {up_t}"
                );
            }
        }
    }

    #[test]
    fn wait_cycle_is_a_typed_error_not_a_hang() {
        // Queue shape: dev0 = [Wait(e1), Record(e0)], dev1 = [Wait(e0),
        // Record(e1)] — each stream's event is recorded only after its wait
        // on the other's, a genuine cross-stream cycle. Event ids allocate
        // sequentially from zero, so the waits can name them up front.
        let mut f = fleet(2);
        let (e0, e1) = (EventId(0), EventId(1));
        f.wait_event(0, e1);
        f.wait_event(1, e0);
        assert_eq!(f.record_event(0), e0, "event ids allocate sequentially");
        assert_eq!(f.record_event(1), e1, "event ids allocate sequentially");
        match f.sync() {
            Err(FleetError::WaitCycle { blocked }) => {
                assert_eq!(blocked.len(), 2, "both streams blocked");
            }
            other => panic!("expected WaitCycle, got {other:?}"),
        }
    }

    #[test]
    fn wait_on_never_recorded_event_is_unknown_event() {
        let mut f = fleet(2);
        let real = f.record_event(0);
        let _ = real;
        f.wait_event(1, EventId(999));
        match f.sync() {
            Err(FleetError::UnknownEvent { device, event }) => {
                assert_eq!(device, 1);
                assert_eq!(event, EventId(999));
            }
            other => panic!("expected UnknownEvent, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_stream_never_exceeds_naive_sum() {
        let mut f = fleet(1);
        let times = [12.0, 7.0, 30.0, 4.0];
        for &t in &times {
            f.submit(0, t);
        }
        let sync = f.sync().expect("single stream");
        let naive: f64 = times.iter().sum();
        assert!(
            sync.makespan_us <= naive + 1e-9,
            "pipelining must not cost time: {} > {naive}",
            sync.makespan_us
        );
        assert!(sync.makespan_us > 0.0);
    }

    #[test]
    fn transfers_charge_the_interconnect_and_gate_the_receiver() {
        let mut f = fleet(2);
        f.submit(0, 100.0);
        let ready = f.transfer(0, 1, 1 << 20, "activations");
        f.wait_event(1, ready);
        f.submit(1, 10.0);
        let sync = f.sync().expect("acyclic");
        let xfer_us = f.link().transfer_us(1 << 20);
        assert_eq!(sync.transfers, 1);
        assert_eq!(sync.transfer_bytes, 1 << 20);
        assert!((sync.transfer_us - xfer_us).abs() < 1e-9);
        // dev1 cannot start its launch before the data lands.
        assert!(
            sync.device_busy_us[1] >= 100.0 + xfer_us,
            "receiver ran before the transfer completed: {}",
            sync.device_busy_us[1]
        );
    }

    #[test]
    fn ring_all_reduce_cost_matches_alpha_beta() {
        for n in [2usize, 4, 8] {
            let mut f = fleet(n);
            let bytes = 8u64 << 20;
            f.ring_all_reduce(bytes);
            let sync = f.sync().expect("ring is acyclic");
            let chunk = bytes.div_ceil(n as u64);
            let expected = 2.0 * (n as f64 - 1.0) * f.link().transfer_us(chunk);
            // The event-driven ring should land exactly on the closed form:
            // every step is fully synchronized by its completion events.
            assert!(
                (sync.makespan_us - expected).abs() < 1e-6,
                "{n}-device ring: {} vs alpha-beta {expected}",
                sync.makespan_us
            );
            assert_eq!(sync.transfers as usize, 2 * (n - 1) * n);
        }
        // Single device: nothing to reduce.
        let mut f = fleet(1);
        f.ring_all_reduce(8 << 20);
        let sync = f.sync().expect("empty");
        assert_eq!(sync.transfers, 0);
        assert_eq!(sync.makespan_us, 0.0);
    }

    #[test]
    fn fleet_devices_have_unique_names_and_shared_arch() {
        let f = fleet(4);
        let names: Vec<&str> = f.gpus().iter().map(|g| g.device().name.as_str()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(n.contains(&format!("dev{i}")));
            for other in &names[i + 1..] {
                assert_ne!(n, other);
            }
        }
        let arch0 = f.gpu(0).device().arch_fingerprint();
        assert!(f
            .gpus()
            .iter()
            .all(|g| g.device().arch_fingerprint() == arch0));
    }
}
