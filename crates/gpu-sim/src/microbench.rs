//! Simulator self-validation microbenchmarks.
//!
//! Real GPU work starts by measuring the device: STREAM-style copies for
//! bandwidth, FMA chains for peak math, shared-memory sweeps, occupancy
//! ladders. This module provides those microbenchmark *kernels* for the
//! simulator, so tests (and users) can confirm that the model reproduces
//! the datasheet numbers its constants were taken from — bandwidth within a
//! few percent of 900 GB/s on the V100 preset, FP32 peak at 15.7 TFLOP/s,
//! and latency-bound degradation when occupancy is starved.

use crate::cache::{AccessPattern, BufferSpec};
use crate::cost::{BlockContext, BufferId};
use crate::dim::Dim3;
use crate::kernel::Kernel;
use crate::launch::Gpu;

/// STREAM copy: read `n` floats, write `n` floats, perfectly coalesced.
pub struct CopyKernel {
    pub n: u64,
}

impl Kernel for CopyKernel {
    fn name(&self) -> String {
        "microbench_copy".into()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x((self.n / 1024).max(1) as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                id: BufferId(0),
                name: "src",
                footprint_bytes: self.n * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BufferId(1),
                name: "dst",
                footprint_bytes: self.n * 4,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        // 1024 elements per block: each of 8 warps does one float4 load+store.
        let base = block.x as u64 * 4096;
        for w in 0..8u64 {
            ctx.ld_global(BufferId(0), base + w * 512, 32, 4, 4);
            ctx.st_global(BufferId(1), base + w * 512, 32, 4, 4);
        }
        ctx.misc(8);
    }
}

/// FMA chain: pure math, enough warps to saturate every SM.
pub struct FmaKernel {
    /// FMA warp-instructions per block.
    pub per_block: u64,
    pub blocks: u32,
}

impl Kernel for FmaKernel {
    fn name(&self) -> String {
        "microbench_fma".into()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(self.blocks)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![]
    }

    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.fma(self.per_block, self.per_block * 32);
    }
}

/// Latency probe: one block, one warp, serialized scattered loads — the
/// configuration latency hiding cannot help.
pub struct LatencyProbeKernel {
    pub accesses: u64,
}

impl Kernel for LatencyProbeKernel {
    fn name(&self) -> String {
        "microbench_latency".into()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![BufferSpec {
            id: BufferId(0),
            name: "chase",
            footprint_bytes: self.accesses * 128,
            pattern: AccessPattern::Streaming,
        }]
    }

    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        for i in 0..self.accesses {
            ctx.ld_global(BufferId(0), i * 128, 1, 1, 4);
            ctx.misc(2);
        }
    }
}

/// Shared-memory bandwidth sweep: blocks that do nothing but move bytes
/// through shared memory.
pub struct SmemSweepKernel {
    pub rounds: u64,
    pub blocks: u32,
    /// Bank-conflict ways to provoke (1 = conflict-free).
    pub conflict_ways: u32,
}

impl Kernel for SmemSweepKernel {
    fn name(&self) -> String {
        "microbench_smem".into()
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(self.blocks)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(256)
    }

    fn shared_mem_bytes(&self) -> u32 {
        32 * 1024
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![]
    }

    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        for _ in 0..self.rounds {
            for _ in 0..8 {
                ctx.ld_shared(32, 4, 4, self.conflict_ways);
            }
        }
    }
}

/// Summary of a self-validation run.
#[derive(Debug, Clone)]
pub struct Validation {
    pub copy_gbps: f64,
    pub copy_frac_of_bw: f64,
    pub fma_tflops: f64,
    pub fma_frac_of_peak: f64,
    pub latency_bound_slowdown: f64,
}

/// Run the microbenchmark suite against a device.
pub fn validate(gpu: &Gpu) -> Validation {
    let dev = gpu.device();

    // Bandwidth: copy 256 MB.
    let n = 64 * 1024 * 1024u64;
    let copy = gpu.profile(&CopyKernel { n });
    let copy_gbps = (2 * n * 4) as f64 / (copy.time_us * 1e-6) / 1e9;

    // Math: 4 blocks per SM, long FMA chains.
    let fma = gpu.profile(&FmaKernel {
        per_block: 200_000,
        blocks: dev.num_sms * 4,
    });

    // Latency exposure: same scattered loads, 1 warp vs many.
    let lone = gpu.profile(&LatencyProbeKernel { accesses: 10_000 });
    let per_access_lone = lone.time_us / 10_000.0;
    // A saturated copy moves ~128B per "access slot" — compare per-byte cost.
    let per_byte_copy = copy.time_us / (2.0 * n as f64 * 4.0);
    let latency_bound_slowdown = (per_access_lone / (per_byte_copy * 32.0)).max(1.0);

    Validation {
        copy_gbps,
        copy_frac_of_bw: copy_gbps / dev.dram_bw_gbps,
        fma_tflops: fma.tflops,
        fma_frac_of_peak: fma.frac_peak,
        latency_bound_slowdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_reaches_most_of_bandwidth() {
        let v = validate(&Gpu::v100());
        assert!(
            (0.80..=1.001).contains(&v.copy_frac_of_bw),
            "STREAM copy should land at 80-100% of 900 GB/s, got {:.0} GB/s",
            v.copy_gbps
        );
    }

    #[test]
    fn fma_reaches_peak() {
        let v = validate(&Gpu::v100());
        assert!(
            (0.90..=1.001).contains(&v.fma_frac_of_peak),
            "pure FMA chains should saturate the FP32 pipeline, got {:.2} TFLOP/s",
            v.fma_tflops
        );
    }

    #[test]
    fn lone_warp_is_latency_bound() {
        let v = validate(&Gpu::v100());
        assert!(
            v.latency_bound_slowdown > 2.0,
            "a single warp's scattered loads must expose latency, got {:.1}x",
            v.latency_bound_slowdown
        );
    }

    #[test]
    fn bank_conflicts_serialize_smem() {
        let gpu = Gpu::v100();
        let clean = gpu.profile(&SmemSweepKernel {
            rounds: 5_000,
            blocks: 320,
            conflict_ways: 1,
        });
        let conflicted = gpu.profile(&SmemSweepKernel {
            rounds: 5_000,
            blocks: 320,
            conflict_ways: 8,
        });
        assert!(
            conflicted.time_us > 2.0 * clean.time_us,
            "8-way conflicts must serialize: {:.1} vs {:.1} us",
            conflicted.time_us,
            clean.time_us
        );
    }

    #[test]
    fn devices_rank_sanely() {
        let v100 = validate(&Gpu::v100());
        let a100 = validate(&Gpu::a100());
        let gtx = validate(&Gpu::gtx1080());
        assert!(a100.copy_gbps > v100.copy_gbps);
        assert!(v100.copy_gbps > gtx.copy_gbps);
        assert!(v100.fma_tflops > gtx.fma_tflops);
    }
}
