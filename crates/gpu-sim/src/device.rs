//! Device configurations describing the simulated GPU.
//!
//! The numbers for the V100 preset come from the Volta whitepaper and the
//! values the paper relies on (80 SMs, 15.7 TFLOP/s FP32 peak, 900 GB/s HBM2,
//! 6 MiB L2, 128 KiB unified L1/shared per SM). The GTX 1080 preset is used
//! for the sparse-Transformer experiment in Table III, where the dense model
//! runs out of the 1080's 8 GiB of device memory.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// All throughputs are per-SM per-cycle unless otherwise noted. The timing
/// model in [`crate::timing`] combines these with per-block cost traces to
/// produce simulated runtimes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"V100-SXM2-16GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Sustained SM clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (32 on all Nvidia hardware).
    pub warp_size: u32,
    /// FP32 FMA lanes per SM (64 on Volta => 2 warp-FMA instructions/cycle).
    pub fp32_lanes_per_sm: u32,
    /// Warp instructions issuable per SM per cycle (4 schedulers on Volta).
    pub issue_slots_per_sm: u32,
    /// Load/store unit lanes per SM per cycle. Volta services roughly half a
    /// warp of global accesses per cycle per SM in the steady state.
    pub lsu_lanes_per_sm: u32,
    /// Shared-memory bandwidth in bytes per SM per cycle (128 on Volta).
    pub smem_bytes_per_cycle: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Hardware limit on resident warps per SM.
    pub max_warps_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity (registers are allocated per warp in
    /// chunks of this many).
    pub reg_alloc_granularity: u32,
    /// Shared memory available per SM for thread blocks, in bytes.
    pub smem_per_sm: u32,
    /// Maximum shared memory a single block may request, in bytes.
    pub smem_per_block_max: u32,
    /// L2 cache capacity in bytes (shared by all SMs).
    pub l2_bytes: u64,
    /// L1 cache capacity per SM in bytes (the portion not claimed as shared
    /// memory; Volta unifies the two, which is why the paper's SDDMM avoids
    /// an explicit shared-memory transpose).
    pub l1_bytes_per_sm: u32,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// DRAM capacity in bytes. Models that do not fit report out-of-memory
    /// (Table III, dense Transformer on GTX 1080).
    pub dram_capacity_bytes: u64,
    /// Fixed host-side kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Typical DRAM access latency in cycles; used by the latency-hiding
    /// model: low-occupancy kernels cannot cover this latency and slow down.
    pub dram_latency_cycles: f64,
    /// Number of resident warps per SM needed to fully hide memory latency.
    /// The latency-hiding efficiency saturates as occupancy approaches this.
    pub latency_hiding_warps: f64,
    /// Fixed per-block scheduling/drain overhead in cycles.
    pub block_overhead_cycles: f64,
}

impl DeviceConfig {
    /// Nvidia Tesla V100 (SXM2, 16 GB) — the paper's primary platform.
    pub fn v100() -> Self {
        Self {
            name: "V100-SXM2-16GB".to_string(),
            num_sms: 80,
            clock_ghz: 1.53,
            warp_size: 32,
            fp32_lanes_per_sm: 64,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            smem_per_block_max: 96 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            l1_bytes_per_sm: 128 * 1024,
            dram_bw_gbps: 900.0,
            dram_capacity_bytes: 16 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 450.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Nvidia GeForce GTX 1080 (Pascal, 8 GB) — used for Table III to show
    /// the sparse Transformer fitting where the dense one cannot.
    pub fn gtx1080() -> Self {
        Self {
            name: "GTX-1080-8GB".to_string(),
            num_sms: 20,
            clock_ghz: 1.73,
            warp_size: 32,
            fp32_lanes_per_sm: 128,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            smem_per_block_max: 48 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            l1_bytes_per_sm: 48 * 1024,
            dram_bw_gbps: 320.0,
            dram_capacity_bytes: 8 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 400.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Nvidia A100 (Ampere, 40 GB) — the "new advances in hardware" the
    /// paper's Section IX anticipates: 2.4x the L2, 1.7x the bandwidth, and
    /// more SMs than the V100, which shifts sparse kernels' balance points.
    pub fn a100() -> Self {
        Self {
            name: "A100-SXM4-40GB".to_string(),
            num_sms: 108,
            clock_ghz: 1.41,
            warp_size: 32,
            fp32_lanes_per_sm: 64,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 164 * 1024,
            smem_per_block_max: 164 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            l1_bytes_per_sm: 192 * 1024,
            dram_bw_gbps: 1555.0,
            dram_capacity_bytes: 40 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 400.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Peak single-precision throughput in TFLOP/s
    /// (`SMs * lanes * 2 flops/FMA * clock`). For the V100 preset this is
    /// 15.67 TFLOP/s, matching the 15.7 the paper's "27% of peak" refers to.
    pub fn fp32_peak_tflops(&self) -> f64 {
        self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_ghz / 1000.0
    }

    /// DRAM bandwidth expressed in bytes per SM clock cycle, device-wide.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbps / self.clock_ghz
    }

    /// Convert a cycle count to microseconds at the SM clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_matches_datasheet() {
        let dev = DeviceConfig::v100();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 15.67).abs() < 0.1,
            "V100 FP32 peak should be ~15.7 TFLOP/s, got {peak}"
        );
    }

    #[test]
    fn gtx1080_peak_matches_datasheet() {
        let dev = DeviceConfig::gtx1080();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 8.9).abs() < 0.3,
            "GTX 1080 FP32 peak should be ~8.9 TFLOP/s, got {peak}"
        );
    }

    #[test]
    fn cycle_conversion() {
        let dev = DeviceConfig::v100();
        let us = dev.cycles_to_us(1530.0);
        assert!((us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a100_peak_matches_datasheet() {
        let dev = DeviceConfig::a100();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 19.5).abs() < 0.3,
            "A100 FP32 peak should be ~19.5 TFLOP/s, got {peak}"
        );
        assert!(dev.l2_bytes > DeviceConfig::v100().l2_bytes);
    }

    #[test]
    fn v100_has_more_memory_than_1080() {
        assert!(
            DeviceConfig::v100().dram_capacity_bytes > DeviceConfig::gtx1080().dram_capacity_bytes
        );
    }
}
