//! Device configurations describing the simulated GPU.
//!
//! The numbers for the V100 preset come from the Volta whitepaper and the
//! values the paper relies on (80 SMs, 15.7 TFLOP/s FP32 peak, 900 GB/s HBM2,
//! 6 MiB L2, 128 KiB unified L1/shared per SM). The GTX 1080 preset is used
//! for the sparse-Transformer experiment in Table III, where the dense model
//! runs out of the 1080's 8 GiB of device memory.

use crate::fingerprint::Fingerprint;
use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// All throughputs are per-SM per-cycle unless otherwise noted. The timing
/// model in [`crate::timing`] combines these with per-block cost traces to
/// produce simulated runtimes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"V100-SXM2-16GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Sustained SM clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (32 on all Nvidia hardware).
    pub warp_size: u32,
    /// FP32 FMA lanes per SM (64 on Volta => 2 warp-FMA instructions/cycle).
    pub fp32_lanes_per_sm: u32,
    /// Warp instructions issuable per SM per cycle (4 schedulers on Volta).
    pub issue_slots_per_sm: u32,
    /// Load/store unit lanes per SM per cycle. Volta services roughly half a
    /// warp of global accesses per cycle per SM in the steady state.
    pub lsu_lanes_per_sm: u32,
    /// Shared-memory bandwidth in bytes per SM per cycle (128 on Volta).
    pub smem_bytes_per_cycle: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Hardware limit on resident warps per SM.
    pub max_warps_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity (registers are allocated per warp in
    /// chunks of this many).
    pub reg_alloc_granularity: u32,
    /// Shared memory available per SM for thread blocks, in bytes.
    pub smem_per_sm: u32,
    /// Maximum shared memory a single block may request, in bytes.
    pub smem_per_block_max: u32,
    /// L2 cache capacity in bytes (shared by all SMs).
    pub l2_bytes: u64,
    /// L1 cache capacity per SM in bytes (the portion not claimed as shared
    /// memory; Volta unifies the two, which is why the paper's SDDMM avoids
    /// an explicit shared-memory transpose).
    pub l1_bytes_per_sm: u32,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// DRAM capacity in bytes. Models that do not fit report out-of-memory
    /// (Table III, dense Transformer on GTX 1080).
    pub dram_capacity_bytes: u64,
    /// Fixed host-side kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Typical DRAM access latency in cycles; used by the latency-hiding
    /// model: low-occupancy kernels cannot cover this latency and slow down.
    pub dram_latency_cycles: f64,
    /// Number of resident warps per SM needed to fully hide memory latency.
    /// The latency-hiding efficiency saturates as occupancy approaches this.
    pub latency_hiding_warps: f64,
    /// Fixed per-block scheduling/drain overhead in cycles.
    pub block_overhead_cycles: f64,
}

impl DeviceConfig {
    /// Nvidia Tesla V100 (SXM2, 16 GB) — the paper's primary platform.
    pub fn v100() -> Self {
        Self {
            name: "V100-SXM2-16GB".to_string(),
            num_sms: 80,
            clock_ghz: 1.53,
            warp_size: 32,
            fp32_lanes_per_sm: 64,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            smem_per_block_max: 96 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            l1_bytes_per_sm: 128 * 1024,
            dram_bw_gbps: 900.0,
            dram_capacity_bytes: 16 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 450.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Nvidia GeForce GTX 1080 (Pascal, 8 GB) — used for Table III to show
    /// the sparse Transformer fitting where the dense one cannot.
    pub fn gtx1080() -> Self {
        Self {
            name: "GTX-1080-8GB".to_string(),
            num_sms: 20,
            clock_ghz: 1.73,
            warp_size: 32,
            fp32_lanes_per_sm: 128,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 96 * 1024,
            smem_per_block_max: 48 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            l1_bytes_per_sm: 48 * 1024,
            dram_bw_gbps: 320.0,
            dram_capacity_bytes: 8 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 400.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Nvidia A100 (Ampere, 40 GB) — the "new advances in hardware" the
    /// paper's Section IX anticipates: 2.4x the L2, 1.7x the bandwidth, and
    /// more SMs than the V100, which shifts sparse kernels' balance points.
    pub fn a100() -> Self {
        Self {
            name: "A100-SXM4-40GB".to_string(),
            num_sms: 108,
            clock_ghz: 1.41,
            warp_size: 32,
            fp32_lanes_per_sm: 64,
            issue_slots_per_sm: 4,
            lsu_lanes_per_sm: 8,
            smem_bytes_per_cycle: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 65_536,
            reg_alloc_granularity: 256,
            smem_per_sm: 164 * 1024,
            smem_per_block_max: 164 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            l1_bytes_per_sm: 192 * 1024,
            dram_bw_gbps: 1555.0,
            dram_capacity_bytes: 40 * 1024 * 1024 * 1024,
            launch_overhead_us: 3.0,
            dram_latency_cycles: 400.0,
            latency_hiding_warps: 12.0,
            block_overhead_cycles: 600.0,
        }
    }

    /// Peak single-precision throughput in TFLOP/s
    /// (`SMs * lanes * 2 flops/FMA * clock`). For the V100 preset this is
    /// 15.67 TFLOP/s, matching the 15.7 the paper's "27% of peak" refers to.
    pub fn fp32_peak_tflops(&self) -> f64 {
        self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_ghz / 1000.0
    }

    /// DRAM bandwidth expressed in bytes per SM clock cycle, device-wide.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_gbps / self.clock_ghz
    }

    /// Convert a cycle count to microseconds at the SM clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// A stable structural hash of every architectural field (everything
    /// *except* the marketing name). Two devices with the same name but
    /// different resources — e.g. a fleet mixing a stock V100 with a
    /// cut-down one — hash differently, so [`crate::LaunchKey`]s carrying
    /// this value can never serve one profile's cached statistics to the
    /// other.
    pub fn arch_fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_u64(self.num_sms as u64)
            .write_u64(self.clock_ghz.to_bits())
            .write_u64(self.warp_size as u64)
            .write_u64(self.fp32_lanes_per_sm as u64)
            .write_u64(self.issue_slots_per_sm as u64)
            .write_u64(self.lsu_lanes_per_sm as u64)
            .write_u64(self.smem_bytes_per_cycle as u64)
            .write_u64(self.max_threads_per_sm as u64)
            .write_u64(self.max_blocks_per_sm as u64)
            .write_u64(self.max_warps_per_sm as u64)
            .write_u64(self.regs_per_sm as u64)
            .write_u64(self.reg_alloc_granularity as u64)
            .write_u64(self.smem_per_sm as u64)
            .write_u64(self.smem_per_block_max as u64)
            .write_u64(self.l2_bytes)
            .write_u64(self.l1_bytes_per_sm as u64)
            .write_u64(self.dram_bw_gbps.to_bits())
            .write_u64(self.dram_capacity_bytes)
            .write_u64(self.launch_overhead_us.to_bits())
            .write_u64(self.dram_latency_cycles.to_bits())
            .write_u64(self.latency_hiding_warps.to_bits())
            .write_u64(self.block_overhead_cycles.to_bits());
        f.finish()
    }
}

/// An inter-device link: the cost model for moving bytes between two GPUs
/// in a simulated fleet.
///
/// Transfers are charged `latency + bytes / bandwidth` on the simulated
/// clock — the standard alpha-beta (latency/bandwidth) model used by
/// collective-communication cost analyses. Two profiles bracket real
/// machines: [`LinkProfile::nvlink`] for NVLink-class fabrics (DGX-style
/// boxes) and [`LinkProfile::pcie`] for PCIe-attached fleets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Profile name, e.g. `"NVLink2"`.
    pub name: String,
    /// Sustained point-to-point bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency in microseconds (software stack + fabric
    /// hop). Applied once per transfer regardless of size.
    pub latency_us: f64,
}

impl LinkProfile {
    /// NVLink 2.0-class link: ~150 GB/s per direction between V100 pairs
    /// in a DGX-1V, with a low microsecond-scale initiation cost.
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink2".to_string(),
            bandwidth_gbps: 150.0,
            latency_us: 1.3,
        }
    }

    /// PCIe 3.0 x16-class link: ~12 GB/s sustained, with a heavier
    /// initiation cost through the host stack.
    pub fn pcie() -> Self {
        Self {
            name: "PCIe3-x16".to_string(),
            bandwidth_gbps: 12.0,
            latency_us: 5.0,
        }
    }

    /// Simulated microseconds to move `bytes` across this link.
    ///
    /// `bytes / (GB/s * 1e3)` converts to microseconds directly
    /// (1 GB/s == 1e3 bytes/us).
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / (self.bandwidth_gbps * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_matches_datasheet() {
        let dev = DeviceConfig::v100();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 15.67).abs() < 0.1,
            "V100 FP32 peak should be ~15.7 TFLOP/s, got {peak}"
        );
    }

    #[test]
    fn gtx1080_peak_matches_datasheet() {
        let dev = DeviceConfig::gtx1080();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 8.9).abs() < 0.3,
            "GTX 1080 FP32 peak should be ~8.9 TFLOP/s, got {peak}"
        );
    }

    #[test]
    fn cycle_conversion() {
        let dev = DeviceConfig::v100();
        let us = dev.cycles_to_us(1530.0);
        assert!((us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a100_peak_matches_datasheet() {
        let dev = DeviceConfig::a100();
        let peak = dev.fp32_peak_tflops();
        assert!(
            (peak - 19.5).abs() < 0.3,
            "A100 FP32 peak should be ~19.5 TFLOP/s, got {peak}"
        );
        assert!(dev.l2_bytes > DeviceConfig::v100().l2_bytes);
    }

    #[test]
    fn v100_has_more_memory_than_1080() {
        assert!(
            DeviceConfig::v100().dram_capacity_bytes > DeviceConfig::gtx1080().dram_capacity_bytes
        );
    }

    #[test]
    fn arch_fingerprint_ignores_name_but_not_resources() {
        let base = DeviceConfig::v100();
        let mut renamed = base.clone();
        renamed.name = "V100-dev3".to_string();
        assert_eq!(
            base.arch_fingerprint(),
            renamed.arch_fingerprint(),
            "the marketing name is not architecture"
        );
        let mut cut_down = base.clone();
        cut_down.num_sms = 40;
        assert_ne!(base.arch_fingerprint(), cut_down.arch_fingerprint());
        let mut slower_dram = base.clone();
        slower_dram.dram_bw_gbps = 450.0;
        assert_ne!(base.arch_fingerprint(), slower_dram.arch_fingerprint());
        assert_ne!(
            DeviceConfig::v100().arch_fingerprint(),
            DeviceConfig::a100().arch_fingerprint()
        );
    }

    #[test]
    fn link_transfer_cost_is_latency_plus_bandwidth_term() {
        let nv = LinkProfile::nvlink();
        // Zero bytes still pays the initiation latency.
        assert!((nv.transfer_us(0) - nv.latency_us).abs() < 1e-12);
        // 150 MB at 150 GB/s is 1 ms of bandwidth term.
        let us = nv.transfer_us(150_000_000);
        assert!(
            (us - (nv.latency_us + 1000.0)).abs() < 1e-9,
            "150 MB over NVLink should cost ~1 ms, got {us} us"
        );
        // PCIe is strictly slower for any nonzero payload.
        let pcie = LinkProfile::pcie();
        assert!(pcie.transfer_us(1 << 20) > nv.transfer_us(1 << 20));
    }
}
