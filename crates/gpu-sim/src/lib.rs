//! # gpu-sim — an analytic V100-class GPU execution simulator
//!
//! This crate is the hardware substrate for the Rust reproduction of
//! *Sparse GPU Kernels for Deep Learning* (Gale et al., SC 2020). No GPU is
//! available in this environment, so kernels are written against a simulated
//! device instead: each kernel supplies a per-thread-block body which
//! computes real numerical outputs **and** records a warp-level
//! instruction/memory cost trace. The launcher converts those traces into a
//! simulated runtime using
//!
//! * a memory-coalescing model (32-byte sectors, alignment effects — the
//!   machinery behind the paper's ROMA technique),
//! * an L2/L1 cross-block reuse model (the source of the dense/sparse
//!   crossover in the paper's Figure 1),
//! * an occupancy calculator and latency-hiding penalty (why 1-D tiling wins
//!   on small problems),
//! * the reverse-engineered Volta thread-block scheduler from Section V-C1
//!   of the paper, driving an event-driven makespan simulation (the basis of
//!   the row-swizzle load-balancing results), and
//! * per-SM pipeline throughputs (issue, FMA, LSU, shared memory) with
//!   device-wide rooflines.
//!
//! Absolute times are model outputs, not silicon measurements; the model is
//! calibrated once against the paper's anchor points (see `DESIGN.md`) and
//! every comparative result is then emergent.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Gpu, Kernel, Dim3, BlockContext, BufferSpec, BufferId, AccessPattern};
//!
//! /// A kernel that streams through a buffer, one block per 128 floats.
//! struct Stream { n: u64 }
//!
//! impl Kernel for Stream {
//!     fn name(&self) -> String { "stream".into() }
//!     fn grid(&self) -> Dim3 { Dim3::x((self.n / 128) as u32) }
//!     fn block_dim(&self) -> Dim3 { Dim3::x(128) }
//!     fn buffers(&self) -> Vec<BufferSpec> {
//!         vec![BufferSpec { id: BufferId(0), name: "src", footprint_bytes: self.n * 4,
//!                           pattern: AccessPattern::Streaming }]
//!     }
//!     fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
//!         let base = block.x as u64 * 128 * 4;
//!         for w in 0..4u64 {
//!             ctx.ld_global(BufferId(0), base + w * 128, 32, 1, 4);
//!         }
//!         ctx.fma(4, 128);
//!     }
//! }
//!
//! let gpu = Gpu::v100();
//! let stats = gpu.launch(&Stream { n: 1 << 20 });
//! assert!(stats.time_us > 0.0);
//! ```

pub mod arena;
pub mod cache;
pub mod cache_sim;
pub mod cost;
pub mod device;
pub mod dim;
pub mod fault;
pub mod fingerprint;
pub mod fleet;
pub mod fused;
pub mod kernel;
pub mod lanes;
pub mod launch;
pub mod launch_cache;
pub mod memory;
pub mod metrics;
pub mod microbench;
pub mod occupancy;
pub mod sanitizer;
pub mod scheduler;
pub mod static_check;
pub mod timing;
pub mod trace;
pub mod util;

pub use arena::{ScratchF32, ScratchU64};
pub use cache::{AccessPattern, BufferSpec, DramTraffic};
pub use cache_sim::{CacheConfig, CacheSim, CacheStats};
pub use cost::{BlockContext, BlockCost, BlockCostLite, BufferId, Traffic, MAX_BUFFERS};
pub use device::{DeviceConfig, LinkProfile};
pub use dim::Dim3;
pub use fault::{DeviceFault, FaultKind, FaultPlan};
pub use fingerprint::Fingerprint;
pub use fleet::{EventId, Fleet, FleetError, FleetSync};
pub use fused::SddmmSoftmaxSpmmKernel;
pub use kernel::Kernel;
pub use launch::{Gpu, LaunchError, LaunchStats, LaunchSummary, PipelineBreakdown, Stream};
pub use launch_cache::{LaunchCache, LaunchKey};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use microbench::{validate, Validation};
pub use occupancy::{occupancy, BlockRequirements, Occupancy, OccupancyLimit};
pub use sanitizer::{
    CheckClass, ChecksMask, SanitizerReport, SanitizerViolation, SanitizerWarning, SmemScope,
    Verdict,
};
pub use scheduler::{simulate_schedule, volta_first_wave_sm, ScheduleResult};
pub use static_check::{
    audit, AccessBound, AlignmentFacts, BarrierFacts, BufferBound, StageBound, StaticAudit,
    StaticFacts, StaticFinding, VectorClass,
};
pub use trace::{chrome_trace_json, validate_chrome_trace, ProfileReport, TraceEvent};
pub use util::SyncUnsafeSlice;
