//! The launcher: executes a kernel's blocks, aggregates cost traces, applies
//! the cache / scheduling / timing models, and reports simulated statistics.

use crate::cache;
use crate::cost::{BlockContext, BlockCost, BlockCostLite, Traffic, MAX_BUFFERS};
use crate::device::DeviceConfig;
use crate::fault::{DeviceFault, FaultKind, FaultPlan};
use crate::kernel::Kernel;
use crate::launch_cache::{LaunchCache, LaunchKey};
use crate::metrics;
use crate::occupancy::{self, Occupancy};
use crate::sanitizer::{self, BlockSan, ChecksMask, SanitizerReport, Verdict};
use crate::scheduler;
use crate::static_check::{self, StaticAudit};
use crate::timing;
use crate::trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why a launch could not run (or did not complete).
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The kernel requests more shared memory per block than the device
    /// allows for any single block.
    SmemOverBudget {
        kernel: String,
        requested: u32,
        budget: u32,
    },
    /// No block of this kernel can be resident on an SM (shared memory or
    /// register pressure exceed per-SM capacity): the launch cannot execute.
    OccupancyZero { kernel: String },
    /// An injected device fault aborted the launch.
    DeviceFault(DeviceFault),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SmemOverBudget {
                kernel,
                requested,
                budget,
            } => write!(
                f,
                "kernel {kernel} requests {requested} B shared memory; device max is {budget}"
            ),
            LaunchError::OccupancyZero { kernel } => {
                write!(
                    f,
                    "kernel {kernel} achieves zero occupancy: no block fits on an SM"
                )
            }
            LaunchError::DeviceFault(fault) => write!(f, "device fault: {fault}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<DeviceFault> for LaunchError {
    fn from(fault: DeviceFault) -> Self {
        LaunchError::DeviceFault(fault)
    }
}

/// Device-wide roofline times (cycles) per pipeline — the denominator view
/// of where a kernel's time goes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineBreakdown {
    pub fma_cycles: f64,
    pub issue_cycles: f64,
    pub lsu_cycles: f64,
    pub smem_cycles: f64,
    pub dram_cycles: f64,
    pub schedule_cycles: f64,
}

impl PipelineBreakdown {
    /// Each pipeline's share of the binding time, for reports.
    pub fn utilizations(&self, total_cycles: f64) -> [(&'static str, f64); 6] {
        let f = |c: f64| {
            if total_cycles > 0.0 {
                c / total_cycles
            } else {
                0.0
            }
        };
        [
            ("fma", f(self.fma_cycles)),
            ("issue", f(self.issue_cycles)),
            ("lsu", f(self.lsu_cycles)),
            ("smem", f(self.smem_cycles)),
            ("dram", f(self.dram_cycles)),
            ("schedule", f(self.schedule_cycles)),
        ]
    }
}

/// Simulated statistics for one kernel launch.
///
/// `PartialEq` compares every field (f64s bitwise-as-values): the fast-path
/// equivalence suite relies on exact equality between the streaming/dedup
/// launch engine and the brute-force reference path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Kernel name.
    pub kernel: String,
    /// Simulated wall time in microseconds (including launch overhead).
    pub time_us: f64,
    /// Makespan of the block schedule in cycles.
    pub makespan_cycles: f64,
    /// Thread blocks launched.
    pub blocks: u64,
    /// Waves of blocks (grid size / device residency).
    pub waves: f64,
    /// Schedule balance (mean SM busy / makespan); 1.0 = perfectly balanced.
    pub balance: f64,
    /// Theoretical occupancy of the kernel.
    pub occupancy: Occupancy,
    /// Total warp instructions issued.
    pub instructions: u64,
    /// Useful scalar FLOPs performed.
    pub flops: u64,
    /// DRAM bytes moved (after cache filtering).
    pub dram_bytes: u64,
    /// Achieved arithmetic throughput in TFLOP/s.
    pub tflops: f64,
    /// Fraction of the device's FP32 peak achieved.
    pub frac_peak: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Which pipeline bound the runtime ("fma", "lsu", "smem", "dram",
    /// "issue", "schedule", or "overhead").
    pub bound_by: String,
    /// Device-wide per-pipeline roofline times.
    pub pipelines: PipelineBreakdown,
}

impl LaunchStats {
    /// Convenience: simulated time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time_us / 1000.0
    }
}

impl std::fmt::Display for LaunchStats {
    /// One-line human summary, e.g. for examples and logs:
    /// `sputnik_spmm_f32: 37.0 us, 3.15 TFLOP/s (20.1% peak), 35 MB DRAM, bound by dram`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.1} us, {:.2} TFLOP/s ({:.1}% peak), {:.1} MB DRAM, {} blocks ({:.1} waves), bound by {}",
            self.kernel,
            self.time_us,
            self.tflops,
            self.frac_peak * 100.0,
            self.dram_bytes as f64 / 1e6,
            self.blocks,
            self.waves,
            self.bound_by
        )
    }
}

/// A simulated GPU: a device configuration plus launch machinery.
pub struct Gpu {
    dev: DeviceConfig,
    /// Optional injected-fault schedule consulted on every launch.
    fault: Option<FaultPlan>,
    /// Structural block dedup in profile mode (see
    /// [`Kernel::block_signature`]); on by default, disabled only to
    /// brute-force a reference for equivalence testing.
    dedup: bool,
}

impl Gpu {
    pub fn new(dev: DeviceConfig) -> Self {
        Self {
            dev,
            fault: None,
            dedup: true,
        }
    }

    pub fn v100() -> Self {
        Self::new(DeviceConfig::v100())
    }

    pub fn gtx1080() -> Self {
        Self::new(DeviceConfig::gtx1080())
    }

    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// Attach a fault-injection schedule; every subsequent launch consults it.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Enable or disable structural block dedup for profile launches.
    /// Dedup is on by default and bit-identical to brute force (that is the
    /// [`Kernel::block_signature`] contract); turning it off forces every
    /// block to execute, which the equivalence suite uses as the reference.
    pub fn with_block_dedup(mut self, enabled: bool) -> Self {
        self.dedup = enabled;
        self
    }

    /// Launch a kernel functionally: blocks compute real outputs *and* the
    /// launch is timed. Panics on invalid launches or injected faults; use
    /// [`Gpu::try_launch`] for a recoverable error instead.
    pub fn launch(&self, kernel: &dyn Kernel) -> LaunchStats {
        self.try_launch(kernel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Profile a kernel: cost traces only, no functional output. Used by the
    /// large benchmark sweeps where only timing is needed.
    pub fn profile(&self, kernel: &dyn Kernel) -> LaunchStats {
        self.try_profile(kernel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible functional launch: validates resources, consults the fault
    /// plan, executes, and reports faults as errors instead of panicking.
    pub fn try_launch(&self, kernel: &dyn Kernel) -> Result<LaunchStats, LaunchError> {
        self.try_run(kernel, true)
    }

    /// Fallible profile launch (cost only).
    pub fn try_profile(&self, kernel: &dyn Kernel) -> Result<LaunchStats, LaunchError> {
        self.try_run(kernel, false)
    }

    /// The [`LaunchCache`] key this launch would use. See
    /// [`crate::launch_cache`] for what `fingerprint` must cover (operand
    /// structure plus any problem dimension the kernel name does not encode).
    pub fn cache_key(&self, kernel: &dyn Kernel, fingerprint: u64) -> LaunchKey {
        LaunchKey {
            kernel: kernel.name(),
            fingerprint,
            device: self.dev.name.clone(),
            arch: self.dev.arch_fingerprint(),
        }
    }

    /// Memoized profile launch: consult `cache` before simulating. Returns
    /// the stats plus whether they were served from the cache. A GPU
    /// carrying a fault plan bypasses the cache entirely (fault schedules
    /// consume per-launch indices).
    pub fn try_profile_cached(
        &self,
        cache: &LaunchCache,
        fingerprint: u64,
        kernel: &dyn Kernel,
    ) -> Result<(LaunchStats, bool), LaunchError> {
        if self.fault.is_some() {
            return self.try_profile(kernel).map(|s| (s, false));
        }
        let key = self.cache_key(kernel, fingerprint);
        if let Some(stats) = cache.lookup(&key) {
            self.note_cache_hit(&stats);
            return Ok((stats, true));
        }
        let stats = self.try_profile(kernel)?;
        cache.insert(key, stats.clone());
        Ok((stats, false))
    }

    /// Memoized functional launch: on a hit the kernel still executes every
    /// block (outputs must be produced) but with cost recording disabled —
    /// the statistics come from the cache. Fault-plan GPUs bypass the cache.
    pub fn try_launch_cached(
        &self,
        cache: &LaunchCache,
        fingerprint: u64,
        kernel: &dyn Kernel,
    ) -> Result<(LaunchStats, bool), LaunchError> {
        if self.fault.is_some() {
            return self.try_launch(kernel).map(|s| (s, false));
        }
        let key = self.cache_key(kernel, fingerprint);
        if let Some(stats) = cache.lookup(&key) {
            self.validate(kernel)?;
            self.replay_functional(kernel);
            self.note_cache_hit(&stats);
            return Ok((stats, true));
        }
        let stats = self.try_launch(kernel)?;
        cache.insert(key, stats.clone());
        Ok((stats, false))
    }

    /// Record a launch served from a [`LaunchCache`] into the trace and
    /// metrics (the simulated paths record themselves; cache hits replay
    /// stats without simulating, so whoever serves the hit must report it).
    /// Called by [`Gpu::try_profile_cached`] / [`Gpu::try_launch_cached`]
    /// and by higher-level cached entry points that do their own lookup.
    pub fn note_cache_hit(&self, stats: &LaunchStats) {
        metrics::global().record_launch(stats, true);
        trace::launch(&self.dev.name, stats, Some(true));
    }

    /// Execute every block functionally with cost recording disabled (the
    /// output-producing half of a cached functional launch). This is the
    /// warm hot path: kernel bodies stage through the scratch arena
    /// ([`crate::arena`]) and skip cost-only work, so after each rayon
    /// worker's pools are warm a replay performs **zero heap allocations**
    /// (enforced by the `zero_alloc` integration test).
    pub fn replay_functional(&self, kernel: &dyn Kernel) {
        let grid = kernel.grid();
        (0..grid.size()).into_par_iter().for_each(|lin| {
            let mut ctx = BlockContext::replay();
            kernel.execute_block(grid.delinearize(lin), &mut ctx);
        });
    }

    /// Statically audit a kernel's launch descriptor against this device's
    /// model ([`crate::static_check::audit`]): per-check `Proven` /
    /// `Refuted` / `NeedsDynamic` verdicts, without executing a block.
    pub fn audit(&self, kernel: &dyn Kernel) -> StaticAudit {
        static_check::audit(&self.dev, kernel)
    }

    /// Run a kernel under the sanitizer (see [`crate::sanitizer`]): a
    /// functional launch whose blocks additionally record racecheck /
    /// memcheck / aligncheck / lint findings, the simulator's analogue of
    /// `compute-sanitizer`. The fault plan is not consulted — the sanitizer
    /// checks the kernel, not the device. Sanitized launches serialize
    /// process-wide (a global shadow map backs the cross-block racecheck).
    ///
    /// The launch is first statically audited: dynamic checks whose class
    /// the auditor `Proven` are disarmed (the cross-block racecheck always
    /// stays on — it has no static counterpart), and `Refuted` findings are
    /// folded into the report as hard violations while their dynamic checks
    /// stay armed for defense in depth. Use [`Gpu::sanitize_full`] to force
    /// every dynamic check regardless of the audit.
    pub fn sanitize(
        &self,
        kernel: &dyn Kernel,
    ) -> Result<(LaunchStats, SanitizerReport), LaunchError> {
        let audit = self.audit(kernel);
        let mask = audit.dynamic_mask();
        metrics::global().incr_many(&[
            ("static_audits", 1),
            ("static_checks_proven", audit.proven()),
            ("sanitizer_checks_skipped", mask.skipped()),
        ]);
        let (stats, mut report) = self.sanitize_with_mask(kernel, mask)?;
        for f in &audit.findings {
            if f.verdict == Verdict::Refuted {
                report.push_static_refutation(f.class, &f.detail);
                metrics::global().incr("sanitizer_violations", 1);
            }
        }
        Ok((stats, report))
    }

    /// [`Gpu::sanitize`] with every dynamic check armed, ignoring the static
    /// audit. This is the pre-audit behavior, kept as the reference the
    /// audited path is validated against (`sanitize_all` runs both and
    /// fails on any disagreement).
    pub fn sanitize_full(
        &self,
        kernel: &dyn Kernel,
    ) -> Result<(LaunchStats, SanitizerReport), LaunchError> {
        self.sanitize_with_mask(kernel, ChecksMask::ALL)
    }

    /// Memoized sanitized launch: a [`LaunchCache`] hit whose entry carries
    /// a sanitizer report skips re-sanitizing entirely — the sanitizer
    /// checks the cost trace, which (kernel name, fingerprint, device) fully
    /// determines — replaying functional outputs only. Returns the stats,
    /// the report, and whether they were served from the cache. Fault-plan
    /// GPUs bypass the cache like every other cached path.
    pub fn sanitize_cached(
        &self,
        cache: &LaunchCache,
        fingerprint: u64,
        kernel: &dyn Kernel,
    ) -> Result<(LaunchStats, SanitizerReport, bool), LaunchError> {
        if self.fault.is_some() {
            return self.sanitize(kernel).map(|(s, r)| (s, r, false));
        }
        let key = self.cache_key(kernel, fingerprint);
        if let Some((stats, report)) = cache.lookup_sanitized(&key) {
            self.validate(kernel)?;
            self.replay_functional(kernel);
            self.note_cache_hit(&stats);
            metrics::global().incr("sanitizer_skips", 1);
            return Ok((stats, report, true));
        }
        let (stats, report) = self.sanitize(kernel)?;
        cache.insert_sanitized(key, stats.clone(), report.clone());
        Ok((stats, report, false))
    }

    fn sanitize_with_mask(
        &self,
        kernel: &dyn Kernel,
        mask: ChecksMask,
    ) -> Result<(LaunchStats, SanitizerReport), LaunchError> {
        let occ = self.validate(kernel)?;
        let req = kernel.block_requirements();
        let buffers = kernel.buffers();
        let multi_warp = req.threads > self.dev.warp_size;
        let grid = kernel.grid();
        let n_blocks = grid.size();

        // Sanitized launches always take the slow path (no dedup, no launch
        // cache): the global shadow-map racecheck must observe every block's
        // real accesses. The trace reduction itself still streams — only the
        // per-block sanitizer findings are kept whole for the report.
        let session = sanitizer::begin_session(!kernel.atomic_output());
        let (total, lites, sans) = (0..n_blocks)
            .into_par_iter()
            .fold_with(
                (BlockCost::default(), Vec::new(), Vec::new()),
                |(mut total, mut lites, mut sans), lin| {
                    let idx = grid.delinearize(lin);
                    let san = BlockSan::with_mask(&buffers, req.smem_bytes, multi_warp, mask);
                    let mut ctx = BlockContext::sanitized(true, san);
                    sanitizer::enter_block(lin);
                    kernel.execute_block(idx, &mut ctx);
                    sanitizer::exit_block();
                    if let Some(san) = ctx.take_sanitizer() {
                        sans.push(san);
                    }
                    total.merge(&ctx.cost);
                    lites.push(BlockCostLite::from(&ctx.cost));
                    (total, lites, sans)
                },
            )
            .reduce_with(|(mut ta, mut la, mut sa), (tb, lb, sb)| {
                ta.merge(&tb);
                la.extend(lb);
                sa.extend(sb);
                (ta, la, sa)
            })
            .unwrap_or_default();
        let (race_count, race_examples) = sanitizer::drain_session();
        drop(session);

        let mut report = SanitizerReport::new(kernel.name(), n_blocks);
        for san in sans {
            report.absorb_block(san);
        }
        report.absorb_session(race_count, race_examples);

        let stats = self.finish(kernel, occ, total, lites);
        metrics::global().incr_many(&[
            ("sanitizer_runs", 1),
            ("sanitizer_violations", report.violation_count),
        ]);
        if trace::enabled() {
            trace::instant(
                "sanitizer",
                &self.dev.name,
                &format!(
                    "sanitize: {} ({} violations, {} warnings)",
                    report.kernel, report.violation_count, report.warning_count
                ),
            );
        }
        Ok((stats, report))
    }

    /// Resource validation shared by every launch path.
    fn validate(&self, kernel: &dyn Kernel) -> Result<Occupancy, LaunchError> {
        let dev = &self.dev;
        let req = kernel.block_requirements();
        let occ = occupancy::occupancy(dev, &req);
        if req.smem_bytes > dev.smem_per_block_max {
            return Err(LaunchError::SmemOverBudget {
                kernel: kernel.name(),
                requested: req.smem_bytes,
                budget: dev.smem_per_block_max,
            });
        }
        if occ.blocks_per_sm == 0 {
            return Err(LaunchError::OccupancyZero {
                kernel: kernel.name(),
            });
        }
        Ok(occ)
    }

    fn try_run(&self, kernel: &dyn Kernel, functional: bool) -> Result<LaunchStats, LaunchError> {
        let occ = self.validate(kernel)?;

        // The fault decision comes *after* resource validation: an invalid
        // launch never reaches the device, so it must not consume an index
        // in the fault schedule.
        let poison = match self.fault.as_ref() {
            Some(plan) => match plan.decide(&kernel.name()) {
                Some(fault) if fault.kind == FaultKind::PoisonOutput => {
                    Some(plan.poison_seed(&fault))
                }
                Some(fault) => return Err(LaunchError::DeviceFault(fault)),
                None => None,
            },
            None => None,
        };

        let stats = self.run(kernel, functional, occ);

        // A poison fault corrupts the output *after* a successful-looking
        // launch: callers only notice by inspecting the results.
        if functional {
            if let Some(seed) = poison {
                kernel.poison_output(seed);
            }
        }
        Ok(stats)
    }

    fn run(&self, kernel: &dyn Kernel, functional: bool, occ: Occupancy) -> LaunchStats {
        let grid = kernel.grid();
        let n_blocks = grid.size();

        // Dedup fast paths: execute (or cost-record) one representative per
        // structural block signature, replay its cost for the rest. In
        // functional mode every block still executes for its outputs — only
        // the cost recording is deduplicated.
        if self.dedup {
            let fast = if functional {
                self.run_functional_dedup(kernel, occ)
            } else {
                self.run_profile_dedup(kernel, occ)
            };
            if let Some(stats) = fast {
                return stats;
            }
        }

        // 1. Execute all blocks, streaming each cost trace into the running
        // total and a compact per-block record — no `Vec<BlockCost>` of full
        // `MAX_BUFFERS`-wide traces is ever materialized.
        let (total, lites) = (0..n_blocks)
            .into_par_iter()
            .fold_with(
                (BlockCost::default(), Vec::new()),
                |(mut total, mut lites), lin| {
                    let idx = grid.delinearize(lin);
                    let mut ctx = BlockContext::new(functional);
                    kernel.execute_block(idx, &mut ctx);
                    total.merge(&ctx.cost);
                    lites.push(BlockCostLite::from(&ctx.cost));
                    (total, lites)
                },
            )
            .reduce_with(|(mut ta, mut la), (tb, lb)| {
                ta.merge(&tb);
                la.extend(lb);
                (ta, la)
            })
            .unwrap_or_default();

        self.finish(kernel, occ, total, lites)
    }

    /// Profile-mode structural dedup: group blocks by
    /// [`Kernel::block_signature`], execute one representative per group, and
    /// replay its cost for the other members. Returns `None` when the kernel
    /// offers no signatures or no two blocks share one (the plain streaming
    /// path is then cheaper). Bit-identity with brute force holds because
    /// totals are exact `u64` sums (merging a representative's cost once per
    /// member is the same arithmetic) and per-block records land back at
    /// their original linear indices, so the scheduler sees the same order.
    fn run_profile_dedup(&self, kernel: &dyn Kernel, occ: Occupancy) -> Option<LaunchStats> {
        let grid = kernel.grid();
        let n_blocks = grid.size();
        let (unique, member) = self.dedup_plan(kernel)?;

        metrics::global().incr_many(&[
            ("dedup_blocks_total", n_blocks),
            ("dedup_blocks_executed", unique.len() as u64),
        ]);

        let costs: Vec<BlockCost> = unique
            .par_iter()
            .map(|&lin| {
                let mut ctx = BlockContext::new(false);
                kernel.execute_block(grid.delinearize(lin), &mut ctx);
                ctx.cost
            })
            .collect();

        Some(self.finish_dedup(kernel, occ, &costs, &member))
    }

    /// Functional-mode structural dedup: every block still executes for its
    /// outputs, but only one representative per signature records a cost
    /// trace — the rest run with recording disabled (their cost is replayed
    /// from the representative, exactly as in profile mode). Sound for the
    /// same reason [`Gpu::run_profile_dedup`] is (equal signatures must
    /// record bit-identical [`BlockCost`]), plus the standing invariant that
    /// a kernel's functional output cannot depend on whether cost recording
    /// is on (cached functional replays already rely on it).
    fn run_functional_dedup(&self, kernel: &dyn Kernel, occ: Occupancy) -> Option<LaunchStats> {
        let grid = kernel.grid();
        let n_blocks = grid.size();
        let (unique, member) = self.dedup_plan(kernel)?;

        metrics::global().incr_many(&[
            ("dedup_blocks_total", n_blocks),
            ("dedup_blocks_executed", unique.len() as u64),
        ]);

        // Pass A: representatives run functionally WITH cost recording.
        let costs: Vec<BlockCost> = unique
            .par_iter()
            .map(|&lin| {
                let mut ctx = BlockContext::new(true);
                kernel.execute_block(grid.delinearize(lin), &mut ctx);
                ctx.cost
            })
            .collect();

        // Pass B: every other block runs functionally with recording off —
        // the kernels' `ctx.recording()` gates skip the cost-only work, and
        // staging goes through the warm scratch arena.
        let mut is_rep = vec![false; n_blocks as usize];
        for &lin in &unique {
            is_rep[lin as usize] = true;
        }
        (0..n_blocks).into_par_iter().for_each(|lin| {
            if is_rep[lin as usize] {
                return;
            }
            let mut ctx = BlockContext::replay();
            kernel.execute_block(grid.delinearize(lin), &mut ctx);
        });

        Some(self.finish_dedup(kernel, occ, &costs, &member))
    }

    /// Group blocks by structural signature. Returns `(unique, member)`:
    /// `unique` lists the blocks that really execute (signature-less blocks
    /// and first occurrences); `member[i]` is the slot in `unique` whose cost
    /// block `i` replays. Signatures are computed in parallel (they can walk
    /// per-row metadata); only the grouping is serial. Returns `None` when no
    /// two blocks share a signature (the plain streaming path is cheaper).
    fn dedup_plan(&self, kernel: &dyn Kernel) -> Option<(Vec<u64>, Vec<usize>)> {
        let grid = kernel.grid();
        let n_blocks = grid.size();
        if n_blocks == 0 {
            return None;
        }
        let sigs: Vec<Option<u64>> = (0..n_blocks)
            .into_par_iter()
            .map(|lin| kernel.block_signature(grid.delinearize(lin)))
            .collect();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<u64> = Vec::new();
        let mut member: Vec<usize> = Vec::with_capacity(n_blocks as usize);
        for (lin, sig) in sigs.into_iter().enumerate() {
            let lin = lin as u64;
            match sig {
                Some(sig) => {
                    let next = unique.len();
                    let slot = *slot_of.entry(sig).or_insert(next);
                    if slot == next {
                        unique.push(lin);
                    }
                    member.push(slot);
                }
                None => {
                    member.push(unique.len());
                    unique.push(lin);
                }
            }
        }
        if unique.len() as u64 == n_blocks {
            return None;
        }
        Some((unique, member))
    }

    /// Shared tail of the dedup paths: replay each representative's cost for
    /// its members (exact `u64` sums, landing at the original linear indices)
    /// and hand the totals to the cache/timing/scheduling models.
    fn finish_dedup(
        &self,
        kernel: &dyn Kernel,
        occ: Occupancy,
        costs: &[BlockCost],
        member: &[usize],
    ) -> LaunchStats {
        let mut total = BlockCost::default();
        let mut lites = Vec::with_capacity(member.len());
        for &slot in member {
            let c = &costs[slot];
            total.merge(c);
            lites.push(BlockCostLite::from(c));
        }
        self.finish(kernel, occ, total, lites)
    }

    /// The pre-fast-path launch engine: collect one full [`BlockCost`] per
    /// block, then run the cache/timing models from the full traces. Kept as
    /// the ground truth the streaming and dedup paths must match bit-for-bit
    /// (the equivalence suite exercises it); never deduplicates.
    #[doc(hidden)]
    pub fn profile_reference(&self, kernel: &dyn Kernel) -> Result<LaunchStats, LaunchError> {
        let occ = self.validate(kernel)?;
        let dev = &self.dev;
        let grid = kernel.grid();
        let n_blocks = grid.size();
        let req = kernel.block_requirements();

        let costs: Vec<BlockCost> = (0..n_blocks)
            .into_par_iter()
            .map(|lin| {
                let idx = grid.delinearize(lin);
                let mut ctx = BlockContext::new(false);
                kernel.execute_block(idx, &mut ctx);
                ctx.cost
            })
            .collect();

        let mut total = BlockCost::default();
        for c in &costs {
            total.merge(c);
        }
        let buffers = kernel.buffers();
        let dram = cache::dram_traffic(dev, &buffers, &total.gmem);
        let warps_per_block = req.threads.div_ceil(dev.warp_size);
        let eff_warps = occupancy::effective_warps_per_sm(dev, &occ, n_blocks, warps_per_block);
        let active_sms = (n_blocks.min(dev.num_sms as u64)).max(1) as f64;
        let bw_per_sm = dev.dram_bytes_per_cycle() / active_sms;
        let concurrency = n_blocks
            .div_ceil(dev.num_sms as u64)
            .min(occ.blocks_per_sm as u64)
            .max(1) as f64;
        let block_cycles: Vec<f64> = costs
            .par_iter()
            .map(|c| {
                let mut bytes = 0.0f64;
                for (slot, t) in c.gmem.iter().enumerate() {
                    bytes += t.ld_bytes() as f64 * dram.ld_miss_rate[slot] + t.st_bytes() as f64;
                }
                timing::block_cycles(
                    dev,
                    c,
                    warps_per_block,
                    eff_warps,
                    bytes,
                    bw_per_sm,
                    concurrency,
                )
                .total_cycles
            })
            .collect();

        Ok(self.assemble(kernel, occ, &total, dram.total_bytes(), &block_cycles))
    }

    /// Turn the aggregated trace plus compact per-block records into launch
    /// statistics (cache model, per-block timing, scheduling, rooflines).
    fn finish(
        &self,
        kernel: &dyn Kernel,
        occ: Occupancy,
        total: BlockCost,
        lites: Vec<BlockCostLite>,
    ) -> LaunchStats {
        let dev = &self.dev;
        let n_blocks = lites.len() as u64;
        let req = kernel.block_requirements();

        // 2. Apply the cache model to the aggregate traffic.
        let buffers = kernel.buffers();
        let dram = cache::dram_traffic(dev, &buffers, &total.gmem);
        let dram_bytes = dram.total_bytes();

        // 3. Per-block cycles. Each block's DRAM share uses the per-buffer
        // miss rates from the aggregate cache model.
        let warps_per_block = req.threads.div_ceil(dev.warp_size);
        let eff_warps = occupancy::effective_warps_per_sm(dev, &occ, n_blocks, warps_per_block);
        // Bandwidth share per SM: when fewer blocks than SMs are active, the
        // active SMs share the full device bandwidth.
        let active_sms = (n_blocks.min(dev.num_sms as u64)).max(1) as f64;
        let bw_per_sm = dev.dram_bytes_per_cycle() / active_sms;
        let concurrency = n_blocks
            .div_ceil(dev.num_sms as u64)
            .min(occ.blocks_per_sm as u64)
            .max(1) as f64;

        let block_cycles: Vec<f64> = lites
            .par_iter()
            .map(|c| {
                let mut bytes = 0.0f64;
                for (slot, t) in c.gmem.iter().enumerate() {
                    bytes += t.ld_bytes() as f64 * dram.ld_miss_rate[slot] + t.st_bytes() as f64;
                }
                timing::block_cycles_lite(
                    dev,
                    c,
                    warps_per_block,
                    eff_warps,
                    bytes,
                    bw_per_sm,
                    concurrency,
                )
                .total_cycles
            })
            .collect();

        let stats = self.assemble(kernel, occ, &total, dram_bytes, &block_cycles);
        // Every simulated launch path funnels through here (the reference
        // engine calls `assemble` directly and stays unrecorded).
        metrics::global().record_launch(&stats, false);
        trace::launch(&self.dev.name, &stats, None);
        stats
    }

    /// Shared tail of every launch path: schedule the per-block cycles onto
    /// SMs, compute device-wide rooflines, and package the statistics.
    fn assemble(
        &self,
        kernel: &dyn Kernel,
        occ: Occupancy,
        total: &BlockCost,
        dram_bytes: u64,
        block_cycles: &[f64],
    ) -> LaunchStats {
        let dev = &self.dev;
        let n_blocks = block_cycles.len() as u64;

        // 4. Schedule blocks onto SMs.
        let sched = scheduler::simulate_schedule(dev, occ.blocks_per_sm, block_cycles);

        // 5. Device-wide rooflines (lower bounds the makespan cannot beat).
        let fma_tp = dev.fp32_lanes_per_sm as f64 / dev.warp_size as f64;
        let t_fma = (total.fma_instrs + total.fp_instrs) as f64 / (fma_tp * dev.num_sms as f64);
        let t_issue =
            total.total_instrs() as f64 / (dev.issue_slots_per_sm as f64 * dev.num_sms as f64);
        let lsu_tp = (dev.lsu_lanes_per_sm as f64 / dev.warp_size as f64).max(0.125);
        let t_lsu = ((total.ld_global_instrs + total.st_global_instrs) as f64 / lsu_tp
            + (total.ld_shared_instrs + total.st_shared_instrs) as f64)
            / dev.num_sms as f64;
        let t_smem = (total.shared_bytes as f64 / dev.smem_bytes_per_cycle as f64
            + total.bank_conflict_passes as f64)
            / dev.num_sms as f64;
        let t_dram = dram_bytes as f64 / dev.dram_bytes_per_cycle();

        let cycles = sched
            .makespan_cycles
            .max(t_fma)
            .max(t_issue)
            .max(t_lsu)
            .max(t_smem)
            .max(t_dram);

        // The makespan subsumes every per-block effect, so it is almost
        // always the numeric max; report "schedule" only when it clearly
        // exceeds the binding device-wide roofline (load imbalance or
        // launch-overhead dominated), otherwise name that roofline.
        let bound_by = {
            let rooflines = [
                ("fma", t_fma),
                ("issue", t_issue),
                ("lsu", t_lsu),
                ("smem", t_smem),
                ("dram", t_dram),
            ];
            let (name, top) = rooflines
                .iter()
                .copied()
                .reduce(|a, b| if b.1 >= a.1 { b } else { a })
                .unwrap_or(("fma", t_fma));
            if sched.makespan_cycles > 1.3 * top {
                "schedule".to_string()
            } else {
                name.to_string()
            }
        };

        let pipelines = PipelineBreakdown {
            fma_cycles: t_fma,
            issue_cycles: t_issue,
            lsu_cycles: t_lsu,
            smem_cycles: t_smem,
            dram_cycles: t_dram,
            schedule_cycles: sched.makespan_cycles,
        };
        let time_us = dev.cycles_to_us(cycles) + dev.launch_overhead_us;
        let time_s = time_us * 1e-6;
        let tflops = total.flops as f64 / time_s / 1e12;
        let frac_peak = tflops / dev.fp32_peak_tflops();
        let dram_gbps = dram_bytes as f64 / time_s / 1e9;

        LaunchStats {
            kernel: kernel.name(),
            time_us,
            makespan_cycles: sched.makespan_cycles,
            blocks: n_blocks,
            waves: sched.waves,
            balance: sched.balance,
            occupancy: occ,
            instructions: total.total_instrs(),
            flops: total.flops,
            dram_bytes,
            tflops,
            frac_peak,
            dram_gbps,
            bound_by,
            pipelines,
        }
    }
}

/// A sequence of dependent kernel launches (a CUDA stream): kernels run
/// back to back, but consecutive launches overlap the host-side launch
/// overhead with the previous kernel's execution — the reason back-to-back
/// small kernels cost less than `n * (overhead + time)`.
pub struct Stream<'g> {
    gpu: &'g Gpu,
    launches: Vec<LaunchStats>,
    /// Optional launch cache consulted by [`Stream::launch_cached`].
    cache: Option<&'g LaunchCache>,
    cache_hits: u64,
}

impl<'g> Stream<'g> {
    pub fn new(gpu: &'g Gpu) -> Self {
        Self {
            gpu,
            launches: Vec::new(),
            cache: None,
            cache_hits: 0,
        }
    }

    /// A stream whose [`Stream::launch_cached`] launches are memoized in
    /// `cache`. The cache obeys the usual bypass rule: a [`Gpu`] carrying a
    /// fault plan simulates every launch in full.
    pub fn with_cache(gpu: &'g Gpu, cache: &'g LaunchCache) -> Self {
        Self {
            gpu,
            launches: Vec::new(),
            cache: Some(cache),
            cache_hits: 0,
        }
    }

    /// Launch functionally on the stream; returns this kernel's stats.
    pub fn launch(&mut self, kernel: &dyn Kernel) -> LaunchStats {
        let stats = self.gpu.launch(kernel);
        self.launches.push(stats.clone());
        stats
    }

    /// Launch functionally on the stream through the attached cache (see
    /// [`Gpu::try_launch_cached`] for what `fingerprint` must cover). On a
    /// hit the kernel still executes for its outputs but the statistics are
    /// replayed instead of re-simulated. Falls back to an uncached launch
    /// when no cache is attached. Panics on launch errors, like
    /// [`Stream::launch`].
    pub fn launch_cached(&mut self, fingerprint: u64, kernel: &dyn Kernel) -> LaunchStats {
        let stats = match self.cache {
            Some(cache) => {
                let (stats, hit) = self
                    .gpu
                    .try_launch_cached(cache, fingerprint, kernel)
                    .unwrap_or_else(|e| panic!("{e}"));
                self.cache_hits += u64::from(hit);
                stats
            }
            None => self.gpu.launch(kernel),
        };
        self.launches.push(stats.clone());
        stats
    }

    /// Profile on the stream (cost only).
    pub fn profile(&mut self, kernel: &dyn Kernel) -> LaunchStats {
        let stats = self.gpu.profile(kernel);
        self.launches.push(stats.clone());
        stats
    }

    pub fn launches(&self) -> &[LaunchStats] {
        &self.launches
    }

    /// Launches served from the attached cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Total simulated stream time: per-kernel execution plus ONE launch
    /// overhead (subsequent launches are pipelined behind execution, except
    /// when a kernel is shorter than the overhead itself).
    ///
    /// Invariant: never exceeds the naive sum of the individual launch
    /// times — pipelining can only *hide* overhead. The gap penalty for a
    /// too-short kernel applies only to launches with a successor (it models
    /// the next launch's exposed setup); the final launch has none.
    pub fn total_us(&self) -> f64 {
        if self.launches.is_empty() {
            return 0.0;
        }
        let overhead = self.gpu.device().launch_overhead_us;
        let mut total = overhead;
        for (i, s) in self.launches.iter().enumerate() {
            let exec = s.time_us - overhead;
            if i + 1 < self.launches.len() {
                // A kernel shorter than the launch overhead leaves a gap
                // the next launch cannot fully hide.
                total += exec.max(overhead * 0.3);
            } else {
                total += exec;
            }
        }
        total
    }
}

/// Aggregate of several launches (e.g. the layers of a network forward pass).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LaunchSummary {
    pub launches: u64,
    pub time_us: f64,
    pub flops: u64,
    pub dram_bytes: u64,
    /// Sanitizer violations across sanitized launches (0 unless
    /// [`LaunchSummary::add_sanitized`] was used).
    pub violations: u64,
    /// Sanitizer lint warnings across sanitized launches.
    pub warnings: u64,
    /// Launches served from a [`LaunchCache`] (0 unless
    /// [`LaunchSummary::add_cached`] was used).
    pub cache_hits: u64,
    /// Launches that missed the cache and simulated in full.
    pub cache_misses: u64,
    /// Entries the cache evicted under capacity pressure (0 unless
    /// [`LaunchSummary::absorb_cache`] was used).
    pub cache_evictions: u64,
}

impl LaunchSummary {
    pub fn add(&mut self, stats: &LaunchStats) {
        self.launches += 1;
        self.time_us += stats.time_us;
        self.flops += stats.flops;
        self.dram_bytes += stats.dram_bytes;
    }

    /// Accumulate a memoized launch (see [`Gpu::try_profile_cached`] /
    /// [`Gpu::try_launch_cached`]), recording whether the cache served it.
    pub fn add_cached(&mut self, stats: &LaunchStats, hit: bool) {
        self.add(stats);
        if hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
    }

    /// Fold in a cache's eviction count (call once per sweep, after it).
    pub fn absorb_cache(&mut self, cache: &LaunchCache) {
        self.cache_evictions = cache.evictions();
    }

    /// Accumulate a sanitized launch: the stats plus its sanitizer findings.
    pub fn add_sanitized(&mut self, stats: &LaunchStats, report: &SanitizerReport) {
        self.add(stats);
        self.violations += report.violation_count;
        self.warnings += report.warning_count;
    }

    pub fn tflops(&self) -> f64 {
        if self.time_us <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / (self.time_us * 1e-6) / 1e12
    }
}

#[allow(unused)]
fn assert_traffic_slots(_: [Traffic; MAX_BUFFERS]) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessPattern, BufferSpec};
    use crate::cost::BufferId;
    use crate::dim::Dim3;

    /// A trivial kernel for launcher-level tests.
    struct Noop {
        blocks: u32,
        cycles_of_fma: u64,
    }

    impl Kernel for Noop {
        fn name(&self) -> String {
            "noop".into()
        }
        fn grid(&self) -> Dim3 {
            Dim3::x(self.blocks)
        }
        fn block_dim(&self) -> Dim3 {
            Dim3::x(128)
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            vec![BufferSpec {
                id: BufferId(0),
                name: "x",
                footprint_bytes: 1024,
                pattern: AccessPattern::Streaming,
            }]
        }
        fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
            ctx.fma(self.cycles_of_fma, 32 * self.cycles_of_fma);
            ctx.ld_global(BufferId(0), 0, 32, 1, 4);
        }
    }

    #[test]
    fn breakdown_is_populated_and_consistent() {
        let gpu = Gpu::v100();
        let stats = gpu.profile(&Noop {
            blocks: 800,
            cycles_of_fma: 10_000,
        });
        let p = stats.pipelines;
        assert!(p.fma_cycles > 0.0);
        assert!(
            p.schedule_cycles >= p.fma_cycles * 0.99,
            "makespan bounds the rooflines"
        );
        let binding = p
            .utilizations(stats.makespan_cycles.max(1.0))
            .iter()
            .map(|&(_, u)| u)
            .fold(0.0f64, f64::max);
        assert!(
            binding > 0.9,
            "some pipeline must be near-binding, got {binding}"
        );
    }

    #[test]
    fn stream_overlaps_launch_overhead() {
        let gpu = Gpu::v100();
        let k = Noop {
            blocks: 800,
            cycles_of_fma: 50_000,
        };
        let solo = gpu.profile(&k).time_us;
        let mut stream = Stream::new(&gpu);
        for _ in 0..4 {
            stream.profile(&k);
        }
        let total = stream.total_us();
        assert!(
            total < 4.0 * solo,
            "stream {} must beat 4x solo {}",
            total,
            4.0 * solo
        );
        assert!(total > 4.0 * (solo - gpu.device().launch_overhead_us));
        assert_eq!(stream.launches().len(), 4);
    }

    #[test]
    fn empty_stream_costs_nothing() {
        let gpu = Gpu::v100();
        assert_eq!(Stream::new(&gpu).total_us(), 0.0);
    }

    /// Regression: the short-kernel gap penalty used to apply to the *last*
    /// launch too, making a single-launch stream "slower" than the same
    /// launch alone — which is how `BatchedResult::overhead_saved_us` went
    /// negative. A stream of one is exactly the solo launch.
    #[test]
    fn single_launch_stream_equals_solo_launch() {
        let gpu = Gpu::v100();
        // Tiny kernel: execution far below the launch overhead, the case
        // that used to trip the gap penalty.
        let k = Noop {
            blocks: 1,
            cycles_of_fma: 1,
        };
        let solo = gpu.profile(&k).time_us;
        let mut stream = Stream::new(&gpu);
        stream.profile(&k);
        assert!(
            (stream.total_us() - solo).abs() < 1e-12,
            "stream of one ({}) must equal solo launch ({solo})",
            stream.total_us()
        );
    }

    /// Pipelining can only hide overhead: a stream is never slower than
    /// launching its kernels back to back, for any kernel size.
    #[test]
    fn stream_never_exceeds_naive_sum() {
        let gpu = Gpu::v100();
        for cycles in [1, 2_000, 50_000] {
            let k = Noop {
                blocks: 4,
                cycles_of_fma: cycles,
            };
            for n in 1..5 {
                let mut stream = Stream::new(&gpu);
                let mut naive = 0.0;
                for _ in 0..n {
                    naive += stream.profile(&k).time_us;
                }
                assert!(
                    stream.total_us() <= naive + 1e-9,
                    "stream {} > naive {naive} for {n} x {cycles}-cycle kernels",
                    stream.total_us()
                );
            }
        }
    }

    #[test]
    fn stream_cache_replays_identical_launches() {
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let mut stream = Stream::with_cache(&gpu, &cache);
        let k = Noop {
            blocks: 8,
            cycles_of_fma: 100,
        };
        let a = stream.launch_cached(42, &k);
        let b = stream.launch_cached(42, &k);
        assert_eq!(a, b, "replayed stats are bit-identical");
        assert_eq!(stream.cache_hits(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(stream.launches().len(), 2);
    }

    #[test]
    fn stream_cache_bypassed_under_fault_plan() {
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::none());
        let cache = LaunchCache::new();
        let mut stream = Stream::with_cache(&gpu, &cache);
        let k = Noop {
            blocks: 8,
            cycles_of_fma: 100,
        };
        stream.launch_cached(42, &k);
        stream.launch_cached(42, &k);
        assert_eq!(stream.cache_hits(), 0, "fault-plan GPUs simulate in full");
        assert!(cache.is_empty(), "no inserts while a fault plan is armed");
    }
}
