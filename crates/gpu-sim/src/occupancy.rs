//! Occupancy calculation: how many thread blocks of a kernel can be resident
//! on one SM simultaneously, and which resource limits that.
//!
//! Higher occupancy gives the SM more warps to switch between while memory
//! requests are in flight, which is the latency-hiding mechanism the paper's
//! 1-D tiling exploits ("for problems with small M and K dimensions we launch
//! more thread blocks than would otherwise be possible, enabling us to
//! achieve higher occupancy").

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Per-block resource requirements, the inputs to the occupancy calculator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRequirements {
    /// Threads per block (product of the block dims).
    pub threads: u32,
    /// Dynamic + static shared memory per block, bytes.
    pub smem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimit {
    Threads,
    Warps,
    Blocks,
    SharedMemory,
    Registers,
    /// The grid is smaller than the device could accommodate.
    GridSize,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM permitted by hardware resources.
    pub blocks_per_sm: u32,
    /// Resident warps per SM (`blocks_per_sm * warps_per_block`).
    pub warps_per_sm: u32,
    /// Fraction of the device's maximum resident warps achieved.
    pub fraction: f64,
    /// The binding resource.
    pub limited_by: OccupancyLimit,
}

/// Compute the occupancy of a kernel with the given per-block requirements.
pub fn occupancy(dev: &DeviceConfig, req: &BlockRequirements) -> Occupancy {
    assert!(req.threads > 0, "a block must have at least one thread");
    let warps_per_block = req.threads.div_ceil(dev.warp_size);

    // Register allocation is per-warp with a granularity.
    let regs_per_warp = {
        let raw = req.regs_per_thread.max(1) * dev.warp_size;
        raw.div_ceil(dev.reg_alloc_granularity) * dev.reg_alloc_granularity
    };
    let regs_per_block = regs_per_warp * warps_per_block;

    let mut best = u32::MAX;
    let mut limit = OccupancyLimit::Blocks;

    let by_threads = dev.max_threads_per_sm / req.threads;
    if by_threads < best {
        best = by_threads;
        limit = OccupancyLimit::Threads;
    }
    let by_warps = dev.max_warps_per_sm / warps_per_block;
    if by_warps < best {
        best = by_warps;
        limit = OccupancyLimit::Warps;
    }
    if dev.max_blocks_per_sm < best {
        best = dev.max_blocks_per_sm;
        limit = OccupancyLimit::Blocks;
    }
    if let Some(by_smem) = dev.smem_per_sm.checked_div(req.smem_bytes) {
        if by_smem < best {
            best = by_smem;
            limit = OccupancyLimit::SharedMemory;
        }
    }
    if let Some(by_regs) = dev.regs_per_sm.checked_div(regs_per_block) {
        if by_regs < best {
            best = by_regs;
            limit = OccupancyLimit::Registers;
        }
    }

    let blocks_per_sm = best;
    let warps_per_sm = blocks_per_sm * warps_per_block;
    Occupancy {
        blocks_per_sm,
        warps_per_sm,
        fraction: warps_per_sm as f64 / dev.max_warps_per_sm as f64,
        limited_by: limit,
    }
}

/// Effective warps resident per *active* SM once the actual grid size is
/// considered: a grid smaller than one full wave leaves each active SM with a
/// single resident block regardless of theoretical occupancy. This is the
/// effect that makes the paper's 1-D tiling win on problems with small M —
/// more blocks mean more resident warps and better latency hiding.
pub fn effective_warps_per_sm(
    dev: &DeviceConfig,
    occ: &Occupancy,
    grid_blocks: u64,
    warps_per_block: u32,
) -> f64 {
    if grid_blocks == 0 {
        return 0.0;
    }
    // Blocks co-resident on each SM that has work at all.
    let blocks_per_active_sm = grid_blocks
        .div_ceil(dev.num_sms as u64)
        .min(occ.blocks_per_sm as u64)
        .max(1);
    (blocks_per_active_sm * warps_per_block as u64).min(occ.warps_per_sm as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> DeviceConfig {
        DeviceConfig::v100()
    }

    #[test]
    fn small_blocks_hit_block_limit() {
        // 32-thread blocks, no smem, few regs: capped by the 32-block limit.
        let occ = occupancy(
            &v100(),
            &BlockRequirements {
                threads: 32,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.limited_by, OccupancyLimit::Blocks);
        assert_eq!(occ.warps_per_sm, 32);
    }

    #[test]
    fn big_blocks_hit_thread_limit() {
        let occ = occupancy(
            &v100(),
            &BlockRequirements {
                threads: 1024,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 64);
        assert_eq!(occ.fraction, 1.0);
    }

    #[test]
    fn shared_memory_limits() {
        // 48 KiB per block on a 96 KiB SM: 2 blocks.
        let occ = occupancy(
            &v100(),
            &BlockRequirements {
                threads: 128,
                smem_bytes: 48 * 1024,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn registers_limit() {
        // 255 regs/thread, 256 threads: 255*32 -> 8160 -> rounded 8192 per warp,
        // 8 warps per block -> 65536 regs: exactly 1 block.
        let occ = occupancy(
            &v100(),
            &BlockRequirements {
                threads: 256,
                smem_bytes: 0,
                regs_per_thread: 255,
            },
        );
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
    }

    #[test]
    fn smem_exactly_at_sm_capacity_fits_one_block() {
        // A block staging exactly `smem_per_sm` bytes is legal and leaves
        // room for exactly one resident block — the boundary the static
        // auditor's shared-capacity check sits on.
        let dev = v100();
        let occ = occupancy(
            &dev,
            &BlockRequirements {
                threads: 128,
                smem_bytes: dev.smem_per_sm,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
        // One byte past capacity: zero resident blocks (the launch
        // validator and the auditor's grid_occupancy check refuse this).
        let occ = occupancy(
            &dev,
            &BlockRequirements {
                threads: 128,
                smem_bytes: dev.smem_per_sm + 1,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.warps_per_sm, 0);
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn one_thread_blocks_occupy_a_full_warp_each() {
        // A 1-thread block still allocates one warp; residency is capped
        // by the per-SM block limit, not threads.
        let dev = v100();
        let occ = occupancy(
            &dev,
            &BlockRequirements {
                threads: 1,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, dev.max_blocks_per_sm);
        assert_eq!(occ.limited_by, OccupancyLimit::Blocks);
        assert_eq!(occ.warps_per_sm, dev.max_blocks_per_sm);
        assert!(occ.fraction < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_blocks_are_rejected() {
        occupancy(
            &v100(),
            &BlockRequirements {
                threads: 0,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
    }

    #[test]
    fn effective_warps_clamp_at_the_occupancy_cap() {
        // A grid far larger than the device cannot push more blocks onto
        // an SM than occupancy permits: `blocks_per_active_sm` clamps at
        // `occ.blocks_per_sm`, so effective warps clamp at `warps_per_sm`.
        let dev = v100();
        let occ = occupancy(
            &dev,
            &BlockRequirements {
                threads: 1024,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
        assert_eq!(occ.blocks_per_sm, 2);
        for grid in [u64::from(dev.num_sms) * 2, 1 << 20, u64::MAX / 2] {
            assert_eq!(
                effective_warps_per_sm(&dev, &occ, grid, 32),
                occ.warps_per_sm as f64,
                "grid {grid}"
            );
        }
        // And the degenerate boundaries: no work, and a single block.
        assert_eq!(effective_warps_per_sm(&dev, &occ, 0, 32), 0.0);
        assert_eq!(effective_warps_per_sm(&dev, &occ, 1, 32), 32.0);
    }

    #[test]
    fn effective_warps_small_grid() {
        let dev = v100();
        let occ = occupancy(
            &dev,
            &BlockRequirements {
                threads: 256,
                smem_bytes: 0,
                regs_per_thread: 32,
            },
        );
        // 40 blocks of 8 warps on 80 SMs: half the SMs idle, 4 warps/SM avg.
        let eff = effective_warps_per_sm(&dev, &occ, 40, 8);
        assert!(eff <= 8.0);
        // A huge grid saturates at the occupancy cap.
        let eff_big = effective_warps_per_sm(&dev, &occ, 1_000_000, 8);
        assert_eq!(eff_big, occ.warps_per_sm as f64);
    }
}
